#!/usr/bin/env python
"""Structure health monitoring: long deployments and solar prediction.

A bridge-mounted SHM node (temperature + acceleration sensing, FFT,
radio) runs unattended for months.  This example focuses on the
long-horizon aspects of the paper:

1. how well the WCMA predictor (the engine behind the inter-task LSA
   and the receding-horizon planner) forecasts per-period solar energy
   on synthetic multi-week weather;
2. how the prediction length changes the proposed family's DMR — the
   balance point of Figure 10(a).

Run:  python examples/structural_health.py
Fast: REPRO_EXAMPLE_FAST=1 python examples/structural_health.py
"""

import os

import numpy as np

from repro.core import DPConfig, RecedingHorizonScheduler
from repro.sim.engine import simulate
from repro.solar import EWMAPredictor, WCMAPredictor, synthetic_trace
from repro.tasks import shm
from repro.timeline import Timeline

# Smoke-test knob: a shorter deployment on a coarser day, one horizon.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    graph = shm()
    timeline = Timeline(
        num_days=9 if FAST else 14, periods_per_day=24 if FAST else 144,
        slots_per_period=20, slot_seconds=30.0,
    )
    trace = synthetic_trace(timeline, seed=31)

    # -------------------------------------------------- predictor quality
    print("=== per-period solar prediction error (last 7 days) ===")
    for label, predictor in (
        ("WCMA [3]", WCMAPredictor(timeline)),
        ("EWMA", EWMAPredictor(timeline)),
    ):
        errors = []
        for day in range(timeline.num_days):
            for period in range(timeline.periods_per_day):
                actual = trace.period_energy(day, period)
                if day >= 7:
                    errors.append(abs(predictor.predict(day, period) - actual))
                predictor.observe(day, period, actual)
        peak = trace.power.max() * timeline.period_seconds
        print(
            f"  {label:10s} mean abs error "
            f"{np.mean(errors):6.2f} J ({100 * np.mean(errors) / peak:.1f}% "
            "of the brightest period)"
        )

    # ------------------------------------------- prediction-length sweep
    print("\n=== prediction length vs DMR (receding-horizon planner) ===")
    from repro.core.offline import OfflinePipeline

    pipeline = OfflinePipeline(graph, num_capacitors=3)
    capacitors = pipeline.size_capacitors(
        synthetic_trace(timeline.with_days(10), seed=99)
    )
    sizes = ", ".join(f"{c.capacitance:g}F" for c in capacitors)
    print(f"  sized bank: [{sizes}]")
    for hours in (24,) if FAST else (6, 24, 48):
        horizon = hours * timeline.periods_per_day // 24
        scheduler = RecedingHorizonScheduler(
            capacitors,
            horizon_periods=horizon,
            replan_every=12,
            config=DPConfig(energy_buckets=41),
        )
        from repro.node import SensorNode

        node = SensorNode(capacitors, num_nvps=graph.num_nvps)
        result = simulate(node, graph, trace, scheduler, strict=False)
        print(
            f"  horizon {hours:3d}h: DMR={result.dmr:.3f} "
            f"(DP transitions {scheduler.transitions_evaluated:,})"
        )
    print(
        "\nLonger prediction sees the night coming but leans on less "
        "accurate forecasts — the trade-off behind Figure 10(a)."
    )


if __name__ == "__main__":
    main()
