#!/usr/bin/env python
"""ECG wearable: capacitor sizing study for a medical sensor patch.

A solar-powered ECG patch (filter chain, QRS detection, FFT, AES
encryption) is highly volume-constrained, so picking the right super
capacitors matters more than anywhere else.  This example walks the
Section 4.1 sizing machinery step by step:

1. extract the per-slot migration profile ``ΔE`` of each historical
   day under an ASAP schedule;
2. find each day's loss-optimal capacitance (Eq. 10–11);
3. cluster the per-day optima into banks of 1..6 capacitors and show
   how the achievable DMR responds (Figure 10(b)'s effect).

Run:  python examples/ecg_wearable.py
Fast: REPRO_EXAMPLE_FAST=1 python examples/ecg_wearable.py
"""

import os

import numpy as np

from repro.core import (
    LongTermOptimizer,
    StaticOptimalScheduler,
    asap_load_profile,
    trace_period_matrix,
)
from repro.core.offline import OfflinePipeline
from repro.energy import (
    DEFAULT_CANDIDATES,
    migration_series,
    optimal_daily_capacity,
)
from repro.node import SensorNode
from repro.sim.engine import simulate
from repro.solar import four_day_trace, synthetic_trace
from repro.tasks import ecg
from repro.timeline import Timeline

# Smoke-test knob: short history, coarse periods, fewer bank sizes.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    graph = ecg()
    timeline = Timeline(
        num_days=3 if FAST else 12, periods_per_day=24 if FAST else 144,
        slots_per_period=20, slot_seconds=30.0,
    )
    history = synthetic_trace(timeline, seed=99)

    # Step 1 + 2: per-day optimal capacitance from the ΔE profile.
    print("=== per-day optimal capacitance (Section 4.1) ===")
    load_period = asap_load_profile(graph, timeline)
    load_day = np.tile(load_period, timeline.periods_per_day)
    optima = []
    for day in range(timeline.num_days):
        solar_day = history.power[day].reshape(-1)
        delta_e = migration_series(solar_day, load_day, timeline.slot_seconds)
        best, result = optimal_daily_capacity(
            delta_e, timeline.slot_seconds, DEFAULT_CANDIDATES
        )
        optima.append(best)
        print(
            f"  day {day:2d}: harvest {history.daily_energy(day):7.1f} J, "
            f"C_opt = {best:5.1f} F "
            f"(loss {result.total_loss:6.1f} J, "
            f"served {result.served:6.1f} J)"
        )
    print(f"  spread of optima: {min(optima):g}F .. {max(optima):g}F")

    # Step 3: bank cardinality vs achievable DMR on the 4-day test.
    print("\n=== bank size vs DMR (static optimal, 4 canonical days) ===")
    eval_trace = four_day_trace(timeline.with_days(4))
    for h in (1, 3) if FAST else (1, 2, 3, 4, 6):
        pipe = OfflinePipeline(graph, num_capacitors=h)
        capacitors = pipe.size_capacitors(history)
        optimizer = LongTermOptimizer(
            graph, eval_trace.timeline, capacitors
        )
        plan = optimizer.optimize(
            trace_period_matrix(eval_trace), extract_matrices=False
        )
        node = SensorNode(capacitors, num_nvps=graph.num_nvps)
        result = simulate(
            node, graph, eval_trace, StaticOptimalScheduler(plan),
            strict=False,
        )
        sizes = "/".join(f"{c.capacitance:g}" for c in capacitors)
        print(
            f"  H={h}: bank [{sizes}]F  DMR={result.dmr:.3f}  "
            f"migration-eff={result.migration_efficiency:.2f}"
        )
    print(
        "\nDMR improves with more capacitor sizes and saturates — "
        "the paper's Figure 10(b)."
    )


if __name__ == "__main__":
    main()
