#!/usr/bin/env python
"""Fault tolerance: how the schedulers degrade in the field.

The paper evaluates on clean measured weather; a real deployment adds
panel dust, intermittent shading, connector glitches and capacitor
aging.  This example injects all of them with
:mod:`repro.reliability` and compares how gracefully each scheduler's
DMR degrades — plus what a year of capacitor aging does to the sized
bank.

Run:  python examples/fault_tolerance_study.py
Fast: REPRO_EXAMPLE_FAST=1 python examples/fault_tolerance_study.py
"""

import dataclasses
import os

from repro import quick_node, simulate
from repro.reliability import (
    FaultScenario,
    IntermittentShading,
    PanelDegradation,
    SupplyGlitches,
    age_capacitor,
    robustness_report,
)
from repro.schedulers import GreedyEDFScheduler, InterTaskScheduler, IntraTaskScheduler
from repro.solar import four_day_trace
from repro.tasks import wam
from repro.timeline import Timeline

# Smoke-test knob: coarse periods so the scenario matrix stays cheap.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    graph = wam()
    timeline = Timeline(
        num_days=4, periods_per_day=24 if FAST else 144,
        slots_per_period=20, slot_seconds=30.0,
    )
    trace = four_day_trace(timeline)

    scenarios = [
        FaultScenario("dusty panel", [PanelDegradation(rate_per_day=0.02)]),
        FaultScenario(
            "shaded site",
            [IntermittentShading(episodes_per_day=6.0, depth=0.8)],
            seed=21,
        ),
        FaultScenario("glitchy wiring", [SupplyGlitches(probability=0.05)],
                      seed=22),
    ]

    print("=== DMR under injected faults (WAM, four canonical days) ===")
    rows = robustness_report(
        graph,
        trace,
        node_factory=lambda: quick_node(graph),
        scheduler_factories={
            "asap": GreedyEDFScheduler,
            "inter-task": InterTaskScheduler,
            "intra-task": IntraTaskScheduler,
        },
        scenarios=scenarios,
    )
    print(f"{'scheduler':12s} {'scenario':16s} {'DMR':>6s} {'vs clean':>9s} "
          f"{'energy lost':>12s}")
    for row in rows:
        print(
            f"{row.scheduler:12s} {row.scenario:16s} {row.dmr:6.3f} "
            f"{row.dmr_increase:+9.3f} "
            f"{row.lost_energy_fraction * 100:11.1f}%"
        )

    # ------------------------------------------------- capacitor aging
    print("\n=== capacitor aging (one year of service) ===")
    fresh = quick_node(graph)
    aged_caps = [
        age_capacitor(state.capacitor, service_days=365.0)
        for state in fresh.bank.states
    ]
    for state, aged in zip(fresh.bank.states, aged_caps):
        cap = state.capacitor
        print(
            f"  {cap.capacitance:5.1f}F -> {aged.capacitance:5.2f}F, "
            f"leak x{aged.leak_coeff / cap.leak_coeff:.2f}"
        )
    from repro.node import SensorNode

    aged_node = SensorNode(aged_caps, num_nvps=graph.num_nvps)
    fresh_result = simulate(
        quick_node(graph), graph, trace, IntraTaskScheduler()
    )
    aged_result = simulate(aged_node, graph, trace, IntraTaskScheduler())
    print(
        f"  intra-task DMR: fresh {fresh_result.dmr:.3f} -> aged "
        f"{aged_result.dmr:.3f}"
    )


if __name__ == "__main__":
    main()
