#!/usr/bin/env python
"""Workload design-space sweep: when does scheduling sophistication pay?

Uses the UUniFast workload generator to sweep the demand/supply ratio
and the dependence structure, comparing the greedy and load-matching
schedulers on a mixed-weather day — with bootstrap confidence
intervals from :mod:`repro.analysis` so differences aren't over-read.

Run:  python examples/workload_sweep.py
Fast: REPRO_EXAMPLE_FAST=1 python examples/workload_sweep.py
"""

import os

import numpy as np

from repro import quick_node, simulate
from repro.analysis import bootstrap_ci, compare_results
from repro.schedulers import GreedyEDFScheduler, IntraTaskScheduler
from repro.solar import FOUR_DAYS, archetype_trace
from repro.tasks import STRUCTURES, WorkloadSpec, generate_workload
from repro.timeline import Timeline

# Smoke-test knob: coarse periods, fewer sweep points and seeds.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    timeline = Timeline(
        num_days=2, periods_per_day=24 if FAST else 144,
        slots_per_period=20, slot_seconds=30.0,
    )
    # One partly-cloudy and one broken-cloud day.
    trace = archetype_trace(timeline, [FOUR_DAYS[1], FOUR_DAYS[2]], seed=8)

    print("=== DMR vs power utilisation (layered DAG, 6 tasks) ===")
    print(f"{'utilisation':>12s} {'greedy':>8s} {'intra-task':>11s}")
    for util in (0.4, 0.9) if FAST else (0.2, 0.4, 0.6, 0.9, 1.2):
        spec = WorkloadSpec(
            num_tasks=6, utilization=util, structure="layered", num_nvps=2
        )
        graph = generate_workload(spec, seed=17)
        dmrs = {}
        for sched in (GreedyEDFScheduler(), IntraTaskScheduler()):
            result = simulate(quick_node(graph), graph, trace, sched)
            dmrs[sched.name] = result.dmr
        print(
            f"{util:12.1f} {dmrs['asap-edf']:8.3f} "
            f"{dmrs['intra-task']:11.3f}"
        )

    print("\n=== structure families at utilisation 0.8 ===")
    for structure in STRUCTURES:
        spec = WorkloadSpec(
            num_tasks=6, utilization=0.8, structure=structure, num_nvps=2
        )
        graph = generate_workload(spec, seed=23)
        a = simulate(quick_node(graph), graph, trace, IntraTaskScheduler())
        b = simulate(quick_node(graph), graph, trace, GreedyEDFScheduler())
        comparison = compare_results(a, b, granularity="period")
        mark = "*" if comparison.significant else " "
        print(
            f"  {structure:12s} intra {a.dmr:.3f} vs greedy {b.dmr:.3f}  "
            f"diff {comparison.diff:+.3f} "
            f"[{comparison.ci_low:+.3f}, {comparison.ci_high:+.3f}]{mark}"
        )
    print("  (* = paired bootstrap CI excludes zero)")

    print("\n=== seed variability (intra-task, utilisation 0.8) ===")
    dmrs = []
    for seed in range(3 if FAST else 8):
        spec = WorkloadSpec(num_tasks=6, utilization=0.8,
                            structure="layered", num_nvps=2)
        graph = generate_workload(spec, seed=seed)
        dmrs.append(
            simulate(quick_node(graph), graph, trace,
                     IntraTaskScheduler()).dmr
        )
    estimate, low, high = bootstrap_ci(np.array(dmrs), seed=1)
    print(
        f"  mean DMR over {len(dmrs)} generated workloads: {estimate:.3f} "
        f"(95% CI [{low:.3f}, {high:.3f}])"
    )


if __name__ == "__main__":
    main()
