#!/usr/bin/env python
"""Wild animal monitoring: the paper's full offline + online flow.

A WAM collar node (GPS locating, heart-rate sampling, audio pipeline,
emergency response, storage, radio) must keep missing as few deadlines
as possible through day/night cycles.  This example runs the complete
method of the paper:

1. offline — size the distributed super capacitors on historical
   weather, solve the long-term DMR optimisation, train the DBN;
2. online — deploy on unseen weather and compare against the
   inter-task LSA [3], the intra-task scheduler [9] and the static
   optimal upper bound.

Run:  python examples/wildlife_monitoring.py            (fast, 4 days)
      python examples/wildlife_monitoring.py --days 30  (monthly)
Fast: REPRO_EXAMPLE_FAST=1 python examples/wildlife_monitoring.py
"""

import argparse
import os

from repro.core import (
    LongTermOptimizer,
    OfflinePipeline,
    StaticOptimalScheduler,
    trace_period_matrix,
)
from repro.schedulers import InterTaskScheduler, IntraTaskScheduler
from repro.sim.engine import simulate
from repro.solar import four_day_trace, synthetic_trace
from repro.tasks import wam
from repro.timeline import Timeline

# Smoke-test knob: coarse periods, short training, tiny DBN budget.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--days", type=int, default=4,
        help="evaluation days (4 = the paper's four canonical days; "
        "more = synthetic weather)",
    )
    parser.add_argument("--train-days", type=int,
                        default=2 if FAST else 12)
    args = parser.parse_args()

    graph = wam()
    timeline = Timeline(
        num_days=args.days, periods_per_day=24 if FAST else 144,
        slots_per_period=20, slot_seconds=30.0,
    )

    # ---------------------------------------------------------------- offline
    print("=== offline stage (historical weather) ===")
    train_trace = synthetic_trace(
        timeline.with_days(args.train_days), seed=99
    )
    if FAST:
        pipeline = OfflinePipeline(
            graph, num_capacitors=4, pretrain_epochs=2, finetune_epochs=5,
        )
    else:
        pipeline = OfflinePipeline(graph, num_capacitors=4)
    policy = pipeline.run(train_trace)
    sizes = ", ".join(f"{c.capacitance:g}F" for c in policy.capacitors)
    print(f"sized capacitor bank: [{sizes}]")
    print(
        f"training-plan expected DMR: "
        f"{policy.training_plan.expected_dmr:.3f} over "
        f"{args.train_days} days"
    )

    # ----------------------------------------------------------------- online
    if args.days == 4:
        eval_trace = four_day_trace(timeline)
        print("\n=== online stage (the paper's four canonical days) ===")
    else:
        eval_trace = synthetic_trace(timeline, seed=2016)
        print(f"\n=== online stage ({args.days} synthetic days) ===")

    optimizer = LongTermOptimizer(
        graph, timeline, list(policy.capacitors)
    )
    plan = optimizer.optimize(
        trace_period_matrix(eval_trace), extract_matrices=False
    )

    schedulers = {
        "inter-task [3]": InterTaskScheduler(),
        "intra-task [9]": IntraTaskScheduler(),
        "proposed (DBN)": policy.make_scheduler(),
        "optimal (oracle)": StaticOptimalScheduler(plan),
    }
    results = {}
    for label, scheduler in schedulers.items():
        node = policy.make_node()
        results[label] = simulate(
            node, graph, eval_trace, scheduler, strict=False
        )

    print(f"\n{'scheduler':18s} {'DMR':>6s} {'util':>6s} {'stored J':>9s}")
    for label, r in results.items():
        print(
            f"{label:18s} {r.dmr:6.3f} {r.energy_utilization:6.3f} "
            f"{r.total_storage_energy:9.0f}"
        )

    inter = results["inter-task [3]"]
    prop = results["proposed (DBN)"]
    if inter.dmr > 0:
        gain = 100 * (inter.dmr - prop.dmr) / inter.dmr
        print(f"\nproposed reduces DMR by {gain:.1f}% vs the inter-task LSA")
    print(
        "per-day DMR (proposed): "
        + ", ".join(f"{x:.2f}" for x in prop.dmr_by_day())
    )


if __name__ == "__main__":
    main()
