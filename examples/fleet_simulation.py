#!/usr/bin/env python
"""Fleet simulation: a population of heterogeneous solar nodes.

The other examples study one node; real deployments ship hundreds.
This script simulates a seeded fleet — every node drawing its own
workload, scheduler, capacitor bank, panel scale and cloud jitter from
the fleet seed — and prints the population view: DMR percentiles,
brownout pressure, and the per-policy comparison.  It then re-runs the
same fleet with a different worker count and shard size to demonstrate
the determinism contract: the aggregate fingerprint is bit-identical.

Run:  python examples/fleet_simulation.py
Fast: REPRO_EXAMPLE_FAST=1 python examples/fleet_simulation.py
"""

import os

from repro.fleet import FleetRunner, FleetSpec

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    n_nodes = 8 if FAST else 120
    spec = FleetSpec(
        n_nodes=n_nodes,
        seed=0,
        policies=("asap", "inter-task", "intra-task", "random"),
    )
    print(f"Simulating a fleet of {spec.n_nodes} heterogeneous nodes "
          f"(seed {spec.seed})...\n")

    # Shard checkpointing is on by default (the artifact cache);
    # disabled here so re-running the example always simulates.
    result = FleetRunner(spec, workers=1, cache=False).run()
    print(result.render())

    fp = result.fingerprint()
    print(f"\naggregate fingerprint: {fp}")

    # Same fleet, different execution shape -> same fingerprint.
    reshaped = FleetRunner(
        spec, workers=2, shard_size=max(1, n_nodes // 5), cache=False
    ).run()
    print(f"re-run (2 workers):    {reshaped.fingerprint()}")
    assert reshaped.fingerprint() == fp, "determinism contract broken!"
    print("bit-identical across worker counts and shard sizes — "
          "the fleet seed is the whole story.")

    print(
        "\nNext: `python -m repro fleet run --nodes 200 --workers 4` "
        "or `python -m repro experiment fleet`."
    )


if __name__ == "__main__":
    main()
