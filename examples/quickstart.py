#!/usr/bin/env python
"""Quickstart: simulate one day of a solar-powered sensor node.

Builds the paper's dual-channel node for the wild-animal-monitoring
workload, runs the two prior-work schedulers over the four canonical
weather days, and prints their deadline miss rates — the smallest
possible tour of the library's public API.

Run:  python examples/quickstart.py
Fast: REPRO_EXAMPLE_FAST=1 python examples/quickstart.py
"""

import os

from repro import quick_node, simulate
from repro.schedulers import GreedyEDFScheduler, InterTaskScheduler, IntraTaskScheduler
from repro.solar import four_day_trace
from repro.tasks import wam
from repro.timeline import Timeline

# Smoke-test knob: a coarse 24-period day instead of the paper's 144.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    # Time structure: 144 ten-minute periods per day, 30-second slots.
    timeline = Timeline(
        num_days=4, periods_per_day=24 if FAST else 144,
        slots_per_period=20, slot_seconds=30.0,
    )

    # The four representative weather days of the paper's Figure 7.
    trace = four_day_trace(timeline)
    print("Harvestable energy per day (J):")
    for day in range(4):
        print(f"  day {day + 1}: {trace.daily_energy(day):7.1f}")

    # The WAM benchmark: 8 tasks on 3 nonvolatile processors.
    graph = wam()
    print(f"\nWorkload: {graph!r}")
    print(f"  demand per period: {graph.total_energy():.2f} J "
          f"({graph.total_energy() * timeline.periods_per_day:.0f} J/day)")

    # A node with the default distributed capacitor bank.
    print("\nScheduler comparison (lower DMR is better):")
    for scheduler in (
        GreedyEDFScheduler(),
        InterTaskScheduler(),
        IntraTaskScheduler(),
    ):
        node = quick_node(graph)
        result = simulate(node, graph, trace, scheduler)
        print(
            f"  {scheduler.name:16s} DMR={result.dmr:.3f} "
            f"energy-utilisation={result.energy_utilization:.3f} "
            f"brownout-slots={result.total_brownout_slots}"
        )

    print(
        "\nNext: examples/wildlife_monitoring.py trains the paper's "
        "DBN-based scheduler and beats all of the above."
    )


if __name__ == "__main__":
    main()
