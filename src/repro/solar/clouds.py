"""Stochastic cloud attenuation processes.

Measured irradiance differs from the clear-sky curve by a cloud
transmittance factor in (0, 1].  This module models that factor with a
regime-switching process: a small Markov chain over sky states (clear /
scattered / broken / overcast), each with its own transmittance range
and mean dwell time, plus smooth within-state fluctuation from a
mean-reverting random walk.  The combination reproduces the qualitative
texture of real traces — long clear stretches, bursty mid-day cloud
fields, and fully overcast days — which is what the schedulers react
to.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SkyState", "CloudProcess", "constant_transmittance"]


@dataclasses.dataclass(frozen=True)
class SkyState:
    """One cloud regime.

    Parameters
    ----------
    name:
        Label used in reports.
    mean_transmittance:
        Centre of the transmittance band for this regime.
    spread:
        Half-width of within-regime fluctuation.
    dwell_seconds:
        Mean sojourn time before the chain re-draws a state.
    """

    name: str
    mean_transmittance: float
    spread: float
    dwell_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 < self.mean_transmittance <= 1.0:
            raise ValueError(
                f"{self.name}: mean_transmittance must be in (0, 1], "
                f"got {self.mean_transmittance}"
            )
        if self.spread < 0:
            raise ValueError(f"{self.name}: spread must be >= 0")
        if not self.dwell_seconds > 0:
            raise ValueError(f"{self.name}: dwell_seconds must be > 0")


#: Default sky regimes, roughly following okta-band statistics.
DEFAULT_STATES: Tuple[SkyState, ...] = (
    SkyState("clear", 0.97, 0.02, 5400.0),
    SkyState("scattered", 0.80, 0.10, 3600.0),
    SkyState("broken", 0.55, 0.15, 2700.0),
    SkyState("overcast", 0.22, 0.08, 7200.0),
)

#: Default transition preferences between regimes (row: from, col: to).
DEFAULT_TRANSITIONS = np.array(
    [
        [0.00, 0.70, 0.25, 0.05],
        [0.45, 0.00, 0.45, 0.10],
        [0.15, 0.45, 0.00, 0.40],
        [0.05, 0.20, 0.75, 0.00],
    ]
)


class CloudProcess:
    """Regime-switching cloud transmittance sampler.

    Parameters
    ----------
    states:
        Sky regimes; defaults to :data:`DEFAULT_STATES`.
    transitions:
        Row-stochastic (after normalisation) matrix of regime-switch
        preferences; the diagonal is ignored because dwell times handle
        self-persistence.
    smoothness_seconds:
        Time constant of the within-regime mean-reverting fluctuation.
    """

    def __init__(
        self,
        states: Sequence[SkyState] = DEFAULT_STATES,
        transitions: np.ndarray | None = None,
        smoothness_seconds: float = 600.0,
    ) -> None:
        if len(states) < 1:
            raise ValueError("need at least one sky state")
        self.states = tuple(states)
        matrix = (
            np.asarray(transitions, dtype=float)
            if transitions is not None
            else DEFAULT_TRANSITIONS[: len(states), : len(states)].copy()
        )
        if matrix.shape != (len(states), len(states)):
            raise ValueError(
                f"transition matrix shape {matrix.shape} does not match "
                f"{len(states)} states"
            )
        np.fill_diagonal(matrix, 0.0)
        row_sums = matrix.sum(axis=1, keepdims=True)
        if len(states) == 1:
            matrix = np.ones((1, 1))
        else:
            if np.any(row_sums <= 0):
                raise ValueError("every state needs a positive exit weight")
            matrix = matrix / row_sums
        self.transitions = matrix
        if not smoothness_seconds > 0:
            raise ValueError("smoothness_seconds must be > 0")
        self.smoothness_seconds = smoothness_seconds

    def sample(
        self,
        times: np.ndarray,
        rng: np.random.Generator,
        initial_state: int | None = None,
    ) -> np.ndarray:
        """Transmittance factor at each time point.

        ``times`` must be increasing; values are clipped to (0.02, 1.0].
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or len(times) == 0:
            raise ValueError("times must be a non-empty 1-D array")
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")

        n_states = len(self.states)
        state = (
            int(rng.integers(n_states))
            if initial_state is None
            else int(initial_state)
        )
        if not 0 <= state < n_states:
            raise ValueError(f"initial_state {state} out of range")

        out = np.empty_like(times)
        next_switch = times[0] + rng.exponential(
            self.states[state].dwell_seconds
        )
        fluctuation = 0.0
        prev_t = times[0]
        for i, t in enumerate(times):
            while t >= next_switch and n_states > 1:
                state = int(rng.choice(n_states, p=self.transitions[state]))
                next_switch += rng.exponential(self.states[state].dwell_seconds)
            regime = self.states[state]
            dt = max(t - prev_t, 0.0)
            # Ornstein-Uhlenbeck-style mean-reverting fluctuation.
            decay = np.exp(-dt / self.smoothness_seconds)
            noise_scale = regime.spread * np.sqrt(max(1.0 - decay**2, 0.0))
            fluctuation = fluctuation * decay + rng.normal(0.0, 1.0) * noise_scale
            value = regime.mean_transmittance + fluctuation
            out[i] = np.clip(value, 0.02, 1.0)
            prev_t = t
        return out


def constant_transmittance(times: np.ndarray, value: float) -> np.ndarray:
    """A degenerate cloud field: fixed transmittance (e.g. 1.0 = clear)."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"transmittance must be in (0, 1], got {value}")
    return np.full(len(np.asarray(times)), value)
