"""Photovoltaic panel model.

The paper's node carries a 3.5 cm × 4.5 cm panel with a tested average
converting efficiency of 6% (Section 6.1); those are the defaults here.
Output power is irradiance × area × efficiency, optionally derated by a
harvesting (MPPT / wiring) factor.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["SolarPanel"]


@dataclasses.dataclass(frozen=True)
class SolarPanel:
    """Flat PV panel converting GHI (W/m²) to electrical power (W).

    Parameters
    ----------
    area_m2:
        Panel area; default 3.5 cm × 4.5 cm = 15.75 cm².
    efficiency:
        Average converting efficiency; default 6%.
    harvesting_factor:
        Extra derating between panel output and the node's input rail
        (tracking and wiring losses); default 1.0 (already folded into
        the tested efficiency).
    """

    area_m2: float = 3.5e-2 * 4.5e-2
    efficiency: float = 0.06
    harvesting_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.area_m2 > 0:
            raise ValueError(f"area_m2 must be > 0, got {self.area_m2}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if not 0.0 < self.harvesting_factor <= 1.0:
            raise ValueError(
                f"harvesting_factor must be in (0, 1], got "
                f"{self.harvesting_factor}"
            )

    @property
    def peak_power(self) -> float:
        """Output at 1000 W/m² (standard test conditions), watts."""
        return self.power(1000.0)

    def power(self, ghi: np.ndarray | float) -> np.ndarray | float:
        """Electrical output power (W) for the given irradiance (W/m²)."""
        ghi_arr = np.asarray(ghi, dtype=float)
        if np.any(ghi_arr < 0):
            raise ValueError("irradiance must be >= 0")
        out = ghi_arr * self.area_m2 * self.efficiency * self.harvesting_factor
        return float(out) if np.isscalar(ghi) else out
