"""Clear-sky solar irradiance from solar geometry.

The paper drives its experiments from measured irradiance (NREL MIDC
[15]).  Offline datasets are not available here, so this module builds
the deterministic clear-sky component from first principles: solar
declination and hour angle give the solar elevation for a site latitude
and day of year, and the Haurwitz clear-sky model maps elevation to
global horizontal irradiance (GHI).  Stochastic cloud attenuation is
layered on top by :mod:`repro.solar.clouds`.

All irradiance values are W/m²; all times are seconds since local
midnight (solar time).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "solar_declination",
    "solar_elevation",
    "clear_sky_ghi",
    "ClearSkyModel",
]

_SECONDS_PER_DAY = 86_400.0
#: Haurwitz model coefficients (GHI = A * sin(el) * exp(-B / sin(el))).
_HAURWITZ_A = 1098.0
_HAURWITZ_B = 0.057


def solar_declination(day_of_year: int) -> float:
    """Solar declination in radians (Cooper's equation)."""
    return np.deg2rad(23.45) * np.sin(
        2.0 * np.pi * (284 + day_of_year) / 365.0
    )


def solar_elevation(
    time_of_day: np.ndarray | float,
    day_of_year: int,
    latitude_deg: float,
) -> np.ndarray:
    """Solar elevation angle in radians (negative below the horizon).

    Parameters
    ----------
    time_of_day:
        Seconds since local solar midnight; scalar or array.
    day_of_year:
        1–365.
    latitude_deg:
        Site latitude in degrees (positive north).
    """
    t = np.asarray(time_of_day, dtype=float)
    hour_angle = (t / _SECONDS_PER_DAY - 0.5) * 2.0 * np.pi
    lat = np.deg2rad(latitude_deg)
    dec = solar_declination(day_of_year)
    sin_el = np.sin(lat) * np.sin(dec) + np.cos(lat) * np.cos(dec) * np.cos(
        hour_angle
    )
    return np.arcsin(np.clip(sin_el, -1.0, 1.0))


def clear_sky_ghi(elevation_rad: np.ndarray | float) -> np.ndarray:
    """Haurwitz clear-sky GHI (W/m²) from solar elevation (radians)."""
    el = np.asarray(elevation_rad, dtype=float)
    sin_el = np.sin(np.clip(el, 0.0, np.pi / 2.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        ghi = _HAURWITZ_A * sin_el * np.exp(
            -_HAURWITZ_B / np.where(sin_el > 0, sin_el, 1.0)
        )
    return np.where(sin_el > 0, ghi, 0.0)


@dataclasses.dataclass(frozen=True)
class ClearSkyModel:
    """Clear-sky GHI for a fixed site.

    Parameters
    ----------
    latitude_deg:
        Site latitude; the default (39.74° N) matches NREL's Solar
        Radiation Research Laboratory in Golden, CO, the flagship MIDC
        station the paper's dataset [15] comes from.
    """

    latitude_deg: float = 39.74

    def ghi(
        self, time_of_day: np.ndarray | float, day_of_year: int
    ) -> np.ndarray:
        """Clear-sky GHI (W/m²) at the given times of a given day."""
        if not 1 <= day_of_year <= 366:
            raise ValueError(
                f"day_of_year must be in [1, 366], got {day_of_year}"
            )
        el = solar_elevation(time_of_day, day_of_year, self.latitude_deg)
        return clear_sky_ghi(el)

    def daylight_hours(self, day_of_year: int) -> float:
        """Approximate daylight duration in hours."""
        lat = np.deg2rad(self.latitude_deg)
        dec = solar_declination(day_of_year)
        cos_h0 = -np.tan(lat) * np.tan(dec)
        cos_h0 = float(np.clip(cos_h0, -1.0, 1.0))
        return 2.0 * np.rad2deg(np.arccos(cos_h0)) / 15.0
