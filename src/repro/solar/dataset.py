"""MIDC-style irradiance dataset I/O.

The paper drives its experiments from the NREL Measurement and
Instrumentation Data Center (MIDC) [15].  MIDC stations export CSV
files with a ``DATE``/local-time column pair and named irradiance
channels (e.g. ``Global Horizontal [W/m^2]``) sampled at one minute.
This module reads that format into a :class:`~repro.solar.trace.
SolarTrace` (so real station downloads drop straight into every
experiment) and writes synthetic traces back out in the same format
(so the repository's generated weather can be inspected with the same
tooling as real data).

Only the standard library ``csv`` module is used; values are averaged
into the timeline's slots, missing/negative readings are treated as
zero (MIDC uses ``-9999``-style sentinels at night).
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..timeline import SlotIndex, Timeline
from .panel import SolarPanel
from .trace import SolarTrace

__all__ = ["read_midc_csv", "write_midc_csv", "MIDCFormatError"]

#: Column header used for global horizontal irradiance.
GHI_COLUMN = "Global Horizontal [W/m^2]"
DATE_COLUMN = "DATE (MM/DD/YYYY)"
TIME_COLUMN = "MST"


class MIDCFormatError(ValueError):
    """Raised when a CSV does not look like a MIDC export."""


def _parse_time(date_text: str, time_text: str) -> Tuple[_dt.date, float]:
    try:
        date = _dt.datetime.strptime(date_text.strip(), "%m/%d/%Y").date()
    except ValueError as exc:
        raise MIDCFormatError(f"bad date {date_text!r}") from exc
    time_text = time_text.strip()
    try:
        parts = time_text.split(":")
        if len(parts) == 2:
            hours, minutes = parts
            secs = 0
        elif len(parts) == 3:
            hours, minutes, sec_text = parts
            secs = int(sec_text)
        else:
            raise ValueError(time_text)
        seconds = int(hours) * 3600.0 + int(minutes) * 60.0 + float(secs)
    except ValueError as exc:
        raise MIDCFormatError(f"bad time {time_text!r}") from exc
    if not 0.0 <= seconds < 86400.0:
        raise MIDCFormatError(f"time {time_text!r} out of range")
    return date, seconds


def read_midc_csv(
    path: Union[str, Path],
    timeline: Timeline,
    panel: Optional[SolarPanel] = None,
    ghi_column: str = GHI_COLUMN,
    on_invalid: str = "repair",
) -> SolarTrace:
    """Load a MIDC CSV into a slot-resampled power trace.

    The file must cover at least ``timeline.num_days`` distinct days;
    readings are averaged per slot (using the slot's wall-clock span),
    empty slots fall back to 0 W/m², and irradiance is converted to
    electrical power through ``panel``.

    ``on_invalid`` controls what happens to readings a real station
    export gets wrong — NaN/non-finite or negative irradiance (MIDC
    uses ``-9999``-style sentinels at night) and duplicated
    timestamps.  ``"repair"`` (the default) zeroes invalid readings
    and averages duplicates; ``"reject"`` raises
    :class:`MIDCFormatError` naming the offending line, for pipelines
    that must not silently accept dirty data.
    """
    if on_invalid not in ("repair", "reject"):
        raise ValueError(
            f"on_invalid must be 'repair' or 'reject', got {on_invalid!r}"
        )
    path = Path(path)
    panel = panel or SolarPanel()

    # date -> seconds-of-day -> [sum, count] (count > 1 == duplicate)
    by_day: Dict[_dt.date, Dict[float, List[float]]] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise MIDCFormatError(f"{path} is empty")
        missing = {DATE_COLUMN, TIME_COLUMN, ghi_column} - set(
            reader.fieldnames
        )
        if missing:
            raise MIDCFormatError(
                f"{path} is missing MIDC columns: {sorted(missing)}"
            )
        for lineno, row in enumerate(reader, start=2):
            date, seconds = _parse_time(row[DATE_COLUMN], row[TIME_COLUMN])
            raw = row[ghi_column]
            try:
                value = float(raw)
            except (TypeError, ValueError):
                value = float("nan")
            if not np.isfinite(value) or value < 0.0:
                if on_invalid == "reject":
                    raise MIDCFormatError(
                        f"{path}:{lineno}: invalid irradiance {raw!r} "
                        f"in column {ghi_column!r}"
                    )
                value = 0.0
            day = by_day.setdefault(date, {})
            if seconds in day:
                if on_invalid == "reject":
                    raise MIDCFormatError(
                        f"{path}:{lineno}: duplicate timestamp "
                        f"{row[DATE_COLUMN].strip()} "
                        f"{row[TIME_COLUMN].strip()}"
                    )
                cell = day[seconds]
                cell[0] += value
                cell[1] += 1.0
            else:
                day[seconds] = [value, 1.0]

    days = sorted(by_day)
    if len(days) < timeline.num_days:
        raise MIDCFormatError(
            f"{path} covers {len(days)} day(s); timeline needs "
            f"{timeline.num_days}"
        )

    power = np.zeros(
        (timeline.num_days, timeline.periods_per_day,
         timeline.slots_per_period)
    )
    for day_index in range(timeline.num_days):
        cells = by_day[days[day_index]]
        times = np.array(sorted(cells))
        values = np.array([cells[t][0] / cells[t][1] for t in times])
        for period in range(timeline.periods_per_day):
            for slot in range(timeline.slots_per_period):
                start = timeline.slot_time_of_day(
                    SlotIndex(day_index, period, slot)
                )
                end = start + timeline.slot_seconds
                mask = (times >= start) & (times < end)
                if mask.any():
                    ghi = float(values[mask].mean())
                else:
                    # No reading inside the slot: nearest sample.
                    nearest = int(np.argmin(np.abs(times - start)))
                    ghi = float(values[nearest])
                power[day_index, period, slot] = panel.power(ghi)
    return SolarTrace(timeline, power)


def write_midc_csv(
    path: Union[str, Path],
    trace: SolarTrace,
    panel: Optional[SolarPanel] = None,
    start_date: _dt.date = _dt.date(2014, 1, 1),
    ghi_column: str = GHI_COLUMN,
) -> None:
    """Export a power trace as a MIDC-style CSV.

    Electrical power is converted back to GHI through ``panel`` (the
    inverse of :func:`read_midc_csv`), one row per slot.
    """
    path = Path(path)
    panel = panel or SolarPanel()
    scale = panel.area_m2 * panel.efficiency * panel.harvesting_factor
    timeline = trace.timeline

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([DATE_COLUMN, TIME_COLUMN, ghi_column])
        for day in range(timeline.num_days):
            date = start_date + _dt.timedelta(days=day)
            for period in range(timeline.periods_per_day):
                for slot in range(timeline.slots_per_period):
                    seconds = timeline.slot_time_of_day(
                        SlotIndex(day, period, slot)
                    )
                    hh = int(seconds // 3600)
                    mm = int((seconds % 3600) // 60)
                    ss = int(round(seconds % 60))
                    # MIDC's native exports are minute-based (HH:MM);
                    # sub-minute slots need the extended form.
                    stamp = (
                        f"{hh:02d}:{mm:02d}"
                        if ss == 0
                        else f"{hh:02d}:{mm:02d}:{ss:02d}"
                    )
                    ghi = trace.power[day, period, slot] / scale
                    writer.writerow(
                        [date.strftime("%m/%d/%Y"), stamp, f"{ghi:.3f}"]
                    )
