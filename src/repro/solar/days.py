"""Day archetypes and multi-day synthetic weather.

Figure 7 of the paper selects the solar power of four individual days
"representing different patterns in a whole year" for the daily tests,
and two months of data for the monthly tests.  This module provides:

* four scripted day archetypes (clear summer day, morning-cloud spring
  day, broken-cloud day, overcast winter day) ordered by decreasing
  harvestable energy, matching the paper's Day 1 → Day 4;
* seeded multi-day synthetic weather built from a day-type Markov chain
  plus the :class:`~repro.solar.clouds.CloudProcess`, used for the
  monthly experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

import numpy as np

from ..timeline import Timeline
from .clouds import CloudProcess, SkyState
from .irradiance import ClearSkyModel
from .panel import SolarPanel
from .trace import SolarTrace

__all__ = [
    "DayArchetype",
    "FOUR_DAYS",
    "four_day_trace",
    "archetype_trace",
    "synthetic_trace",
]

_HOUR = 3600.0


@dataclasses.dataclass(frozen=True)
class DayArchetype:
    """A scripted weather day.

    The transmittance envelope is a piecewise-linear function of the
    hour of day given by ``breakpoints``: pairs ``(hour, transmittance)``
    interpolated in between.  ``noise`` adds small seeded fluctuation on
    top of the envelope so traces are not perfectly smooth.
    """

    name: str
    day_of_year: int
    breakpoints: Tuple[Tuple[float, float], ...]
    noise: float = 0.02

    def __post_init__(self) -> None:
        if not 1 <= self.day_of_year <= 366:
            raise ValueError(f"{self.name}: bad day_of_year {self.day_of_year}")
        hours = [h for h, _ in self.breakpoints]
        if len(hours) < 2 or hours != sorted(hours):
            raise ValueError(
                f"{self.name}: breakpoints must be >= 2 and hour-sorted"
            )
        for h, tr in self.breakpoints:
            if not 0.0 <= h <= 24.0:
                raise ValueError(f"{self.name}: hour {h} out of [0, 24]")
            if not 0.0 < tr <= 1.0:
                raise ValueError(
                    f"{self.name}: transmittance {tr} out of (0, 1]"
                )

    def transmittance(self, time_of_day: np.ndarray) -> np.ndarray:
        hours = np.asarray(time_of_day, dtype=float) / _HOUR
        xs = np.array([h for h, _ in self.breakpoints])
        ys = np.array([tr for _, tr in self.breakpoints])
        return np.interp(hours, xs, ys)


#: Figure 7's four representative days, ordered by decreasing energy.
FOUR_DAYS: Tuple[DayArchetype, ...] = (
    DayArchetype(
        "day1-clear-summer",
        day_of_year=172,
        breakpoints=((0.0, 0.97), (24.0, 0.97)),
        noise=0.01,
    ),
    DayArchetype(
        "day2-morning-cloud",
        day_of_year=130,
        breakpoints=(
            (0.0, 0.40),
            (9.0, 0.40),
            (11.0, 0.88),
            (24.0, 0.93),
        ),
        noise=0.04,
    ),
    DayArchetype(
        "day3-broken-cloud",
        day_of_year=85,
        breakpoints=(
            (0.0, 0.60),
            (8.0, 0.38),
            (10.0, 0.72),
            (12.0, 0.42),
            (14.0, 0.68),
            (16.0, 0.38),
            (24.0, 0.50),
        ),
        noise=0.08,
    ),
    DayArchetype(
        "day4-overcast-winter",
        day_of_year=330,
        breakpoints=((0.0, 0.18), (24.0, 0.15)),
        noise=0.03,
    ),
)


def archetype_trace(
    timeline: Timeline,
    archetypes: Sequence[DayArchetype],
    panel: SolarPanel | None = None,
    sky: ClearSkyModel | None = None,
    seed: int = 7,
) -> SolarTrace:
    """Solar trace whose day ``i`` follows ``archetypes[i]``.

    ``timeline.num_days`` must equal ``len(archetypes)``.
    """
    if timeline.num_days != len(archetypes):
        raise ValueError(
            f"timeline has {timeline.num_days} days but "
            f"{len(archetypes)} archetypes were given"
        )
    panel = panel or SolarPanel()
    sky = sky or ClearSkyModel()
    rng = np.random.default_rng(seed)
    noise_rngs = [
        np.random.default_rng(rng.integers(2**63)) for _ in archetypes
    ]

    def power_fn(day: int, times: np.ndarray) -> np.ndarray:
        arch = archetypes[day]
        ghi = sky.ghi(times, arch.day_of_year)
        transmit = arch.transmittance(times)
        if arch.noise > 0:
            wobble = noise_rngs[day].normal(0.0, arch.noise, size=len(times))
            transmit = np.clip(transmit + wobble, 0.02, 1.0)
        return panel.power(ghi * transmit)

    return SolarTrace.from_function(timeline, power_fn)


def four_day_trace(
    timeline: Timeline,
    panel: SolarPanel | None = None,
    seed: int = 7,
) -> SolarTrace:
    """The paper's four individual test days (Figure 7).

    ``timeline.num_days`` must be 4.
    """
    return archetype_trace(timeline, FOUR_DAYS, panel=panel, seed=seed)


#: Day-type labels for the synthetic weather chain, with initial sky
#: regime and the day-of-year drift per type left to the generator.
_DAY_TYPES: Tuple[str, ...] = ("sunny", "mixed", "cloudy", "overcast")
_DAY_TYPE_TRANSITIONS = np.array(
    [
        [0.60, 0.25, 0.10, 0.05],
        [0.30, 0.35, 0.25, 0.10],
        [0.10, 0.30, 0.40, 0.20],
        [0.10, 0.20, 0.35, 0.35],
    ]
)
_DAY_TYPE_STATES: Dict[str, Tuple[SkyState, ...]] = {
    "sunny": (
        SkyState("clear", 0.96, 0.02, 14400.0),
        SkyState("scattered", 0.82, 0.08, 3600.0),
    ),
    "mixed": (
        SkyState("clear", 0.93, 0.03, 5400.0),
        SkyState("scattered", 0.75, 0.10, 3600.0),
        SkyState("broken", 0.50, 0.14, 2700.0),
    ),
    "cloudy": (
        SkyState("scattered", 0.70, 0.10, 3600.0),
        SkyState("broken", 0.48, 0.14, 3600.0),
        SkyState("overcast", 0.25, 0.08, 5400.0),
    ),
    "overcast": (
        SkyState("broken", 0.40, 0.10, 3600.0),
        SkyState("overcast", 0.18, 0.06, 10800.0),
    ),
}


def synthetic_trace(
    timeline: Timeline,
    start_day_of_year: int = 100,
    panel: SolarPanel | None = None,
    sky: ClearSkyModel | None = None,
    seed: int = 2015,
) -> SolarTrace:
    """Seeded multi-day synthetic weather for monthly experiments.

    Day types follow a Markov chain (sunny / mixed / cloudy / overcast)
    so consecutive days are correlated — the property the WCMA
    predictor and the paper's prediction-length analysis rely on.  The
    day of year advances from ``start_day_of_year``, so multi-month
    traces also see the seasonal trend.
    """
    panel = panel or SolarPanel()
    sky = sky or ClearSkyModel()
    rng = np.random.default_rng(seed)

    day_types = []
    state = int(rng.integers(len(_DAY_TYPES)))
    for _ in range(timeline.num_days):
        day_types.append(_DAY_TYPES[state])
        state = int(rng.choice(len(_DAY_TYPES), p=_DAY_TYPE_TRANSITIONS[state]))

    transmittances: Dict[int, np.ndarray] = {}

    def power_fn(day: int, times: np.ndarray) -> np.ndarray:
        doy = (start_day_of_year - 1 + day) % 365 + 1
        ghi = sky.ghi(times, doy)
        if day not in transmittances:
            process = CloudProcess(_DAY_TYPE_STATES[day_types[day]])
            day_rng = np.random.default_rng(seed * 1_000_003 + day)
            transmittances[day] = process.sample(times, day_rng)
        return panel.power(ghi * transmittances[day])

    trace = SolarTrace.from_function(timeline, power_fn)
    return trace
