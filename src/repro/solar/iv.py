"""Single-diode photovoltaic IV model and harvesting strategies.

The flat-efficiency :class:`~repro.solar.panel.SolarPanel` is all the
scheduler needs, but its 6% "tested average converting efficiency"
hides a physical story: the node family the paper builds on harvests
*storage-less and converter-less* [10] — the PV cell drives the load
rail directly, so the operating point sits wherever the rail voltage
is, not at the maximum power point (MPP).  This module provides the
standard single-diode cell model and the two harvesting strategies, so
the repository can quantify that design choice:

* :class:`SingleDiodePanel` — ``I(V) = I_ph - I_0 (exp(V'/(n·N·V_t)) - 1)
  - V'/R_sh`` with series resistance, solved by bisection (numpy only);
* :class:`PerfectMPPT` — operates at the MPP for every irradiance;
* :class:`FixedVoltageHarvester` — converter-less operation at the
  rail voltage; its tracking ratio against MPP is exactly the derating
  folded into the flat panel efficiency.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

__all__ = [
    "SingleDiodePanel",
    "PerfectMPPT",
    "FixedVoltageHarvester",
    "tracking_ratio",
]

#: Thermal voltage at 25 °C, volts.
THERMAL_VOLTAGE = 0.02569


@dataclasses.dataclass(frozen=True)
class SingleDiodePanel:
    """Single-diode model of a small PV panel.

    Parameters (defaults approximate the paper's 15.75 cm² amorphous
    panel with ~5 V open-circuit voltage):

    short_circuit_current:
        ``I_sc`` at 1000 W/m², amperes (photo-current scales linearly
        with irradiance).
    open_circuit_voltage:
        ``V_oc`` at 1000 W/m², volts.
    cells_in_series:
        Number of series cells ``N``.
    ideality:
        Diode ideality factor ``n``.
    series_resistance / shunt_resistance:
        Parasitic resistances, ohms.
    """

    short_circuit_current: float = 0.055
    open_circuit_voltage: float = 5.0
    cells_in_series: int = 8
    ideality: float = 1.5
    series_resistance: float = 2.0
    shunt_resistance: float = 2000.0

    def __post_init__(self) -> None:
        if not self.short_circuit_current > 0:
            raise ValueError("short_circuit_current must be > 0")
        if not self.open_circuit_voltage > 0:
            raise ValueError("open_circuit_voltage must be > 0")
        if self.cells_in_series < 1:
            raise ValueError("cells_in_series must be >= 1")
        if not self.ideality > 0:
            raise ValueError("ideality must be > 0")
        if self.series_resistance < 0 or self.shunt_resistance <= 0:
            raise ValueError("resistances must be >= 0 (shunt > 0)")

    # ------------------------------------------------------------------
    @property
    def _n_vt(self) -> float:
        return self.ideality * self.cells_in_series * THERMAL_VOLTAGE

    @property
    def _saturation_current(self) -> float:
        """``I_0`` calibrated so that I(V_oc) = 0 at full sun."""
        return self.short_circuit_current / (
            np.exp(self.open_circuit_voltage / self._n_vt) - 1.0
        )

    def current(self, voltage: float, irradiance: float) -> float:
        """Terminal current (A) at a terminal voltage and irradiance."""
        if voltage < 0:
            raise ValueError(f"voltage must be >= 0, got {voltage}")
        if irradiance < 0:
            raise ValueError(f"irradiance must be >= 0, got {irradiance}")
        if irradiance == 0.0:
            return 0.0
        i_ph = self.short_circuit_current * irradiance / 1000.0

        # Solve I = I_ph - I0*(exp((V + I*Rs)/nVt) - 1) - (V + I*Rs)/Rsh
        # for I by bisection (the RHS is decreasing in I).
        def residual(i: float) -> float:
            v_j = voltage + i * self.series_resistance
            return (
                i_ph
                - self._saturation_current * (np.exp(v_j / self._n_vt) - 1.0)
                - v_j / self.shunt_resistance
                - i
            )

        lo, hi = 0.0, i_ph
        if residual(lo) <= 0.0:
            return 0.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if residual(mid) > 0.0:
                lo = mid
            else:
                hi = mid
        return max(lo, 0.0)

    def power(self, voltage: float, irradiance: float) -> float:
        """Output power (W) at a terminal voltage."""
        return voltage * self.current(voltage, irradiance)

    def mpp(self, irradiance: float) -> Tuple[float, float]:
        """Maximum power point ``(v_mpp, p_mpp)`` via golden search."""
        if irradiance <= 0.0:
            return 0.0, 0.0
        lo, hi = 0.0, self.open_circuit_voltage
        phi = (np.sqrt(5.0) - 1.0) / 2.0
        a, b = hi - phi * (hi - lo), lo + phi * (hi - lo)
        fa, fb = self.power(a, irradiance), self.power(b, irradiance)
        for _ in range(60):
            if fa < fb:
                lo, a, fa = a, b, fb
                b = lo + phi * (hi - lo)
                fb = self.power(b, irradiance)
            else:
                hi, b, fb = b, a, fa
                a = hi - phi * (hi - lo)
                fa = self.power(a, irradiance)
        v = 0.5 * (lo + hi)
        return v, self.power(v, irradiance)


@dataclasses.dataclass(frozen=True)
class PerfectMPPT:
    """Ideal tracker: always operates the panel at its MPP."""

    panel: SingleDiodePanel

    def harvest(self, irradiance: float) -> float:
        return self.panel.mpp(irradiance)[1]


@dataclasses.dataclass(frozen=True)
class FixedVoltageHarvester:
    """Converter-less harvesting at a fixed rail voltage [10]."""

    panel: SingleDiodePanel
    rail_voltage: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.rail_voltage:
            raise ValueError(
                f"rail_voltage must be > 0, got {self.rail_voltage}"
            )

    def harvest(self, irradiance: float) -> float:
        return self.panel.power(self.rail_voltage, irradiance)


def tracking_ratio(
    harvester, panel: SingleDiodePanel, irradiances: np.ndarray
) -> float:
    """Energy harvested relative to perfect MPP over a profile."""
    irradiances = np.asarray(irradiances, dtype=float)
    if irradiances.ndim != 1 or len(irradiances) == 0:
        raise ValueError("irradiances must be a non-empty 1-D array")
    harvested = sum(harvester.harvest(g) for g in irradiances)
    ideal = sum(panel.mpp(g)[1] for g in irradiances)
    return harvested / ideal if ideal > 0 else 1.0
