"""Solar substrate: irradiance, clouds, panel, traces and predictors."""

from .irradiance import (
    ClearSkyModel,
    clear_sky_ghi,
    solar_declination,
    solar_elevation,
)
from .clouds import CloudProcess, SkyState, constant_transmittance
from .panel import SolarPanel
from .trace import SolarTrace
from .days import (
    FOUR_DAYS,
    DayArchetype,
    archetype_trace,
    four_day_trace,
    synthetic_trace,
)
from .prediction import (
    EWMAPredictor,
    PerfectPredictor,
    SolarPredictor,
    WCMAPredictor,
)
from .dataset import MIDCFormatError, read_midc_csv, write_midc_csv
from .iv import (
    FixedVoltageHarvester,
    PerfectMPPT,
    SingleDiodePanel,
    tracking_ratio,
)

__all__ = [
    "ClearSkyModel",
    "clear_sky_ghi",
    "solar_declination",
    "solar_elevation",
    "CloudProcess",
    "SkyState",
    "constant_transmittance",
    "SolarPanel",
    "SolarTrace",
    "DayArchetype",
    "FOUR_DAYS",
    "archetype_trace",
    "four_day_trace",
    "synthetic_trace",
    "SolarPredictor",
    "WCMAPredictor",
    "EWMAPredictor",
    "PerfectPredictor",
    "read_midc_csv",
    "write_midc_csv",
    "MIDCFormatError",
    "SingleDiodePanel",
    "PerfectMPPT",
    "FixedVoltageHarvester",
    "tracking_ratio",
]
