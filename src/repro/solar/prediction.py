"""Solar energy predictors.

The inter-task baseline [3] is a WCMA-based lazy scheduler, and the
paper's Figure 10(a) studies how the DMR of long-term scheduling
depends on the solar prediction length.  This module provides the three
predictors those experiments need, all working at period granularity
(the energy harvestable in each task period):

* :class:`WCMAPredictor` — Weather-Conditioned Moving Average
  (Piorno et al., the predictor inside HOLLOWS [3]);
* :class:`EWMAPredictor` — the classical per-slot-of-day exponential
  moving average (Kansal et al.), a simpler baseline;
* :class:`PerfectPredictor` — an oracle reading the true trace, used
  for upper bounds and for isolating prediction error in ablations.

Predictors are *causal*: they may only use energies passed to
:meth:`observe` for periods strictly before the one being predicted,
plus the current day index.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..timeline import Timeline
from .trace import SolarTrace

__all__ = [
    "SolarPredictor",
    "WCMAPredictor",
    "EWMAPredictor",
    "PerfectPredictor",
]


class SolarPredictor(abc.ABC):
    """Causal per-period solar energy predictor."""

    def __init__(self, timeline: Timeline) -> None:
        self.timeline = timeline

    @abc.abstractmethod
    def observe(self, day: int, period: int, energy: float) -> None:
        """Record the measured harvestable energy of a finished period."""

    @abc.abstractmethod
    def predict(self, day: int, period: int) -> float:
        """Predicted harvestable energy (J) of the given period."""

    def predict_horizon(self, day: int, period: int, count: int) -> np.ndarray:
        """Predicted energies for ``count`` periods starting at
        ``(day, period)``; clipped at the end of the horizon."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        out = []
        flat = self.timeline.flat_period(day, period)
        last = self.timeline.total_periods
        for offset in range(count):
            if flat + offset >= last:
                break
            d, p = self.timeline.unflatten_period(flat + offset)
            out.append(self.predict(d, p))
        return np.array(out)


class _HistoryMatrix:
    """Observed per-period energies, indexed ``[day, period]``."""

    def __init__(self, timeline: Timeline) -> None:
        self.timeline = timeline
        self._data = np.full(
            (timeline.num_days, timeline.periods_per_day), np.nan
        )

    def store(self, day: int, period: int, energy: float) -> None:
        if energy < 0:
            raise ValueError(f"energy must be >= 0, got {energy}")
        self._data[day, period] = energy

    def get(self, day: int, period: int) -> float:
        if day < 0:
            return np.nan
        return float(self._data[day, period])

    def past_days_at(self, day: int, period: int, depth: int) -> np.ndarray:
        """Observed energies of ``period`` on the previous ``depth`` days
        (most recent first), NaNs dropped."""
        values = [
            self._data[d, period]
            for d in range(day - 1, max(day - 1 - depth, -1), -1)
        ]
        arr = np.array(values, dtype=float)
        return arr[~np.isnan(arr)]


class WCMAPredictor(SolarPredictor):
    """Weather-Conditioned Moving Average.

    For the next period the prediction combines the energy of the
    current period with the mean of the same period over the previous
    ``depth_days`` days, scaled by a GAP factor that measures how
    today's recent periods compare to their historical means:

    ``E(d, p+1) = alpha * E(d, p) + (1 - alpha) * GAP * M(p+1)``

    Before any history exists the predictor falls back to the last
    observation (persistence).
    """

    def __init__(
        self,
        timeline: Timeline,
        alpha: float = 0.7,
        depth_days: int = 4,
        gap_window: int = 3,
    ) -> None:
        super().__init__(timeline)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if depth_days < 1:
            raise ValueError(f"depth_days must be >= 1, got {depth_days}")
        if gap_window < 1:
            raise ValueError(f"gap_window must be >= 1, got {gap_window}")
        self.alpha = alpha
        self.depth_days = depth_days
        self.gap_window = gap_window
        self._history = _HistoryMatrix(timeline)
        self._last_observation: float = 0.0
        self._last_flat: int = -1

    def observe(self, day: int, period: int, energy: float) -> None:
        self._history.store(day, period, energy)
        self._last_observation = energy
        self._last_flat = self.timeline.flat_period(day, period)

    def _mean_at(self, day: int, period: int) -> Optional[float]:
        past = self._history.past_days_at(day, period, self.depth_days)
        if len(past) == 0:
            return None
        return float(past.mean())

    def _gap(self, day: int, period: int) -> float:
        """Weighted ratio of today's recent energies to their means."""
        ratios = []
        weights = []
        for k in range(1, self.gap_window + 1):
            p = period - k
            if p < 0:
                break
            observed = self._history.get(day, p)
            mean = self._mean_at(day, p)
            if np.isnan(observed) or mean is None:
                continue
            if mean < 1e-9:
                continue  # night periods carry no weather information
            ratios.append(observed / mean)
            weights.append(self.gap_window + 1 - k)
        if not ratios:
            return 1.0
        ratios_arr = np.array(ratios)
        weights_arr = np.array(weights, dtype=float)
        return float((ratios_arr * weights_arr).sum() / weights_arr.sum())

    def predict(self, day: int, period: int) -> float:
        flat = self.timeline.flat_period(day, period)
        mean = self._mean_at(day, period)
        gap = self._gap(day, period)
        if mean is None:
            # No same-period history yet: persistence.
            return max(self._last_observation, 0.0)
        conditioned = gap * mean
        if flat == self._last_flat + 1:
            # One-step-ahead: blend with the just-finished period.
            return max(
                self.alpha * self._last_observation
                + (1.0 - self.alpha) * conditioned,
                0.0,
            )
        return max(conditioned, 0.0)


class EWMAPredictor(SolarPredictor):
    """Per-period-of-day exponential moving average."""

    def __init__(self, timeline: Timeline, alpha: float = 0.5) -> None:
        super().__init__(timeline)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self._estimate = np.full(timeline.periods_per_day, np.nan)
        self._last_observation = 0.0

    def observe(self, day: int, period: int, energy: float) -> None:
        if energy < 0:
            raise ValueError(f"energy must be >= 0, got {energy}")
        if np.isnan(self._estimate[period]):
            self._estimate[period] = energy
        else:
            self._estimate[period] = (
                self.alpha * energy
                + (1.0 - self.alpha) * self._estimate[period]
            )
        self._last_observation = energy

    def predict(self, day: int, period: int) -> float:
        value = self._estimate[period]
        if np.isnan(value):
            return self._last_observation
        return float(value)


class PerfectPredictor(SolarPredictor):
    """Oracle predictor reading the true trace (upper bound)."""

    def __init__(self, timeline: Timeline, trace: SolarTrace) -> None:
        super().__init__(timeline)
        if trace.timeline != timeline:
            raise ValueError("trace timeline does not match predictor timeline")
        self.trace = trace

    def observe(self, day: int, period: int, energy: float) -> None:
        pass  # the oracle needs no history

    def predict(self, day: int, period: int) -> float:
        return self.trace.period_energy(day, period)
