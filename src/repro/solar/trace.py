"""Slot-resampled solar power traces.

The schedulers and the simulator consume solar power as the per-slot
average ``P^s_{i,j,m}`` (Table 1).  :class:`SolarTrace` stores that
three-dimensional array aligned to a :class:`~repro.timeline.Timeline`
and provides energy aggregation helpers.  Traces are built from a
power-density function of wall-clock time via :meth:`from_function`,
which integrates the function over each slot with sub-sampling.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..timeline import SlotIndex, Timeline

__all__ = ["SolarTrace"]


class SolarTrace:
    """Per-slot average solar power over a scheduling horizon.

    Parameters
    ----------
    timeline:
        The time structure the trace is aligned to.
    power:
        Array of shape ``(num_days, periods_per_day, slots_per_period)``
        holding the average electrical power (W) in each slot.
    """

    def __init__(self, timeline: Timeline, power: np.ndarray) -> None:
        expected = (
            timeline.num_days,
            timeline.periods_per_day,
            timeline.slots_per_period,
        )
        power = np.asarray(power, dtype=float)
        if power.shape != expected:
            raise ValueError(
                f"power shape {power.shape} does not match timeline "
                f"{expected}"
            )
        if np.any(power < 0):
            raise ValueError("solar power must be >= 0 everywhere")
        if not np.all(np.isfinite(power)):
            raise ValueError("solar power must be finite everywhere")
        self.timeline = timeline
        self._power = power
        self._power.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        timeline: Timeline,
        power_fn: Callable[[int, np.ndarray], np.ndarray],
        subsamples: int = 4,
    ) -> "SolarTrace":
        """Build a trace by averaging a continuous power function.

        Parameters
        ----------
        power_fn:
            ``power_fn(day, times)`` returns electrical power (W) at
            each of ``times`` (seconds since that day's midnight).
        subsamples:
            Sub-samples per slot used for the average.
        """
        if subsamples < 1:
            raise ValueError(f"subsamples must be >= 1, got {subsamples}")
        tl = timeline
        power = np.zeros(
            (tl.num_days, tl.periods_per_day, tl.slots_per_period)
        )
        offsets = (np.arange(subsamples) + 0.5) / subsamples * tl.slot_seconds
        for day in range(tl.num_days):
            starts = np.array(
                [
                    tl.slot_time_of_day(SlotIndex(day, j, m))
                    for j in range(tl.periods_per_day)
                    for m in range(tl.slots_per_period)
                ]
            )
            sample_times = (starts[:, None] + offsets[None, :]).ravel()
            values = np.asarray(power_fn(day, sample_times), dtype=float)
            means = values.reshape(len(starts), subsamples).mean(axis=1)
            power[day] = means.reshape(
                tl.periods_per_day, tl.slots_per_period
            )
        return cls(timeline, power)

    # ------------------------------------------------------------------
    @property
    def power(self) -> np.ndarray:
        """Read-only array of shape ``(N_d, N_p, N_s)``, watts."""
        return self._power

    def slot_power(self, index: SlotIndex) -> float:
        """Average power in one slot, watts."""
        return float(self._power[index.day, index.period, index.slot])

    def period_power(self, day: int, period: int) -> np.ndarray:
        """Per-slot power of one period, watts (length ``N_s``)."""
        return self._power[day, period].copy()

    def period_energy(self, day: int, period: int) -> float:
        """Harvestable energy in one period, joules."""
        return float(
            self._power[day, period].sum() * self.timeline.slot_seconds
        )

    def daily_energy(self, day: int) -> float:
        """Harvestable energy in one day, joules."""
        return float(self._power[day].sum() * self.timeline.slot_seconds)

    def total_energy(self) -> float:
        """Harvestable energy over the whole horizon, joules."""
        return float(self._power.sum() * self.timeline.slot_seconds)

    def day_slice(self, day: int) -> "SolarTrace":
        """A one-day trace containing only ``day``."""
        if not 0 <= day < self.timeline.num_days:
            raise IndexError(f"day {day} out of range")
        return SolarTrace(
            self.timeline.with_days(1), self._power[day : day + 1].copy()
        )

    def __repr__(self) -> str:
        return (
            f"SolarTrace(days={self.timeline.num_days}, "
            f"total={self.total_energy():.1f} J)"
        )
