"""Simulation records and results.

The engine produces one :class:`PeriodRecord` per period (always) and,
when asked, dense per-slot arrays.  :class:`SimulationResult` is the
analysis-facing container: long-term DMR (Eq. 6), energy utilisation,
per-day breakdowns, and migration statistics — everything the paper's
figures aggregate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..timeline import Timeline

__all__ = ["PeriodRecord", "SlotArrays", "SimulationResult"]


@dataclasses.dataclass(frozen=True)
class PeriodRecord:
    """Aggregate outcome of one period."""

    day: int
    period: int
    dmr: float
    miss_count: int
    executed: np.ndarray  # te_{i,j}(n): ran at all this period
    solar_energy: float  # harvestable energy at the panel output, J
    load_energy: float  # energy consumed by tasks, J
    direct_energy: float  # part of load served by the direct channel, J
    storage_energy: float  # part of load served from capacitors, J
    charged_energy: float  # energy stored into capacitors, J
    offered_surplus: float  # surplus presented to storage, J
    leakage_energy: float  # capacitor self-discharge, J
    brownout_slots: int
    start_voltages: np.ndarray
    active_index: int


@dataclasses.dataclass
class SlotArrays:
    """Dense per-slot series (optional, shape = total slots)."""

    solar_power: np.ndarray
    load_power: np.ndarray
    run_fraction: np.ndarray
    active_voltage: np.ndarray
    active_index: np.ndarray


class SimulationResult:
    """All records of one simulation run plus derived metrics."""

    def __init__(
        self,
        timeline: Timeline,
        scheduler_name: str,
        periods: List[PeriodRecord],
        slots: Optional[SlotArrays] = None,
    ) -> None:
        if len(periods) != timeline.total_periods:
            raise ValueError(
                f"expected {timeline.total_periods} period records, "
                f"got {len(periods)}"
            )
        self.timeline = timeline
        self.scheduler_name = scheduler_name
        self.periods = periods
        self.slots = slots

    # ------------------------------------------------------------------
    # DMR metrics
    # ------------------------------------------------------------------
    @property
    def dmr(self) -> float:
        """Long-term deadline miss rate (objective (6))."""
        return float(np.mean([p.dmr for p in self.periods]))

    def dmr_series(self) -> np.ndarray:
        """Per-period DMR in chronological order."""
        return np.array([p.dmr for p in self.periods])

    def dmr_by_day(self) -> np.ndarray:
        """Mean DMR of each day."""
        series = self.dmr_series().reshape(
            self.timeline.num_days, self.timeline.periods_per_day
        )
        return series.mean(axis=1)

    def accumulated_dmr(self) -> np.ndarray:
        """Running mean of the per-period DMR (Eq. 19)."""
        series = self.dmr_series()
        return np.cumsum(series) / np.arange(1, len(series) + 1)

    # ------------------------------------------------------------------
    # Energy metrics
    # ------------------------------------------------------------------
    @property
    def total_solar_energy(self) -> float:
        return float(sum(p.solar_energy for p in self.periods))

    @property
    def total_load_energy(self) -> float:
        return float(sum(p.load_energy for p in self.periods))

    @property
    def total_storage_energy(self) -> float:
        """Energy delivered to the load from capacitors, joules."""
        return float(sum(p.storage_energy for p in self.periods))

    @property
    def total_leakage_energy(self) -> float:
        return float(sum(p.leakage_energy for p in self.periods))

    @property
    def energy_utilization(self) -> float:
        """Fraction of harvestable solar energy consumed by tasks.

        The quantity plotted in Figure 9(b): higher means less solar
        energy wasted, but — the paper's point — not necessarily a
        better DMR, because migration through capacitors loses energy
        on purpose to serve the night.
        """
        total = self.total_solar_energy
        return self.total_load_energy / total if total > 0 else 0.0

    def energy_utilization_by_day(self) -> np.ndarray:
        solar = np.zeros(self.timeline.num_days)
        load = np.zeros(self.timeline.num_days)
        for p in self.periods:
            solar[p.day] += p.solar_energy
            load[p.day] += p.load_energy
        return np.divide(
            load, solar, out=np.zeros_like(load), where=solar > 0
        )

    @property
    def migration_efficiency(self) -> float:
        """Delivered-from-storage / offered-to-storage energy ratio."""
        offered = float(sum(p.offered_surplus for p in self.periods))
        if offered <= 0:
            return 0.0
        return self.total_storage_energy / offered

    @property
    def total_brownout_slots(self) -> int:
        return int(sum(p.brownout_slots for p in self.periods))

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Headline numbers as a plain dict (report-friendly)."""
        return {
            "dmr": self.dmr,
            "energy_utilization": self.energy_utilization,
            "migration_efficiency": self.migration_efficiency,
            "total_solar_J": self.total_solar_energy,
            "total_load_J": self.total_load_energy,
            "storage_served_J": self.total_storage_energy,
            "leakage_J": self.total_leakage_energy,
            "brownout_slots": float(self.total_brownout_slots),
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.scheduler_name!r}, "
            f"DMR={self.dmr:.3f}, util={self.energy_utilization:.3f})"
        )
