"""Batched node-major engine core: one vectorized step per fleet shard.

The per-node :class:`~repro.sim.engine.SimulationEngine` advances one
node per Python slot iteration; fleets pay that Python overhead once
per node.  This module keeps the *same* simulation semantics but turns
the state into node-major numpy arrays shaped ``(n_nodes, ...)`` —
remaining work, deadline misses, bank voltages, NVP power states — so
one slot update advances every node of a shard simultaneously.

Bit-identity contract
---------------------
The batched engine is not "approximately" the per-node engine: every
floating-point operation is replayed elementwise in the same order, so
``result_fingerprint`` of a batched run equals the per-node run
byte-for-byte.  The layout decisions that make this work:

* **Task space vs position space.**  Runtime state (remaining, missed,
  started) lives in original task order; the static priority order the
  schedulers use — sorted by ``(deadline_slot, index)`` — is a
  precomputed per-node permutation, applied through a precomputed
  row-index/permutation fancy-index pair.
  Padded task slots (heterogeneous graph sizes) complete the
  permutation bijectively so scatters are exact.
* **Sequential masked sums.**  ``np.sum`` uses pairwise accumulation,
  which is *not* the left-to-right order of the scalar engine's
  ``sum(...)``; load power and leakage losses are therefore accumulated
  with an explicit loop over the (≤ :data:`MAX_BATCH_TASKS`) position
  columns, adding a masked ``0.0`` where a node did not choose the
  task — exact, because ``x + 0.0`` is ``x`` for every non-negative
  ``x``.
* **Python pow where the scalar engine uses it.**  numpy's pow ufunc
  is not bit-identical to libm's ``**`` on some platforms; the leakage
  voltage power keeps the per-element Python ``**`` exactly like
  :meth:`~repro.energy.bank.CapacitorBank.leak_all`.  The regulator
  curves go through the same ``np.power`` ufunc in both scalar and
  array form (see :class:`~repro.energy.regulator.RegulatorCurve`), so
  they vectorize directly.
* **Masked physics recurrences.**  Charge/discharge keep the 4-substep
  voltage recurrence of :class:`~repro.energy.capacitor.CapacitorState`
  with an ``alive`` mask standing in for the scalar ``break``; rows
  that stop updating never resurrect, matching break semantics.
* **Per-node Python only off the hot path.**  WCMA prediction and
  energy admission (inter-task rows) run per node once per *period*;
  the ``random`` policy keeps its per-node ``Generator`` draw loop so
  the consumed stream is identical.

Eligibility: :func:`batch_ineligibility` names why a case cannot take
the batched path (unsupported policy, too many tasks for the exact
subset-enumeration table, a fault injector).  :func:`simulate_cases`
dispatches — batched where possible, the per-node engine otherwise —
so callers get one uniform entry point.
"""

from __future__ import annotations

import dataclasses
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..schedulers.lsa import admit_by_energy
from ..solar.prediction import WCMAPredictor
from ..solar.trace import SolarTrace
from ..tasks.graph import TaskGraph
from .recorder import PeriodRecord, SimulationResult
from .state import COMPLETION_EPS

__all__ = [
    "BATCH_POLICIES",
    "MAX_BATCH_TASKS",
    "BatchCase",
    "batch_ineligibility",
    "simulate_batch",
    "simulate_cases",
]

#: Policies the batched core implements (same decision rules as the
#: per-node schedulers of the fleet pool, minus the trained ones).
BATCH_POLICIES: Tuple[str, ...] = (
    "asap",
    "inter-task",
    "intra-task",
    "random",
)

#: Largest task count the batched intra-task subset table enumerates —
#: the same bound as ``best_power_match(max_exact=12)``.
MAX_BATCH_TASKS = 12

#: Batched policy name -> scheduler ``name`` recorded on results.
_SCHEDULER_NAMES = {
    "asap": "asap-edf",
    "inter-task": "inter-task-lsa",
    "intra-task": "intra-task",
    "random": "random",
}


@dataclasses.dataclass(eq=False)
class BatchCase:
    """One node's configuration for a batched run.

    Defaults mirror what :func:`repro.fleet.runner.simulate_node`
    builds: a :class:`~repro.node.node.SensorNode` with default panel,
    PMU and NVPs — only the pieces that vary across a fleet (graph,
    weather, bank sizes, policy, seed) are parameters here.
    """

    graph: TaskGraph
    trace: SolarTrace
    capacitors: Tuple[SuperCapacitor, ...]
    policy: str
    scheduler_seed: int = 0
    #: Present only so dispatchers can carry fault-scenario cases; a
    #: non-None injector always routes to the per-node engine.
    fault_injector: object = None


def batch_ineligibility(
    policy: str,
    graph: Optional[TaskGraph],
    fault_injector: object = None,
) -> Optional[str]:
    """Why a case cannot take the batched path; ``None`` when it can."""
    if policy not in BATCH_POLICIES:
        return f"policy {policy!r} not batched"
    if fault_injector is not None:
        return "fault injection is per-node"
    if graph is not None and len(graph) > MAX_BATCH_TASKS:
        return f"{len(graph)} tasks exceeds MAX_BATCH_TASKS"
    return None


def _node_leak_row(
    node_index: int, devices: Sequence[SuperCapacitor]
) -> List[float]:
    """Per-capacitor ``leak_coeff * C`` products of one node's bank.

    Split out (rather than inlined into the constants setup) so the
    conformance suite can plant a deliberate corruption in a single
    node's leakage row and prove the batched-vs-per-node oracle
    pinpoints that node.
    """
    return [d.leak_coeff * d.capacitance for d in devices]


def simulate_batch(cases: Sequence[BatchCase]) -> List[SimulationResult]:
    """Simulate every case in one node-major batch; results in order.

    Every case must be batch-eligible (see :func:`batch_ineligibility`)
    and share one timeline; use :func:`simulate_cases` for transparent
    per-node fallback.
    """
    cases = list(cases)
    if not cases:
        return []
    for i, case in enumerate(cases):
        reason = batch_ineligibility(
            case.policy, case.graph, case.fault_injector
        )
        if reason is not None:
            raise ValueError(f"case {i} is not batch-eligible: {reason}")
    return _BatchEngine(cases).run()


def simulate_cases(cases: Sequence[BatchCase]) -> List[SimulationResult]:
    """Batch the eligible cases, per-node the rest; results in order."""
    cases = list(cases)
    eligible = [
        i for i, c in enumerate(cases)
        if batch_ineligibility(c.policy, c.graph, c.fault_injector) is None
    ]
    results: Dict[int, SimulationResult] = {}
    if eligible:
        for i, res in zip(
            eligible, simulate_batch([cases[i] for i in eligible])
        ):
            results[i] = res
    for i, case in enumerate(cases):
        if i not in results:
            results[i] = _simulate_per_node(case)
    return [results[i] for i in range(len(cases))]


def _simulate_per_node(case: BatchCase) -> SimulationResult:
    """Per-node reference path for ineligible cases (and the oracle)."""
    from ..node.node import SensorNode
    from ..schedulers import (
        DVFSLoadMatchingScheduler,
        GreedyEDFScheduler,
        InterTaskScheduler,
        IntraTaskScheduler,
        RandomScheduler,
    )
    from .engine import simulate

    makers = {
        "asap": lambda: GreedyEDFScheduler(),
        "inter-task": lambda: InterTaskScheduler(),
        "intra-task": lambda: IntraTaskScheduler(),
        "dvfs": lambda: DVFSLoadMatchingScheduler(),
        "random": lambda: RandomScheduler(case.scheduler_seed),
    }
    if case.policy not in makers:
        raise ValueError(f"unknown batch policy {case.policy!r}")
    node = SensorNode(
        list(case.capacitors), num_nvps=case.graph.num_nvps
    )
    return simulate(
        node,
        case.graph,
        case.trace,
        makers[case.policy](),
        strict=False,
        fault_injector=case.fault_injector,
    )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class _BatchEngine:
    """Node-major state and the vectorized slot update."""

    def __init__(self, cases: List[BatchCase]) -> None:
        self.cases = cases
        tl = cases[0].trace.timeline
        for i, case in enumerate(cases):
            if case.trace.timeline != tl:
                raise ValueError(
                    f"case {i} timeline differs from case 0; a batch "
                    "shares one timeline"
                )
        self.tl = tl
        self.n = len(cases)
        self._rows = np.arange(self.n)
        self._setup_tasks()
        self._setup_bank()
        self._setup_policies()
        # (n, total_periods, slots) solar powers, one gather per slot.
        self._solar = np.stack(
            [
                case.trace.power.reshape(
                    tl.total_periods, tl.slots_per_period
                )
                for case in cases
            ]
        )

    # ------------------------------------------------------------------
    def _setup_tasks(self) -> None:
        """Task-space constants and the priority-order permutation."""
        tl, n = self.tl, self.n
        graphs = [case.graph for case in self.cases]
        self.graphs = graphs
        self.t_ns = [len(g) for g in graphs]
        t_max = max(self.t_ns)
        self.t_max = t_max
        self.valid = np.zeros((n, t_max), dtype=bool)
        self.exec0 = np.zeros((n, t_max))
        powers = np.zeros((n, t_max))
        dls = np.full((n, t_max), -1, dtype=np.int64)
        nvp = np.zeros((n, t_max), dtype=np.int64)
        pred = np.zeros((n, t_max, t_max), dtype=bool)
        desc = np.zeros((n, t_max, t_max), dtype=bool)
        perm = np.zeros((n, t_max), dtype=np.int64)
        self.powers_list: List[List[float]] = []
        for row, g in enumerate(graphs):
            t_n = self.t_ns[row]
            self.valid[row, :t_n] = True
            self.exec0[row, :t_n] = [t.execution_time for t in g.tasks]
            task_powers = [t.power for t in g.tasks]
            self.powers_list.append(task_powers)
            powers[row, :t_n] = task_powers
            row_dls = [tl.deadline_slot(t.deadline) for t in g.tasks]
            dls[row, :t_n] = row_dls
            for i in range(t_n):
                nvp[row, i] = g.nvp_of(i)
                for p in g.predecessors(i):
                    pred[row, i, p] = True
                for d in g.descendants(i):
                    desc[row, i, d] = True
            order = sorted(range(t_n), key=lambda i: (row_dls[i], i))
            perm[row, :t_n] = order
            perm[row, t_n:] = np.arange(t_n, t_max)
        self.powers = powers
        self.dls = dls
        self.nvp = nvp
        self.pred = pred
        self.desc = desc
        self.perm = perm
        # Static priority-position views of the per-task constants.
        self.powers_pos = np.take_along_axis(powers, perm, axis=1)
        self.dls_pos = np.take_along_axis(dls, perm, axis=1)
        self.nvp_pos = np.take_along_axis(nvp, perm, axis=1)
        self._pos_range = np.arange(t_max)
        # Fancy-index pair equivalent to take/put_along_axis(perm) but
        # without rebuilding the index tuple every slot.
        self._gather_rows = self._rows[:, None]
        self.k_max = max(g.num_nvps for g in graphs)
        # cycle_cost accumulates 3e-6 per transitioned NVP by repeated
        # addition in the scalar engine; precompute that prefix sum the
        # same way so k transitions index the identical float.
        costs = [0.0]
        for _ in range(self.k_max):
            costs.append(costs[-1] + 3.0e-6)
        self._cycle_table = np.array(costs)

    def _setup_bank(self) -> None:
        """Bank constants, padded column-wise; active column is static.

        Baseline policies pin the largest capacitor at the first period
        and never switch (``StaticLargestCapacitorMixin``); the random
        policy never selects at all.  Either way the active index is a
        per-node constant, so charge/discharge touch one static column.
        """
        n = self.n
        banks = [list(case.capacitors) for case in self.cases]
        self.c_ns = [len(b) for b in banks]
        c_max = max(self.c_ns)
        self.c_max = c_max
        self.cap_valid = np.zeros((n, c_max), dtype=bool)
        # Padded columns get capacitance 1 / zero volts / zero leak:
        # their leak update is exactly 0 -> 0 and costs nothing.
        self.capacitance = np.ones((n, c_max))
        self.v0 = np.zeros((n, c_max))
        self.leak_coeff_cap = np.zeros((n, c_max))
        self.parasitic = np.zeros((n, c_max))
        self.full_energy = np.ones((n, c_max))
        self.exps_flat: List[float] = []
        active = np.zeros(n, dtype=np.int64)
        for row, devices in enumerate(banks):
            c_n = self.c_ns[row]
            self.cap_valid[row, :c_n] = True
            self.capacitance[row, :c_n] = [d.capacitance for d in devices]
            self.v0[row, :c_n] = [d.v_cutoff for d in devices]
            self.leak_coeff_cap[row, :c_n] = _node_leak_row(row, devices)
            self.parasitic[row, :c_n] = [
                d.parasitic_power for d in devices
            ]
            self.full_energy[row, :c_n] = [
                0.5 * d.capacitance * d.v_full * d.v_full for d in devices
            ]
            self.exps_flat.extend(d.leak_exponent for d in devices)
            self.exps_flat.extend(1.0 for _ in range(c_max - c_n))
            if self.cases[row].policy != "random":
                caps = np.array([d.capacitance for d in devices])
                active[row] = int(caps.argmax())
        self.active_col = active
        rows = self._rows
        devs = [banks[i][active[i]] for i in range(n)]
        self.c_a = self.capacitance[rows, active]
        self.e_full_a = self.full_energy[rows, active]
        self.e_cutoff_a = np.array(
            [0.5 * d.capacitance * d.v_cutoff * d.v_cutoff for d in devs]
        )
        self.v_stop_chg = np.array([d.v_full - 1e-12 for d in devs])
        self.v_stop_dis = np.array([d.v_cutoff + 1e-12 for d in devs])
        self.cyc_a = np.array([d.cycle_efficiency for d in devs])
        self.in_eta_a = np.array(
            [d.input_regulator.eta_max for d in devs]
        )
        self.in_exp_a = np.array(
            [d.input_regulator.exponent for d in devs]
        )
        self.in_vh_a = np.array(
            [d.input_regulator._vhalf_pow for d in devs]
        )
        self.out_eta_a = np.array(
            [d.output_regulator.eta_max for d in devs]
        )
        self.out_exp_a = np.array(
            [d.output_regulator.exponent for d in devs]
        )
        self.out_vh_a = np.array(
            [d.output_regulator._vhalf_pow for d in devs]
        )

    def _setup_policies(self) -> None:
        """Policy row groups plus the intra-task subset table."""
        policies = [case.policy for case in self.cases]
        self.is_asap = np.array([p == "asap" for p in policies])
        self.is_lsa = np.array([p == "inter-task" for p in policies])
        self.is_intra = np.array([p == "intra-task" for p in policies])
        self.idx_lsa = np.flatnonzero(self.is_lsa)
        self.idx_intra = np.flatnonzero(self.is_intra)
        self.idx_random = np.flatnonzero(
            np.array([p == "random" for p in policies])
        )
        # One persistent generator per random node: the stream carries
        # across slots and periods exactly like RandomScheduler's.
        # (row, bound rng.random, nvp list, power list) tuples keep the
        # per-slot Python loop free of attribute lookups.
        self.random_rows = [
            (
                int(i),
                np.random.default_rng(
                    self.cases[i].scheduler_seed
                ).random,
                self.nvp[i].tolist(),
                self.powers_list[i],
            )
            for i in self.idx_random
        ]
        # Intra-task rows enumerate nonempty position subsets the way
        # best_power_match does: sizes ascending, lexicographic within
        # a size.  Restricting the table to the current optional set
        # (bitmask inclusion) visits the same combinations in the same
        # order, because relabeling optional positions is monotone.
        if self.idx_intra.size:
            t_intra = max(self.t_ns[i] for i in self.idx_intra)
            combos = [
                combo
                for r in range(1, t_intra + 1)
                for combo in combinations(range(t_intra), r)
            ]
            self.combo_bits = np.array(
                [sum(1 << p for p in combo) for combo in combos],
                dtype=np.int64,
            )
            # Power sums are static per node: accumulate each combo in
            # ascending position order like the scalar sum(...) does.
            pos = self.powers_pos[self.idx_intra]
            sums = np.zeros((self.idx_intra.size, len(combos)))
            for j, combo in enumerate(combos):
                acc = pos[:, combo[0]].copy()
                for p in combo[1:]:
                    acc = acc + pos[:, p]
                sums[:, j] = acc
            self.combo_sums = sums
            self.intra_rows = np.arange(self.idx_intra.size)
        self.predictors = {
            int(i): WCMAPredictor(self.tl) for i in self.idx_lsa
        }

    # ------------------------------------------------------------------
    # Masked bank physics (active column only)
    # ------------------------------------------------------------------
    def _charge(
        self, v: np.ndarray, mask: np.ndarray, energy_in: np.ndarray
    ) -> np.ndarray:
        """Masked CapacitorState.charge on the active column of ``v``.

        Returns the stored energy per node (0 outside ``mask``).
        """
        rows, a = self._rows, self.active_col
        c = self.c_a
        v_col = v[rows, a]
        energy = 0.5 * c * v_col * v_col
        stored_total = np.zeros(self.n)
        chunk = energy_in / 4
        for _ in range(4):
            alive = mask & (v_col < self.v_stop_chg)
            if not alive.any():
                break
            vp = v_col ** self.in_exp_a
            eta = (self.in_eta_a * vp / (vp + self.in_vh_a)) * self.cyc_a
            headroom = np.maximum(self.e_full_a - energy, 0.0)
            stored = np.minimum(chunk * eta, headroom)
            new_energy = np.minimum(
                np.maximum(energy + stored, 0.0), self.e_full_a
            )
            v_new = np.sqrt(2.0 * new_energy / c)
            e_new = 0.5 * c * v_new * v_new
            v_col = np.where(alive, v_new, v_col)
            energy = np.where(alive, e_new, energy)
            stored_total = np.where(
                alive, stored_total + stored, stored_total
            )
        v[rows, a] = v_col
        return stored_total

    def _discharge(
        self, v: np.ndarray, mask: np.ndarray, energy_needed: np.ndarray
    ) -> np.ndarray:
        """Masked CapacitorState.discharge on the active column.

        Returns the delivered energy per node (0 outside ``mask``).
        A row that hits the cut-off stops updating for the remaining
        substeps — the masked equivalent of the scalar ``break``.
        """
        rows, a = self._rows, self.active_col
        c = self.c_a
        v_col = v[rows, a]
        energy = 0.5 * c * v_col * v_col
        delivered_total = np.zeros(self.n)
        chunk = energy_needed / 4
        for _ in range(4):
            alive = mask & (v_col > self.v_stop_dis)
            if not alive.any():
                break
            vp = v_col ** self.out_exp_a
            eta = (self.out_eta_a * vp / (vp + self.out_vh_a)) * self.cyc_a
            alive = alive & (eta > 0.0)
            usable = np.maximum(energy - self.e_cutoff_a, 0.0)
            drawn = np.minimum(
                chunk / np.where(eta > 0.0, eta, 1.0), usable
            )
            delivered = drawn * eta
            new_energy = np.minimum(
                np.maximum(energy - drawn, 0.0), self.e_full_a
            )
            v_new = np.sqrt(2.0 * new_energy / c)
            e_new = 0.5 * c * v_new * v_new
            v_col = np.where(alive, v_new, v_col)
            energy = np.where(alive, e_new, energy)
            delivered_total = np.where(
                alive, delivered_total + delivered, delivered_total
            )
        v[rows, a] = v_col
        return delivered_total

    def _leak(self, v: np.ndarray, dt: float) -> np.ndarray:
        """CapacitorBank.leak_all over every row; returns lost energy.

        The voltage power term stays per-element Python ``**`` (same
        reason as leak_all); everything else is the identical
        elementwise expression.  Padded columns hold 0 V / zero leak
        constants, so their contribution is exactly ``+0.0`` and the
        per-column accumulation matches the scalar per-capacitor sum.
        """
        rows, a = self._rows, self.active_col
        volts = v.ravel().tolist()
        powv = np.array(
            [vv ** e for vv, e in zip(volts, self.exps_flat)]
        ).reshape(v.shape)
        leak_power = self.leak_coeff_cap * powv + self.parasitic
        before = 0.5 * self.capacitance * v * v
        idle_power = np.maximum(leak_power - self.parasitic, 0.0)
        new_energy = np.maximum(before - idle_power * dt, 0.0)
        e_a = before[rows, a] - leak_power[rows, a] * dt
        e_a = np.minimum(np.maximum(e_a, 0.0), self.e_full_a)
        new_energy[rows, a] = e_a
        new_volts = np.sqrt(2.0 * new_energy / self.capacitance)
        after = 0.5 * self.capacitance * new_volts * new_volts
        diffs = before - after
        v[:] = new_volts
        lost = np.zeros(self.n)
        for col in range(self.c_max):
            lost = lost + diffs[:, col]
        return lost

    # ------------------------------------------------------------------
    def run(self) -> List[SimulationResult]:
        tl = self.tl
        n, t_max, k_max = self.n, self.t_max, self.k_max
        rows = self._rows
        dt = tl.slot_seconds
        slots = tl.slots_per_period
        perm = self.perm
        powers_pos = self.powers_pos
        nvp_pos = self.nvp_pos
        has_lsa = self.idx_lsa.size > 0
        has_intra = self.idx_intra.size > 0
        has_random = self.idx_random.size > 0

        v = self.v0.copy()
        powered = np.ones((n, k_max), dtype=bool)
        # Admission filter: everything admitted except what the LSA
        # rows restrict per period (cold-start admits the full set).
        admitted = np.ones((n, t_max), dtype=bool)
        records: List[List[PeriodRecord]] = [[] for _ in range(n)]

        for flat_p in range(tl.total_periods):
            day, period = tl.unflatten_period(flat_p)
            if has_lsa and flat_p > 0:
                self._admit_lsa(day, period, v, admitted)
            v_snapshot = v.copy()
            remaining = self.exec0.copy()
            missed = np.zeros((n, t_max), dtype=bool)
            started = np.zeros((n, t_max), dtype=bool)
            solar_e = np.zeros(n)
            load_e = np.zeros(n)
            direct_e = np.zeros(n)
            storage_e = np.zeros(n)
            charged_e = np.zeros(n)
            offered_e = np.zeros(n)
            leak_e = np.zeros(n)
            brownouts = np.zeros(n, dtype=np.int64)
            solar_period = self._solar[:, flat_p, :]

            for slot in range(slots):
                # Deadline check at slot start, with the dependence
                # cascade (descendants of an incomplete missed task).
                done = remaining <= COMPLETION_EPS
                newly = (self.dls == slot) & ~missed & ~done
                if newly.any():
                    cascade = (
                        (newly[:, :, None] & self.desc).any(axis=1)
                        & ~missed & ~done
                    )
                    missed |= newly | cascade
                blocked = (self.pred & ~done[:, None, :]).any(axis=2)
                ready = (
                    self.valid & ~done & ~missed
                    & (slot < self.dls) & ~blocked
                )
                solar_vec = solar_period[:, slot]

                # Priority-position gathers + slack (must-run) test.
                gr = self._gather_rows
                ready_pos = ready[gr, perm]
                rem_pos = remaining[gr, perm]
                work_slots = -np.floor_divide(-rem_pos, dt)
                must = (self.dls_pos - slot) - work_slots <= 0.0

                # First-claim-wins NVP filter in priority order, fused
                # with the sequential load sums every policy reuses:
                # ``total_load`` adds the whole claimed queue position
                # by position — exactly the scalar ``sum(...)`` order —
                # and ``mand_load`` its must-run subsequence.
                cand = (
                    ready_pos & admitted[gr, perm]
                    if has_lsa
                    else ready_pos
                )
                claimed = np.zeros((n, k_max), dtype=bool)
                per_nvp = np.zeros((n, t_max), dtype=bool)
                total_load = np.zeros(n)
                mand_load = np.zeros(n)
                for p in range(t_max):
                    k = nvp_pos[:, p]
                    cur = claimed[rows, k]
                    sel = cand[:, p] & ~cur
                    claimed[rows, k] = cur | sel
                    per_nvp[:, p] = sel
                    col_power = np.where(sel, powers_pos[:, p], 0.0)
                    total_load = total_load + col_power
                    mand_load = mand_load + np.where(
                        must[:, p], col_power, 0.0
                    )

                # Policy decisions (position space).  The sequential
                # sums above equal the scalar engine's load for every
                # single-segment decision (asap queue, LSA queue or
                # mandatory subset); intra-task rows extend mand_load
                # with their picked positions, in order, below.
                chosen_pos = per_nvp & self.is_asap[:, None]
                load = np.where(self.is_asap, total_load, 0.0)
                if has_lsa:
                    mand = per_nvp & must
                    run_all = total_load <= solar_vec + 1e-12
                    lsa_choice = np.where(
                        run_all[:, None], per_nvp, mand
                    )
                    chosen_pos |= lsa_choice & self.is_lsa[:, None]
                    load = np.where(
                        self.is_lsa,
                        np.where(run_all, total_load, mand_load),
                        load,
                    )
                if has_intra:
                    budget = np.maximum(solar_vec - mand_load, 0.0)
                    optional = per_nvp & ~must
                    opt_bits = np.zeros(n, dtype=np.int64)
                    for p in range(t_max):
                        opt_bits = opt_bits | np.where(
                            optional[:, p], np.int64(1 << p), np.int64(0)
                        )
                    ob = opt_bits[self.idx_intra]
                    affordable = self.combo_sums <= (
                        (budget[self.idx_intra] + 1e-12)[:, None]
                    )
                    available = (
                        self.combo_bits[None, :] & ~ob[:, None]
                    ) == 0
                    vals = np.where(
                        available & affordable, self.combo_sums, -1.0
                    )
                    best = vals.argmax(axis=1)
                    best_val = vals[self.intra_rows, best]
                    picked_bits = np.where(
                        best_val > 0.0, self.combo_bits[best], 0
                    )
                    picked = np.zeros((n, t_max), dtype=bool)
                    picked[self.idx_intra] = (
                        (picked_bits[:, None] >> self._pos_range) & 1
                    ).astype(bool)
                    intra_load = mand_load
                    for p in range(t_max):
                        intra_load = intra_load + np.where(
                            picked[:, p], powers_pos[:, p], 0.0
                        )
                    chosen_pos |= (
                        ((per_nvp & must) | picked)
                        & self.is_intra[:, None]
                    )
                    load = np.where(self.is_intra, intra_load, load)
                chosen = np.zeros((n, t_max), dtype=bool)
                chosen[gr, perm] = chosen_pos

                if has_random:
                    self._decide_random(ready, chosen, load)

                # PMU routing: the three supply_slot branches as masks.
                usable_solar = solar_vec * 0.98
                b1 = load <= 0.0
                b2 = ~b1 & (usable_solar >= load)
                b3 = ~(b1 | b2)
                needed = (load - usable_solar) * dt
                delivered = self._discharge(v, b3, needed)
                fraction = np.minimum(
                    delivered / np.where(b3, needed, 1.0), 1.0
                )
                run_fraction = np.where(b3, fraction, 1.0)
                offered_idle = usable_solar * ((1.0 - fraction) * dt)
                energy_in = np.where(
                    b1,
                    usable_solar * dt,
                    np.where(
                        b2, (usable_solar - load) * dt, offered_idle
                    ),
                )
                # Branches 1/2 always charge (even zero input: the
                # below-v_stop sqrt round-trip must still happen);
                # branch 3 charges only when idle surplus is positive.
                do_charge = b1 | b2 | (b3 & (offered_idle > 0.0))
                charged = self._charge(v, do_charge, energy_in)
                direct = np.where(
                    b1,
                    0.0,
                    np.where(
                        b2, load * dt, usable_solar * fraction * dt
                    ),
                )
                storage = np.where(b3, delivered, 0.0)

                # Task progress (chosen tasks are never missed).
                progressed = run_fraction * dt
                remaining = np.where(
                    chosen,
                    np.maximum(remaining - progressed[:, None], 0.0),
                    remaining,
                )
                started |= chosen

                # NVP nonvolatility bookkeeping.
                chosen_any = chosen.any(axis=1)
                brown = (run_fraction < 1.0 - 1e-9) & chosen_any
                active_nvp = np.zeros((n, k_max), dtype=bool)
                for t in range(t_max):
                    col = chosen[:, t]
                    active_nvp[col, self.nvp[col, t]] = True
                n_changed = np.where(
                    brown,
                    (active_nvp & powered).sum(axis=1),
                    (active_nvp & ~powered).sum(axis=1),
                )
                powered = np.where(
                    brown[:, None],
                    powered & ~active_nvp,
                    powered | active_nvp,
                )
                cycle_cost = self._cycle_table[n_changed]
                cmask = cycle_cost > 0.0
                if cmask.any():
                    self._discharge(v, cmask, cycle_cost)
                brownouts += brown

                lost = self._leak(v, dt)

                solar_e = solar_e + solar_vec * dt
                load_e = load_e + (direct + storage)
                direct_e = direct_e + direct
                storage_e = storage_e + storage
                charged_e = charged_e + charged
                offered_e = offered_e + energy_in
                leak_e = leak_e + lost

            # End of period: boundary deadline check + final sweep both
            # collapse to "every incomplete valid task is missed".
            missed |= self.valid & ~(remaining <= COMPLETION_EPS)
            miss_count = missed.sum(axis=1)
            for row in range(n):
                t_n = self.t_ns[row]
                records[row].append(
                    PeriodRecord(
                        day=day,
                        period=period,
                        dmr=int(miss_count[row]) / t_n,
                        miss_count=int(miss_count[row]),
                        executed=started[row, :t_n].copy(),
                        solar_energy=float(solar_e[row]),
                        load_energy=float(load_e[row]),
                        direct_energy=float(direct_e[row]),
                        storage_energy=float(storage_e[row]),
                        charged_energy=float(charged_e[row]),
                        offered_surplus=float(offered_e[row]),
                        leakage_energy=float(leak_e[row]),
                        brownout_slots=int(brownouts[row]),
                        start_voltages=v_snapshot[
                            row, : self.c_ns[row]
                        ].copy(),
                        active_index=int(self.active_col[row]),
                    )
                )
            for i in self.idx_lsa:
                self.predictors[int(i)].observe(
                    day, period, float(solar_e[i])
                )

        return [
            SimulationResult(
                tl,
                _SCHEDULER_NAMES[self.cases[row].policy],
                records[row],
            )
            for row in range(n)
        ]

    # ------------------------------------------------------------------
    def _admit_lsa(
        self, day: int, period: int, v: np.ndarray, admitted: np.ndarray
    ) -> None:
        """Per-period WCMA admission for the inter-task rows.

        Cheap per-node Python (once per period, not per slot) so the
        real predictor and admission code run unchanged — their float
        sequences are part of the bit-identity contract.
        """
        rows, a = self._rows, self.active_col
        v_a = v[rows, a]
        stored_a = 0.5 * self.c_a * v_a * v_a
        usable_a = np.maximum(stored_a - self.e_cutoff_a, 0.0)
        for i in self.idx_lsa:
            i = int(i)
            predicted = self.predictors[i].predict(day, period)
            budget = predicted + 0.7 * float(usable_a[i])
            adm = admit_by_energy(self.graphs[i], budget, margin=1.0)
            # A new period replaces the previous admission set; padded
            # positions stay admitted (they are never ready anyway).
            row_adm = np.zeros(self.t_max, dtype=bool)
            for t in adm:
                row_adm[t] = True
            row_adm[self.t_ns[i]:] = True
            admitted[i] = row_adm

    def _decide_random(
        self, ready: np.ndarray, chosen: np.ndarray, load: np.ndarray
    ) -> None:
        """Per-node random draws, preserving each node's RNG stream.

        RandomScheduler draws once per ready task (ascending task
        order, *before* the NVP-availability check), so the consumed
        stream depends only on the ready set — replayed verbatim here.
        """
        ready_rows = ready[self.idx_random].tolist()
        for (i, draw, nvps, powers), ready_row in zip(
            self.random_rows, ready_rows
        ):
            chosen_tasks: List[int] = []
            used = 0
            for t, is_ready in enumerate(ready_row):
                if is_ready and draw() < 0.5:
                    k = nvps[t]
                    if not used >> k & 1:
                        used |= 1 << k
                        chosen_tasks.append(t)
            if chosen_tasks:
                chosen[i, chosen_tasks] = True
                load[i] = float(sum(powers[t] for t in chosen_tasks))
