"""Discrete-time simulator: runtime state, engine, records, metrics."""

from .state import COMPLETION_EPS, PeriodRuntime
from .views import BankView, PeriodEndView, PeriodStartView, SlotView
from .recorder import PeriodRecord, SimulationResult, SlotArrays
from .engine import InvalidDecisionError, SimulationEngine, simulate

__all__ = [
    "PeriodRuntime",
    "COMPLETION_EPS",
    "BankView",
    "PeriodStartView",
    "SlotView",
    "PeriodEndView",
    "PeriodRecord",
    "SlotArrays",
    "SimulationResult",
    "SimulationEngine",
    "simulate",
    "InvalidDecisionError",
]
