"""Discrete-time simulator: runtime state, engine, records, metrics."""

from .state import COMPLETION_EPS, PeriodRuntime
from .views import (
    BankView,
    PeriodEndView,
    PeriodFaultFlags,
    PeriodStartView,
    SlotView,
)
from .recorder import PeriodRecord, SimulationResult, SlotArrays
from .checkpoint import (
    CheckpointConfig,
    CheckpointError,
    SimulationInterrupted,
    latest_checkpoint,
    result_fingerprint,
    run_fingerprint,
)
from .engine import InvalidDecisionError, SimulationEngine, simulate

__all__ = [
    "PeriodRuntime",
    "COMPLETION_EPS",
    "BankView",
    "PeriodStartView",
    "SlotView",
    "PeriodEndView",
    "PeriodFaultFlags",
    "PeriodRecord",
    "SlotArrays",
    "SimulationResult",
    "SimulationEngine",
    "simulate",
    "InvalidDecisionError",
    "CheckpointConfig",
    "CheckpointError",
    "SimulationInterrupted",
    "latest_checkpoint",
    "result_fingerprint",
    "run_fingerprint",
]
