"""Slot-by-slot simulation engine.

Drives a :class:`~repro.schedulers.base.Scheduler` over a solar trace
on a :class:`~repro.node.node.SensorNode`:

1. at each period start, a fresh :class:`PeriodRuntime` is created and
   the scheduler's coarse hook runs (it may request a capacitor switch
   through the PMU's Eq. (22) rule);
2. at each slot start, deadlines falling at this boundary are checked
   (Eq. 5), the scheduler picks tasks from the ready set, the engine
   validates the pick (readiness Eq. 7, one task per NVP Eq. 9), the
   PMU routes energy (direct channel first, storage for the deficit),
   task progress advances by the powered fraction of the slot, and all
   capacitors leak;
3. at period end, unfinished tasks are marked missed, the period DMR
   is recorded and the scheduler's feedback hook runs.

Energy semantics of a brownout: when storage cannot cover the deficit,
the load runs for the covered fraction of the slot and the NVPs retain
progress (nonvolatility); the panel keeps charging the capacitor for
the rest of the slot.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from time import perf_counter
from typing import List, Optional, Sequence, Union

import numpy as np

from ..node.node import SensorNode
from ..obs.events import NULL_OBSERVER, Observer
from ..schedulers.base import Scheduler
from ..solar.trace import SolarTrace
from ..tasks.graph import TaskGraph
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointConfig,
    CheckpointError,
    SimulationInterrupted,
    checkpoint_path,
    load_checkpoint,
    prune_checkpoints,
    run_fingerprint,
    save_checkpoint,
)
from .recorder import PeriodRecord, SimulationResult, SlotArrays
from .state import PeriodRuntime
from .views import BankView, PeriodEndView, PeriodStartView, SlotView

__all__ = ["SimulationEngine", "simulate", "InvalidDecisionError"]


class InvalidDecisionError(RuntimeError):
    """A scheduler returned an illegal slot decision."""


class SimulationEngine:
    """Binds node, workload, trace and policy into one run.

    Parameters
    ----------
    node:
        The sensor node (panel, capacitor bank, PMU, NVPs).
    graph:
        The periodic task set.
    trace:
        Per-slot solar power at the panel output.
    scheduler:
        The policy under test.
    strict:
        When True (default) an illegal decision raises
        :class:`InvalidDecisionError`; when False illegal entries are
        silently dropped (useful for learned policies).
    record_slots:
        When True, dense per-slot arrays are kept in the result.
    observer:
        Observability hub (event sinks, metrics, phase profiler).
        Defaults to the disabled :data:`~repro.obs.events.NULL_OBSERVER`,
        which adds no measurable cost and changes no behaviour.
    fault_injector:
        Optional runtime fault injector (a
        :class:`~repro.reliability.runtime.FaultInjector`): supply
        dropouts, capacitor leakage/ESR spikes, stuck regulator and
        online-stage faults fire mid-run per its seeded plan.
    checkpoint:
        Optional :class:`~repro.sim.checkpoint.CheckpointConfig`;
        when given, the run's mutable state is serialized at period
        boundaries so a crashed run can resume bit-identically.
    monitors:
        Online invariant monitors (see
        :class:`~repro.verify.invariants.InvariantMonitor`): objects
        with ``on_period(record)`` and ``on_finish(result)`` returning
        violations, which are re-emitted as ``invariant_violation``
        events when an observer is attached.  Monitors only read the
        period records, so they never perturb the simulation.
    """

    def __init__(
        self,
        node: SensorNode,
        graph: TaskGraph,
        trace: SolarTrace,
        scheduler: Scheduler,
        strict: bool = True,
        record_slots: bool = False,
        observer: Optional[Observer] = None,
        fault_injector=None,
        checkpoint: Optional[CheckpointConfig] = None,
        monitors: Sequence = (),
    ) -> None:
        if graph.num_nvps > node.num_nvps:
            raise ValueError(
                f"task set needs {graph.num_nvps} NVPs but the node has "
                f"{node.num_nvps}"
            )
        self.node = node
        self.graph = graph
        self.trace = trace
        self.timeline = trace.timeline
        self.scheduler = scheduler
        self.strict = strict
        self.record_slots = record_slots
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.fault_injector = fault_injector
        self.checkpoint = checkpoint
        self.monitors = tuple(monitors)

    # ------------------------------------------------------------------
    def _bank_view(self) -> BankView:
        bank = self.node.bank
        capacitances, voltages, usable = bank.view_arrays()
        return BankView(
            capacitances=capacitances,
            voltages=voltages,
            usable_energies=usable,
            active_index=bank.active_index,
        )

    def _validate(
        self, decision: Sequence, ready: Sequence[int]
    ) -> List[tuple]:
        """Normalise a decision to ``[(task, level), ...]``.

        Entries may be plain task indices (level 1.0) or
        ``(task, level)`` pairs when the node supports DVFS.
        """
        ready_set = set(ready)
        seen_nvps = set()
        valid: List[tuple] = []
        dvfs = self.node.dvfs
        for entry in decision:
            if isinstance(entry, tuple):
                task, level = entry
                task = int(task)
                level = float(level)
            else:
                task, level = int(entry), 1.0
            if level != 1.0 and (
                dvfs is None or not dvfs.is_valid_level(level)
            ):
                if self.strict:
                    raise InvalidDecisionError(
                        f"frequency level {level} is not supported by the "
                        "node"
                    )
                level = 1.0
            if task not in ready_set:
                if self.strict:
                    raise InvalidDecisionError(
                        f"task {task} is not ready (ready set: {sorted(ready_set)})"
                    )
                continue
            nvp = self.graph.nvp_of(task)
            if nvp in seen_nvps:
                if self.strict:
                    raise InvalidDecisionError(
                        f"two tasks scheduled on NVP {nvp} in one slot"
                    )
                continue
            seen_nvps.add(nvp)
            valid.append((task, level))
        return valid

    # ------------------------------------------------------------------
    def run(
        self,
        resume_from: Optional[Union[str, Path]] = None,
        stop_after_periods: Optional[int] = None,
    ) -> SimulationResult:
        """Run the simulation, optionally resuming from a checkpoint.

        Parameters
        ----------
        resume_from:
            Path to a checkpoint written by a previous run of the same
            configuration (verified by fingerprint).  The node must be
            freshly constructed; its mutable state is overwritten.
        stop_after_periods:
            Deterministic crash stand-in: after this many total
            periods are complete, write a checkpoint and raise
            :class:`~repro.sim.checkpoint.SimulationInterrupted`.
            Requires ``checkpoint`` to be configured.
        """
        tl = self.timeline
        dt = tl.slot_seconds
        obs = self.observer
        active = obs.enabled
        inj = self.fault_injector
        if stop_after_periods is not None:
            if stop_after_periods < 1:
                raise ValueError(
                    f"stop_after_periods must be >= 1, got "
                    f"{stop_after_periods}"
                )
            if self.checkpoint is None:
                raise ValueError(
                    "stop_after_periods requires a checkpoint config "
                    "(there would be nothing to resume from)"
                )
        fingerprint = run_fingerprint(
            tl, self.graph, self.trace, self.scheduler.name
        )

        period_records: List[PeriodRecord] = []
        slot_arrays: Optional[SlotArrays] = None
        if self.record_slots:
            n = tl.total_slots
            slot_arrays = SlotArrays(
                solar_power=np.zeros(n),
                load_power=np.zeros(n),
                run_fraction=np.zeros(n),
                active_voltage=np.zeros(n),
                active_index=np.zeros(n, dtype=int),
            )

        dmr_sum = 0.0
        periods_done = 0
        last_period_energy: Optional[float] = None
        last_period_powers: Optional[np.ndarray] = None
        start_flat = 0
        resumed = False

        if resume_from is not None:
            payload = load_checkpoint(resume_from)
            self._verify_payload(payload, fingerprint)
            self._restore_node(payload)
            self.scheduler = pickle.loads(payload["scheduler"])
            period_records = list(payload["period_records"])
            slot_arrays = payload["slot_arrays"]
            dmr_sum = payload["dmr_sum"]
            periods_done = payload["periods_done"]
            last_period_energy = payload["last_period_energy"]
            last_period_powers = payload["last_period_powers"]
            start_flat = payload["next_flat_period"]
            resumed = True

        # Attach the observer to the other emitters for this run.
        self.scheduler.observer = obs
        self.node.pmu.observer = obs
        if inj is not None:
            inj.observer = obs
            inj.attach(self.node)
        if not resumed:
            # A resumed scheduler keeps its bound state (bind() would
            # reset what it learned before the checkpoint).
            self.scheduler.bind(tl, self.graph)

        # Hot-loop hoists: everything here is invariant across slots
        # (the fault injector swaps capacitor *devices* in place, never
        # the bank/NVP/DVFS objects themselves).
        graph = self.graph
        bank = self.node.bank
        nvps = self.node.nvps
        pmu_supply = self.node.pmu.supply_slot
        dvfs = self.node.dvfs
        trace_power = self.trace.power
        task_powers = [t.power for t in graph.tasks]
        nvp_of = [graph.nvp_of(i) for i in range(len(graph))]
        slots_per_period = tl.slots_per_period

        for flat_p in range(start_flat, tl.total_periods):
            day, period = tl.unflatten_period(flat_p)
            period_start_slot = flat_p * tl.slots_per_period
            runtime = PeriodRuntime(self.graph, tl)
            accumulated = dmr_sum / periods_done if periods_done else 0.0
            if active:
                obs.set_time(day, period)
            fault_flags = None
            powers_for_view = last_period_powers
            if inj is not None:
                inj.sync(self.node, period_start_slot)
                fault_flags = inj.period_flags(flat_p)
                if (
                    fault_flags is not None
                    and fault_flags.corrupted_features
                    and last_period_powers is not None
                ):
                    powers_for_view = inj.corrupt_powers(
                        flat_p, last_period_powers
                    )
            start_view = PeriodStartView(
                timeline=tl,
                graph=self.graph,
                day=day,
                period=period,
                bank=self._bank_view(),
                accumulated_dmr=accumulated,
                last_period_energy=last_period_energy,
                last_period_powers=powers_for_view,
                request_capacitor=self.node.pmu.request_capacitor,
                force_capacitor=self.node.pmu.force_capacitor,
                faults=fault_flags,
            )
            with obs.span("coarse_hook") as coarse_span:
                self.scheduler.on_period_start(start_view)
            if active:
                obs.metrics.histogram("coarse_pass_seconds").observe(
                    coarse_span.elapsed
                )

            start_voltages = self.node.bank.voltages()
            active_at_start = self.node.bank.active_index
            solar_energy = load_energy = direct_energy = 0.0
            storage_energy = charged_energy = offered_surplus = 0.0
            leakage_energy = 0.0
            brownouts = 0
            # The whole period's solar input in one array read; with no
            # fault injector the per-slot store becomes a single copy.
            solar_row = trace_power[day, period]
            if inj is None:
                period_powers = solar_row.copy()
            else:
                period_powers = np.zeros(slots_per_period)

            slot_loop_span = obs.span("slot_loop")
            slot_loop_span.__enter__()
            for slot in range(slots_per_period):
                if active:
                    obs.set_time(day, period, slot)
                newly_missed = runtime.check_deadlines(slot)
                if active and newly_missed:
                    obs.deadline_miss(newly_missed)
                solar_power = float(solar_row[slot])
                if inj is not None:
                    flat_slot = period_start_slot + slot
                    inj.sync(self.node, flat_slot)
                    solar_power = inj.transform_solar(flat_slot, solar_power)
                    period_powers[slot] = solar_power
                ready = runtime.ready_tasks(slot)
                decision = self.scheduler.on_slot(
                    SlotView(
                        timeline=tl,
                        graph=self.graph,
                        day=day,
                        period=period,
                        slot=slot,
                        solar_power=solar_power,
                        slot_seconds=dt,
                        remaining=runtime.remaining.copy(),
                        completed=runtime.completed,
                        missed=runtime.missed.copy(),
                        deadline_slots=runtime.deadline_slots.copy(),
                        ready=ready,
                        bank=self._bank_view(),
                    )
                )
                chosen = self._validate(decision, ready)
                # x * 1.0 is bitwise x, so the DVFS-less fast paths
                # reproduce the scaled expressions exactly.
                if dvfs is None:
                    load_power = float(
                        sum(task_powers[i] for i, _ in chosen)
                    )
                else:
                    load_power = float(
                        sum(
                            task_powers[i] * dvfs.power_factor(level)
                            for i, level in chosen
                        )
                    )
                flow = pmu_supply(solar_power, load_power, dt)
                if dvfs is None:
                    powered_seconds = flow.run_fraction * dt
                    runtime.advance_scaled(
                        [(i, powered_seconds) for i, _ in chosen]
                    )
                else:
                    runtime.advance_scaled(
                        [
                            (i, flow.run_fraction * dt * dvfs.rate(level))
                            for i, level in chosen
                        ]
                    )
                if active:
                    obs.slot_decision(
                        ready=ready,
                        chosen=tuple(i for i, _ in chosen),
                        solar_power=solar_power,
                        load_power=load_power,
                        run_fraction=flow.run_fraction,
                    )
                # NVP nonvolatility bookkeeping: a brownout checkpoints
                # the affected cores (backup energy), the next powered
                # slot restores them.  The energies are tiny (µJ, [13])
                # but they come out of the storage path like any load.
                cycle_cost = 0.0
                active_nvps = {nvp_of[i] for i, _ in chosen}
                if flow.run_fraction < 1.0 - 1e-9 and chosen:
                    brownouts += 1
                    if active:
                        obs.brownout(
                            run_fraction=flow.run_fraction,
                            needed_energy=load_power * dt,
                            delivered_energy=flow.load_energy,
                            active_index=bank.active_index,
                            active_voltage=bank.active.voltage,
                        )
                    for k in active_nvps:
                        cycle_cost += nvps[k].power_fail()
                else:
                    for k in active_nvps:
                        cycle_cost += nvps[k].power_up()
                if cycle_cost > 0:
                    bank.active.discharge(cycle_cost)
                if active:
                    _leak_t0 = perf_counter()
                    lost = bank.leak_all(dt)
                    obs.profiler.add(
                        "leakage_update", perf_counter() - _leak_t0
                    )
                else:
                    lost = bank.leak_all(dt)

                solar_energy += solar_power * dt
                load_energy += flow.load_energy
                direct_energy += flow.direct_energy
                storage_energy += flow.storage_energy
                charged_energy += flow.charged_energy
                offered_surplus += flow.offered_surplus
                leakage_energy += lost

                if slot_arrays is not None:
                    flat = period_start_slot + slot
                    slot_arrays.solar_power[flat] = solar_power
                    slot_arrays.load_power[flat] = load_power
                    slot_arrays.run_fraction[flat] = flow.run_fraction
                    slot_arrays.active_voltage[flat] = bank.active.voltage
                    slot_arrays.active_index[flat] = bank.active_index

            slot_loop_span.__exit__(None, None, None)
            if active:
                obs.metrics.histogram("fine_pass_seconds").observe(
                    slot_loop_span.elapsed
                )
                obs.set_time(day, period, tl.slots_per_period)
            boundary_missed = runtime.check_deadlines(tl.slots_per_period)
            sweep_missed = runtime.finalize()
            if active:
                obs.deadline_miss(boundary_missed)
                obs.deadline_miss(sweep_missed, final=True)
            dmr = runtime.dmr
            dmr_sum += dmr
            periods_done += 1
            last_period_energy = solar_energy
            last_period_powers = period_powers

            record = PeriodRecord(
                day=day,
                period=period,
                dmr=dmr,
                miss_count=runtime.miss_count,
                executed=runtime.started.copy(),
                solar_energy=solar_energy,
                load_energy=load_energy,
                direct_energy=direct_energy,
                storage_energy=storage_energy,
                charged_energy=charged_energy,
                offered_surplus=offered_surplus,
                leakage_energy=leakage_energy,
                brownout_slots=brownouts,
                start_voltages=start_voltages,
                active_index=active_at_start,
            )
            period_records.append(record)
            for mon in self.monitors:
                for violation in mon.on_period(record):
                    if active:
                        obs.invariant_violation(
                            check=violation.check,
                            message=violation.message,
                            severity=violation.severity,
                        )
            if active:
                obs.period_end(
                    dmr=dmr,
                    miss_count=runtime.miss_count,
                    brownout_slots=brownouts,
                    solar_energy=solar_energy,
                    load_energy=load_energy,
                )
            self.scheduler.on_period_end(
                PeriodEndView(
                    day=day,
                    period=period,
                    dmr=dmr,
                    missed=runtime.missed.copy(),
                    observed_energy=solar_energy,
                    observed_powers=period_powers.copy(),
                    bank=self._bank_view(),
                )
            )

            done = flat_p + 1
            stopping = (
                stop_after_periods is not None and done >= stop_after_periods
            )
            if (
                self.checkpoint is not None
                and done < tl.total_periods
                and (done % self.checkpoint.every_periods == 0 or stopping)
            ):
                path = self._write_checkpoint(
                    done,
                    fingerprint,
                    period_records,
                    slot_arrays,
                    dmr_sum,
                    periods_done,
                    last_period_energy,
                    last_period_powers,
                )
                if active:
                    obs.checkpoint_saved(str(path), done)
                if stopping:
                    raise SimulationInterrupted(path, done)
            elif stopping:
                # stop_after_periods >= total_periods: fall through and
                # let the run complete normally.
                pass

        if inj is not None:
            inj.finish(self.node)
        result = SimulationResult(
            timeline=tl,
            scheduler_name=self.scheduler.name,
            periods=period_records,
            slots=slot_arrays,
        )
        for mon in self.monitors:
            for violation in mon.on_finish(result):
                if active:
                    obs.invariant_violation(
                        check=violation.check,
                        message=violation.message,
                        severity=violation.severity,
                    )
        if active:
            obs.finish(result.summary(), scheduler=result.scheduler_name)
        return result

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _verify_payload(self, payload: dict, fingerprint: str) -> None:
        if payload["fingerprint"] != fingerprint:
            raise CheckpointError(
                "checkpoint does not match this run configuration "
                "(different timeline, task set, trace or scheduler)"
            )
        if payload["record_slots"] != self.record_slots:
            raise CheckpointError(
                f"checkpoint was written with record_slots="
                f"{payload['record_slots']}, this engine has "
                f"record_slots={self.record_slots}"
            )

    def _restore_node(self, payload: dict) -> None:
        bank = self.node.bank
        voltages = payload["bank_voltages"]
        if len(voltages) != len(bank):
            raise CheckpointError(
                f"checkpoint has {len(voltages)} capacitors, the node "
                f"has {len(bank)}"
            )
        for state, voltage in zip(bank.states, voltages):
            state.voltage = float(voltage)
        bank.select(payload["bank_active_index"])
        bank.switch_count = payload["bank_switch_count"]
        nvp_states = payload["nvp_states"]
        if len(nvp_states) != len(self.node.nvps):
            raise CheckpointError(
                f"checkpoint has {len(nvp_states)} NVPs, the node has "
                f"{len(self.node.nvps)}"
            )
        for nvp, (powered, brownouts) in zip(self.node.nvps, nvp_states):
            nvp.powered = bool(powered)
            nvp.brownout_count = int(brownouts)

    def _write_checkpoint(
        self,
        next_flat_period: int,
        fingerprint: str,
        period_records: List[PeriodRecord],
        slot_arrays: Optional[SlotArrays],
        dmr_sum: float,
        periods_done: int,
        last_period_energy: Optional[float],
        last_period_powers: Optional[np.ndarray],
    ) -> Path:
        bank = self.node.bank
        # The scheduler is pickled without its observer (sinks hold
        # file handles); the engine re-attaches one at resume.
        had_observer = "observer" in self.scheduler.__dict__
        previous = self.scheduler.__dict__.pop("observer", None)
        try:
            scheduler_blob = pickle.dumps(
                self.scheduler, protocol=pickle.HIGHEST_PROTOCOL
            )
        finally:
            if had_observer:
                self.scheduler.observer = previous
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "record_slots": self.record_slots,
            "next_flat_period": next_flat_period,
            "dmr_sum": dmr_sum,
            "periods_done": periods_done,
            "last_period_energy": last_period_energy,
            "last_period_powers": last_period_powers,
            "period_records": list(period_records),
            "slot_arrays": slot_arrays,
            "bank_voltages": [s.voltage for s in bank.states],
            "bank_active_index": bank.active_index,
            "bank_switch_count": bank.switch_count,
            "nvp_states": [
                (nvp.powered, nvp.brownout_count) for nvp in self.node.nvps
            ],
            "scheduler": scheduler_blob,
        }
        path = save_checkpoint(
            checkpoint_path(self.checkpoint.path, next_flat_period), payload
        )
        prune_checkpoints(
            self.checkpoint.path, self.checkpoint.keep, protect=path
        )
        return path


def simulate(
    node: SensorNode,
    graph: TaskGraph,
    trace: SolarTrace,
    scheduler: Scheduler,
    strict: bool = True,
    record_slots: bool = False,
    observer: Optional[Observer] = None,
    fault_injector=None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume_from: Optional[Union[str, Path]] = None,
    stop_after_periods: Optional[int] = None,
    monitors: Sequence = (),
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`.

    The run is wrapped in an ``engine_run`` span when a tracer is
    active (the observer's own, or the ambient one inside fleet/suite
    workers).  Tracing never touches the hot loop: the span opens and
    closes around the whole run, so the engine's numerics — and the
    NULL-path bit-identity guarantee — are unchanged.
    """
    from ..obs.trace import current_tracer

    engine = SimulationEngine(
        node,
        graph,
        trace,
        scheduler,
        strict=strict,
        record_slots=record_slots,
        observer=observer,
        fault_injector=fault_injector,
        checkpoint=checkpoint,
        monitors=monitors,
    )
    tracer = getattr(observer, "tracer", None) or current_tracer()
    if not tracer.enabled:
        return engine.run(
            resume_from=resume_from, stop_after_periods=stop_after_periods
        )
    with tracer.span(
        "engine_run",
        attrs={
            "scheduler": scheduler.name,
            "benchmark": graph.name,
            "total_slots": trace.timeline.total_slots,
        },
    ) as span:
        result = engine.run(
            resume_from=resume_from, stop_after_periods=stop_after_periods
        )
        span.annotate(dmr=result.dmr)
        return result
