"""Slot-by-slot simulation engine.

Drives a :class:`~repro.schedulers.base.Scheduler` over a solar trace
on a :class:`~repro.node.node.SensorNode`:

1. at each period start, a fresh :class:`PeriodRuntime` is created and
   the scheduler's coarse hook runs (it may request a capacitor switch
   through the PMU's Eq. (22) rule);
2. at each slot start, deadlines falling at this boundary are checked
   (Eq. 5), the scheduler picks tasks from the ready set, the engine
   validates the pick (readiness Eq. 7, one task per NVP Eq. 9), the
   PMU routes energy (direct channel first, storage for the deficit),
   task progress advances by the powered fraction of the slot, and all
   capacitors leak;
3. at period end, unfinished tasks are marked missed, the period DMR
   is recorded and the scheduler's feedback hook runs.

Energy semantics of a brownout: when storage cannot cover the deficit,
the load runs for the covered fraction of the slot and the NVPs retain
progress (nonvolatility); the panel keeps charging the capacitor for
the rest of the slot.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from ..node.node import SensorNode
from ..obs.events import NULL_OBSERVER, Observer
from ..schedulers.base import Scheduler
from ..solar.trace import SolarTrace
from ..tasks.graph import TaskGraph
from ..timeline import SlotIndex
from .recorder import PeriodRecord, SimulationResult, SlotArrays
from .state import PeriodRuntime
from .views import BankView, PeriodEndView, PeriodStartView, SlotView

__all__ = ["SimulationEngine", "simulate", "InvalidDecisionError"]


class InvalidDecisionError(RuntimeError):
    """A scheduler returned an illegal slot decision."""


class SimulationEngine:
    """Binds node, workload, trace and policy into one run.

    Parameters
    ----------
    node:
        The sensor node (panel, capacitor bank, PMU, NVPs).
    graph:
        The periodic task set.
    trace:
        Per-slot solar power at the panel output.
    scheduler:
        The policy under test.
    strict:
        When True (default) an illegal decision raises
        :class:`InvalidDecisionError`; when False illegal entries are
        silently dropped (useful for learned policies).
    record_slots:
        When True, dense per-slot arrays are kept in the result.
    observer:
        Observability hub (event sinks, metrics, phase profiler).
        Defaults to the disabled :data:`~repro.obs.events.NULL_OBSERVER`,
        which adds no measurable cost and changes no behaviour.
    """

    def __init__(
        self,
        node: SensorNode,
        graph: TaskGraph,
        trace: SolarTrace,
        scheduler: Scheduler,
        strict: bool = True,
        record_slots: bool = False,
        observer: Optional[Observer] = None,
    ) -> None:
        if graph.num_nvps > node.num_nvps:
            raise ValueError(
                f"task set needs {graph.num_nvps} NVPs but the node has "
                f"{node.num_nvps}"
            )
        self.node = node
        self.graph = graph
        self.trace = trace
        self.timeline = trace.timeline
        self.scheduler = scheduler
        self.strict = strict
        self.record_slots = record_slots
        self.observer = observer if observer is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    def _bank_view(self) -> BankView:
        bank = self.node.bank
        return BankView(
            capacitances=bank.capacitances(),
            voltages=bank.voltages(),
            usable_energies=bank.usable_energies(),
            active_index=bank.active_index,
        )

    def _validate(
        self, decision: Sequence, ready: Sequence[int]
    ) -> List[tuple]:
        """Normalise a decision to ``[(task, level), ...]``.

        Entries may be plain task indices (level 1.0) or
        ``(task, level)`` pairs when the node supports DVFS.
        """
        ready_set = set(ready)
        seen_nvps = set()
        valid: List[tuple] = []
        dvfs = self.node.dvfs
        for entry in decision:
            if isinstance(entry, tuple):
                task, level = entry
                task = int(task)
                level = float(level)
            else:
                task, level = int(entry), 1.0
            if level != 1.0 and (
                dvfs is None or not dvfs.is_valid_level(level)
            ):
                if self.strict:
                    raise InvalidDecisionError(
                        f"frequency level {level} is not supported by the "
                        "node"
                    )
                level = 1.0
            if task not in ready_set:
                if self.strict:
                    raise InvalidDecisionError(
                        f"task {task} is not ready (ready set: {sorted(ready_set)})"
                    )
                continue
            nvp = self.graph.nvp_of(task)
            if nvp in seen_nvps:
                if self.strict:
                    raise InvalidDecisionError(
                        f"two tasks scheduled on NVP {nvp} in one slot"
                    )
                continue
            seen_nvps.add(nvp)
            valid.append((task, level))
        return valid

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        tl = self.timeline
        dt = tl.slot_seconds
        obs = self.observer
        active = obs.enabled
        # Attach the observer to the other emitters for this run.
        self.scheduler.observer = obs
        self.node.pmu.observer = obs
        self.scheduler.bind(tl, self.graph)

        period_records: List[PeriodRecord] = []
        slot_arrays: Optional[SlotArrays] = None
        if self.record_slots:
            n = tl.total_slots
            slot_arrays = SlotArrays(
                solar_power=np.zeros(n),
                load_power=np.zeros(n),
                run_fraction=np.zeros(n),
                active_voltage=np.zeros(n),
                active_index=np.zeros(n, dtype=int),
            )

        dmr_sum = 0.0
        periods_done = 0
        last_period_energy: Optional[float] = None
        last_period_powers: Optional[np.ndarray] = None

        for day, period in tl.iter_periods():
            runtime = PeriodRuntime(self.graph, tl)
            accumulated = dmr_sum / periods_done if periods_done else 0.0
            if active:
                obs.set_time(day, period)
            start_view = PeriodStartView(
                timeline=tl,
                graph=self.graph,
                day=day,
                period=period,
                bank=self._bank_view(),
                accumulated_dmr=accumulated,
                last_period_energy=last_period_energy,
                last_period_powers=last_period_powers,
                request_capacitor=self.node.pmu.request_capacitor,
                force_capacitor=self.node.pmu.force_capacitor,
            )
            with obs.span("coarse_hook") as coarse_span:
                self.scheduler.on_period_start(start_view)
            if active:
                obs.metrics.histogram("coarse_pass_seconds").observe(
                    coarse_span.elapsed
                )

            start_voltages = self.node.bank.voltages()
            active_at_start = self.node.bank.active_index
            solar_energy = load_energy = direct_energy = 0.0
            storage_energy = charged_energy = offered_surplus = 0.0
            leakage_energy = 0.0
            brownouts = 0
            period_powers = np.zeros(tl.slots_per_period)

            slot_loop_span = obs.span("slot_loop")
            slot_loop_span.__enter__()
            for slot in range(tl.slots_per_period):
                if active:
                    obs.set_time(day, period, slot)
                newly_missed = runtime.check_deadlines(slot)
                if active and newly_missed:
                    obs.deadline_miss(newly_missed)
                solar_power = self.trace.slot_power(SlotIndex(day, period, slot))
                period_powers[slot] = solar_power
                ready = runtime.ready_tasks(slot)
                decision = self.scheduler.on_slot(
                    SlotView(
                        timeline=tl,
                        graph=self.graph,
                        day=day,
                        period=period,
                        slot=slot,
                        solar_power=solar_power,
                        slot_seconds=dt,
                        remaining=runtime.remaining.copy(),
                        completed=runtime.completed,
                        missed=runtime.missed.copy(),
                        deadline_slots=runtime.deadline_slots.copy(),
                        ready=ready,
                        bank=self._bank_view(),
                    )
                )
                chosen = self._validate(decision, ready)
                dvfs = self.node.dvfs
                load_power = float(
                    sum(
                        self.graph.tasks[i].power
                        * (dvfs.power_factor(level) if dvfs else 1.0)
                        for i, level in chosen
                    )
                )
                flow = self.node.pmu.supply_slot(solar_power, load_power, dt)
                runtime.advance_scaled(
                    [
                        (
                            i,
                            flow.run_fraction
                            * dt
                            * (dvfs.rate(level) if dvfs else 1.0),
                        )
                        for i, level in chosen
                    ]
                )
                if active:
                    obs.slot_decision(
                        ready=ready,
                        chosen=tuple(i for i, _ in chosen),
                        solar_power=solar_power,
                        load_power=load_power,
                        run_fraction=flow.run_fraction,
                    )
                # NVP nonvolatility bookkeeping: a brownout checkpoints
                # the affected cores (backup energy), the next powered
                # slot restores them.  The energies are tiny (µJ, [13])
                # but they come out of the storage path like any load.
                cycle_cost = 0.0
                active_nvps = {self.graph.nvp_of(i) for i, _ in chosen}
                if flow.run_fraction < 1.0 - 1e-9 and chosen:
                    brownouts += 1
                    if active:
                        obs.brownout(
                            run_fraction=flow.run_fraction,
                            needed_energy=load_power * dt,
                            delivered_energy=flow.load_energy,
                            active_index=self.node.bank.active_index,
                            active_voltage=self.node.bank.active.voltage,
                        )
                    for k in active_nvps:
                        cycle_cost += self.node.nvps[k].power_fail()
                else:
                    for k in active_nvps:
                        cycle_cost += self.node.nvps[k].power_up()
                if cycle_cost > 0:
                    self.node.bank.active.discharge(cycle_cost)
                if active:
                    _leak_t0 = perf_counter()
                    lost = self.node.bank.leak_all(dt)
                    obs.profiler.add(
                        "leakage_update", perf_counter() - _leak_t0
                    )
                else:
                    lost = self.node.bank.leak_all(dt)

                solar_energy += solar_power * dt
                load_energy += flow.load_energy
                direct_energy += flow.direct_energy
                storage_energy += flow.storage_energy
                charged_energy += flow.charged_energy
                offered_surplus += flow.offered_surplus
                leakage_energy += lost

                if slot_arrays is not None:
                    flat = tl.flat_slot(SlotIndex(day, period, slot))
                    slot_arrays.solar_power[flat] = solar_power
                    slot_arrays.load_power[flat] = load_power
                    slot_arrays.run_fraction[flat] = flow.run_fraction
                    slot_arrays.active_voltage[flat] = (
                        self.node.bank.active.voltage
                    )
                    slot_arrays.active_index[flat] = self.node.bank.active_index

            slot_loop_span.__exit__(None, None, None)
            if active:
                obs.metrics.histogram("fine_pass_seconds").observe(
                    slot_loop_span.elapsed
                )
                obs.set_time(day, period, tl.slots_per_period)
            boundary_missed = runtime.check_deadlines(tl.slots_per_period)
            sweep_missed = runtime.finalize()
            if active:
                obs.deadline_miss(boundary_missed)
                obs.deadline_miss(sweep_missed, final=True)
            dmr = runtime.dmr
            dmr_sum += dmr
            periods_done += 1
            last_period_energy = solar_energy
            last_period_powers = period_powers

            record = PeriodRecord(
                day=day,
                period=period,
                dmr=dmr,
                miss_count=runtime.miss_count,
                executed=runtime.started.copy(),
                solar_energy=solar_energy,
                load_energy=load_energy,
                direct_energy=direct_energy,
                storage_energy=storage_energy,
                charged_energy=charged_energy,
                offered_surplus=offered_surplus,
                leakage_energy=leakage_energy,
                brownout_slots=brownouts,
                start_voltages=start_voltages,
                active_index=active_at_start,
            )
            period_records.append(record)
            if active:
                obs.period_end(
                    dmr=dmr,
                    miss_count=runtime.miss_count,
                    brownout_slots=brownouts,
                    solar_energy=solar_energy,
                    load_energy=load_energy,
                )
            self.scheduler.on_period_end(
                PeriodEndView(
                    day=day,
                    period=period,
                    dmr=dmr,
                    missed=runtime.missed.copy(),
                    observed_energy=solar_energy,
                    observed_powers=period_powers.copy(),
                    bank=self._bank_view(),
                )
            )

        result = SimulationResult(
            timeline=tl,
            scheduler_name=self.scheduler.name,
            periods=period_records,
            slots=slot_arrays,
        )
        if active:
            obs.finish(result.summary(), scheduler=result.scheduler_name)
        return result


def simulate(
    node: SensorNode,
    graph: TaskGraph,
    trace: SolarTrace,
    scheduler: Scheduler,
    strict: bool = True,
    record_slots: bool = False,
    observer: Optional[Observer] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(
        node,
        graph,
        trace,
        scheduler,
        strict=strict,
        record_slots=record_slots,
        observer=observer,
    ).run()
