"""Crash-safe checkpoint/resume for simulations.

A month-long chaos run that dies at day 29 should not restart from
zero — the meta-level mirror of the NVP backup/restore the node model
itself implements.  At any period boundary the engine can serialize
everything mutable about a run — capacitor voltages, the active
capacitor, NVP power states, the scheduler (with whatever it has
learned), accumulated period records and running aggregates — into a
checkpoint file.  Resuming restores that state and continues the
period loop; the resumed run is **bit-identical** to an uninterrupted
one (guarded by test), because the engine itself is deterministic and
every piece of mutable state is captured exactly.

The immutable run configuration (timeline, task graph, solar trace,
scheduler type) is *not* stored; the caller reconstructs it and the
checkpoint carries a fingerprint so a mismatched resume fails loudly
with :class:`CheckpointError` instead of silently diverging.

Checkpoint files are written atomically (temp file + rename) so a
crash mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from pathlib import Path
from typing import Optional, Union

import numpy as np

__all__ = [
    "CheckpointConfig",
    "CheckpointError",
    "SimulationInterrupted",
    "run_fingerprint",
    "result_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "CHECKPOINT_VERSION",
]

#: Bump when the payload layout changes; old files are rejected.
CHECKPOINT_VERSION = 1

_CHECKPOINT_GLOB = "period-*.ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, or does not match the run."""


class SimulationInterrupted(RuntimeError):
    """A run stopped early on purpose after writing a checkpoint.

    Raised by the engine when ``stop_after_periods`` is reached —
    the deterministic stand-in for a mid-run crash in tests and CI.
    ``checkpoint_path`` locates the checkpoint to resume from.
    """

    def __init__(self, checkpoint_path: Path, periods_done: int) -> None:
        super().__init__(
            f"simulation stopped after {periods_done} period(s); "
            f"resume from {checkpoint_path}"
        )
        self.checkpoint_path = Path(checkpoint_path)
        self.periods_done = periods_done


@dataclasses.dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often the engine checkpoints.

    Parameters
    ----------
    directory:
        Checkpoint files (``period-NNNNNN.ckpt``) go here; created on
        first write.
    every_periods:
        A checkpoint is written after every ``every_periods`` completed
        periods.
    keep:
        How many most-recent checkpoints to retain (older ones are
        deleted); ``0`` keeps everything.
    """

    directory: Union[str, Path]
    every_periods: int = 8
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every_periods < 1:
            raise ValueError(
                f"every_periods must be >= 1, got {self.every_periods}"
            )
        if self.keep < 0:
            raise ValueError(f"keep must be >= 0, got {self.keep}")

    @property
    def path(self) -> Path:
        return Path(self.directory)


# ----------------------------------------------------------------------
def run_fingerprint(timeline, graph, trace, scheduler_name: str) -> str:
    """Digest of the immutable run configuration.

    Two runs with equal fingerprints iterate the same periods over the
    same trace with the same task set and policy type — the
    precondition for resuming one from the other's checkpoint.
    """
    h = hashlib.sha256()
    h.update(
        repr(
            (
                timeline.num_days,
                timeline.periods_per_day,
                timeline.slots_per_period,
                timeline.slot_seconds,
            )
        ).encode()
    )
    for task in graph.tasks:
        h.update(
            repr(
                (
                    task.name,
                    task.execution_time,
                    task.deadline,
                    task.power,
                    task.nvp,
                )
            ).encode()
        )
    h.update(np.ascontiguousarray(trace.power).tobytes())
    h.update(scheduler_name.encode())
    return h.hexdigest()


def result_fingerprint(result, include_slots: bool = True) -> str:
    """Digest of everything a :class:`SimulationResult` records.

    Bit-identity oracle for resume-equivalence checks: two results
    with equal fingerprints have identical per-period DMRs, energy
    books and executed sets.  ``include_slots=False`` digests the
    period records only, so a run captured with ``record_slots=True``
    can be compared against a reference captured without it (the
    per-slot arrays are derived observations; period records do not
    depend on them).
    """
    h = hashlib.sha256()
    for p in result.periods:
        h.update(
            repr(
                (
                    p.day,
                    p.period,
                    p.dmr,
                    p.miss_count,
                    p.solar_energy,
                    p.load_energy,
                    p.direct_energy,
                    p.storage_energy,
                    p.charged_energy,
                    p.offered_surplus,
                    p.leakage_energy,
                    p.brownout_slots,
                    p.active_index,
                )
            ).encode()
        )
        h.update(np.ascontiguousarray(p.executed).tobytes())
        h.update(np.ascontiguousarray(p.start_voltages).tobytes())
    if include_slots and result.slots is not None:
        for name in (
            "solar_power",
            "load_power",
            "run_fraction",
            "active_voltage",
            "active_index",
        ):
            h.update(
                np.ascontiguousarray(getattr(result.slots, name)).tobytes()
            )
    return h.hexdigest()


# ----------------------------------------------------------------------
def checkpoint_path(directory: Union[str, Path], flat_period: int) -> Path:
    """Canonical file name of the checkpoint after ``flat_period``."""
    return Path(directory) / f"period-{flat_period:06d}.ckpt"


def save_checkpoint(path: Union[str, Path], payload: dict) -> Path:
    """Atomically write a checkpoint payload to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return path


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read a checkpoint payload; :class:`CheckpointError` on failure."""
    path = Path(path)
    if not path.is_file():
        raise CheckpointError(f"no checkpoint file at {path}")
    try:
        with path.open("rb") as fh:
            payload = pickle.load(fh)
    except (pickle.UnpicklingError, EOFError, OSError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or "version" not in payload:
        raise CheckpointError(f"{path} is not a simulation checkpoint")
    if payload["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {payload['version']}; this "
            f"build reads version {CHECKPOINT_VERSION}"
        )
    return payload


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """Most recent checkpoint file in ``directory``, or None."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob(_CHECKPOINT_GLOB))
    return candidates[-1] if candidates else None


def prune_checkpoints(
    directory: Union[str, Path],
    keep: int,
    protect: Optional[Path] = None,
) -> None:
    """Delete all but the ``keep`` most recent checkpoints.

    ``protect`` names a file that must survive regardless of its sort
    position — the checkpoint just written may carry a *lower* period
    number than stale files from an earlier, longer run in the same
    directory, and pruning must never delete it.
    """
    if keep <= 0:
        return
    directory = Path(directory)
    candidates = sorted(directory.glob(_CHECKPOINT_GLOB))
    for stale in candidates[:-keep]:
        if protect is not None and stale == Path(protect):
            continue
        try:
            stale.unlink()
        except OSError:
            pass
