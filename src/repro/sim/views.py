"""Read-only views the engine hands to schedulers.

Schedulers are *causal*: they see the current slot's measured solar
power, the node's storage state, task progress, and anything they
observed earlier — never the future of the trace.  Oracle schedulers
(static optimal) receive the full trace at construction instead.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

import numpy as np

from ..tasks.graph import TaskGraph
from ..timeline import Timeline

__all__ = [
    "PeriodStartView",
    "SlotView",
    "PeriodEndView",
    "BankView",
    "PeriodFaultFlags",
]


@dataclasses.dataclass(frozen=True)
class PeriodFaultFlags:
    """Runtime faults injected into the coarse stage this period.

    ``corrupted_features`` records that ``last_period_powers`` was
    already tampered with by the injector (informational — the
    corruption happened upstream); ``fail_inference`` instructs
    inference-based coarse policies to fail this period, exercising
    their degradation path.  Schedulers without an inference stage
    ignore these flags.
    """

    corrupted_features: bool = False
    fail_inference: bool = False


@dataclasses.dataclass(frozen=True)
class BankView:
    """Snapshot of the capacitor bank."""

    capacitances: np.ndarray
    voltages: np.ndarray
    usable_energies: np.ndarray
    active_index: int

    @property
    def active_usable_energy(self) -> float:
        return float(self.usable_energies[self.active_index])


@dataclasses.dataclass(frozen=True)
class PeriodStartView:
    """Context for coarse, once-per-period decisions.

    ``request_capacitor`` routes through the PMU's Eq. (22) threshold
    rule and returns whether the requested capacitor is now active;
    ``force_capacitor`` bypasses the rule (offline/oracle plans only).
    ``last_period_powers`` holds the measured per-slot solar power of
    the previous period (the DBN's main input), None for the first.
    """

    timeline: Timeline
    graph: TaskGraph
    day: int
    period: int
    bank: BankView
    accumulated_dmr: float
    last_period_energy: Optional[float]
    last_period_powers: Optional[np.ndarray]
    request_capacitor: Callable[[int], bool]
    force_capacitor: Callable[[int], None]
    faults: Optional[PeriodFaultFlags] = None


@dataclasses.dataclass(frozen=True)
class SlotView:
    """Context for the per-slot (fine-grained) decision.

    The returned decision is a sequence of task indices to execute in
    this slot; the engine enforces readiness and the one-task-per-NVP
    constraint (Eq. 9).
    """

    timeline: Timeline
    graph: TaskGraph
    day: int
    period: int
    slot: int
    solar_power: float
    slot_seconds: float
    remaining: np.ndarray
    completed: np.ndarray
    missed: np.ndarray
    deadline_slots: np.ndarray
    ready: Tuple[int, ...]
    bank: BankView

    @property
    def slots_left(self) -> int:
        """Slots remaining in the period including this one."""
        return self.timeline.slots_per_period - self.slot


@dataclasses.dataclass(frozen=True)
class PeriodEndView:
    """Feedback after a period finished (for predictor updates)."""

    day: int
    period: int
    dmr: float
    missed: np.ndarray
    observed_energy: float
    observed_powers: np.ndarray
    bank: BankView
