"""Mutable per-period runtime state of the task set.

Tracks the remaining execution time ``S'_{i,j,m}(n)`` (Eq. 4), the
deadline-miss flags ``θ`` (Eq. 5), and readiness under the dependence
constraint (Eq. 7).  A fresh :class:`PeriodRuntime` is created at every
period start: tasks executed in one period are independent of those in
other periods (Section 3.1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..tasks.graph import TaskGraph
from ..timeline import Timeline

__all__ = ["PeriodRuntime", "COMPLETION_EPS"]

#: Remaining time below which a task counts as completed, seconds.
COMPLETION_EPS = 1e-6


class PeriodRuntime:
    """Task progress within one period.

    Parameters
    ----------
    graph:
        The task set and its dependences.
    timeline:
        Supplies the slot duration and the deadline-slot mapping.
    """

    def __init__(self, graph: TaskGraph, timeline: Timeline) -> None:
        self.graph = graph
        self.timeline = timeline
        n = len(graph)
        self.remaining = np.array(
            [t.execution_time for t in graph.tasks], dtype=float
        )
        self.missed = np.zeros(n, dtype=bool)
        self.started = np.zeros(n, dtype=bool)
        #: Slot index at whose *start* each task's deadline is checked.
        self.deadline_slots = np.array(
            [timeline.deadline_slot(t.deadline) for t in graph.tasks],
            dtype=int,
        )
        # Hot-loop accelerators: a boolean predecessor matrix so
        # readiness is one vectorized mask, and a slot -> tasks map so
        # the per-slot deadline check only touches tasks actually due.
        pred_mask = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for p in graph.predecessors(i):
                pred_mask[i, p] = True
        self._pred_mask = pred_mask
        self._deadline_map: dict = {}
        for i, s in enumerate(self.deadline_slots.tolist()):
            self._deadline_map.setdefault(s, []).append(i)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> np.ndarray:
        return self.remaining <= COMPLETION_EPS

    def is_completed(self, task: int) -> bool:
        return bool(self.remaining[task] <= COMPLETION_EPS)

    def ready_tasks(self, slot: int) -> Tuple[int, ...]:
        """Tasks that may execute in ``slot``.

        Ready = not completed, not missed, deadline not yet reached,
        and every predecessor completed (Eq. 7).
        """
        done = self.remaining <= COMPLETION_EPS
        blocked = (self._pred_mask & ~done).any(axis=1)
        ready = ~done & ~self.missed & (slot < self.deadline_slots) & ~blocked
        return tuple(np.flatnonzero(ready).tolist())

    def advance(self, tasks: Sequence[int], seconds: float) -> None:
        """Progress the given tasks by ``seconds`` of execution."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        for i in tasks:
            if self.missed[i]:
                continue
            self.started[i] = True
            self.remaining[i] = max(self.remaining[i] - seconds, 0.0)

    def advance_scaled(
        self, task_seconds: Sequence[Tuple[int, float]]
    ) -> None:
        """Progress each ``(task, seconds)`` pair (DVFS-scaled slots)."""
        for i, seconds in task_seconds:
            if seconds < 0:
                raise ValueError(f"seconds must be >= 0, got {seconds}")
            if self.missed[i]:
                continue
            self.started[i] = True
            self.remaining[i] = max(self.remaining[i] - seconds, 0.0)

    def check_deadlines(self, slot: int) -> Tuple[int, ...]:
        """Mark tasks whose deadline is at the start of ``slot`` and
        that still have remaining work (Eq. 5); returns the new misses.

        A miss also dooms every transitive dependent whose remaining
        work can no longer legally start; those are marked missed the
        moment their producer misses, so schedulers stop wasting energy
        on them.
        """
        candidates = self._deadline_map.get(slot)
        if not candidates:
            return ()
        newly_missed: List[int] = []
        for i in candidates:
            if self.missed[i] or self.is_completed(i):
                continue
            self.missed[i] = True
            newly_missed.append(i)
        # Cascade: dependents of an incomplete missed task cannot run.
        for i in list(newly_missed):
            for d in self.graph.descendants(i):
                if not self.missed[d] and not self.is_completed(d):
                    self.missed[d] = True
                    newly_missed.append(d)
        return tuple(newly_missed)

    def finalize(self) -> Tuple[int, ...]:
        """End-of-period sweep: any incomplete task is a miss."""
        newly = []
        for i in range(len(self.graph)):
            if not self.missed[i] and not self.is_completed(i):
                self.missed[i] = True
                newly.append(i)
        return tuple(newly)

    @property
    def miss_count(self) -> int:
        return int(self.missed.sum())

    @property
    def dmr(self) -> float:
        """Deadline miss rate of this period (Eq. 16)."""
        return self.miss_count / len(self.graph)
