"""Runtime fault injection: deterministic faults *inside* the slot loop.

The trace-level faults of :mod:`repro.reliability.faults` degrade the
input before a run starts; real deployments also fail while running —
a connector browns out mid-afternoon, a super capacitor's leakage
spikes with temperature, the capacitor-selection mux sticks, the
feature vector feeding the coarse stage is corrupted by a bit flip, or
the DBN inference itself faults.  This module injects exactly those,
at slot granularity, from a seeded :class:`FaultPlan` so every chaos
run is reproducible.

A :class:`FaultPlan` is a set of slot-indexed :class:`FaultWindow`
activations.  The :class:`FaultInjector` consumes the plan inside
:class:`~repro.sim.engine.SimulationEngine`: per slot it synchronises
the node's component state with the windows covering that slot
(idempotently, so a checkpoint/resume lands in the identical state),
scales the solar supply for dropout windows, and raises per-period
flags for the online stage.  Every window transition emits a typed
``fault_injected`` event through the run's observer.

Fault kinds
-----------
``supply_dropout``
    The panel output is scaled by ``1 - severity`` for the window
    (1.0 = total dropout).
``leak_spike``
    The targeted capacitor's leakage coefficient is multiplied by
    ``1 + severity · (LEAK_SPIKE_MAX_MULTIPLIER - 1)``.
``esr_spike``
    The targeted capacitor's cycle efficiency (ESR loss) is scaled by
    ``1 - severity`` (floored so it stays physical).
``regulator_stuck``
    The PMU's capacitor-selection switch is stuck: every switch
    request is refused for the window.
``feature_corruption``
    The previous-period solar powers handed to the coarse stage are
    deterministically corrupted (NaNs, garbage scaling or zeroing).
``inference_failure``
    Inference-based coarse policies are instructed to fail this
    period, exercising their graceful-degradation ladder.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..node.node import SensorNode
from ..obs.events import NULL_OBSERVER
from ..sim.views import PeriodFaultFlags
from ..timeline import Timeline

__all__ = [
    "FAULT_KINDS",
    "FaultWindow",
    "FaultPlan",
    "FaultInjector",
    "RUNTIME_SCENARIOS",
    "runtime_scenario",
]

#: Every supported runtime fault kind, in canonical order.
FAULT_KINDS = (
    "supply_dropout",
    "leak_spike",
    "esr_spike",
    "regulator_stuck",
    "feature_corruption",
    "inference_failure",
)

_COMPONENT_KINDS = frozenset({"leak_spike", "esr_spike"})
_SLOT_KINDS = frozenset(
    {"supply_dropout", "leak_spike", "esr_spike", "regulator_stuck"}
)
_PERIOD_KINDS = frozenset({"feature_corruption", "inference_failure"})

#: Worst-case leakage multiplier at severity 1.0 (thermal runaway of a
#: failing cell is orders of magnitude above datasheet self-discharge).
LEAK_SPIKE_MAX_MULTIPLIER = 100.0
#: Cycle efficiency never drops below this under an ESR spike (the
#: device model requires efficiency in (0, 1]).
ESR_SPIKE_MIN_EFFICIENCY = 0.05


@dataclasses.dataclass(frozen=True)
class FaultWindow:
    """One fault activation: ``kind`` over ``[start, start+duration)``.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start:
        Flat slot index at which the fault activates.
    duration:
        Length of the activation in slots.
    severity:
        Fault intensity in ``[0, 1]`` (see the module docstring for
        the per-kind meaning).
    target:
        Capacitor index for component faults; ``-1`` targets every
        capacitor.  Ignored by non-component kinds.
    """

    kind: str
    start: int
    duration: int
    severity: float = 1.0
    target: int = -1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(
                f"severity must be in [0, 1], got {self.severity}"
            )
        if self.target < -1:
            raise ValueError(f"target must be >= -1, got {self.target}")

    @property
    def stop(self) -> int:
        """First flat slot *after* the window."""
        return self.start + self.duration

    def covers(self, flat_slot: int) -> bool:
        return self.start <= flat_slot < self.stop


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of runtime fault activations.

    Windows are stored sorted by ``(start, kind, target)`` so that any
    aggregation over overlapping windows is order-stable — a resumed
    run rebuilds the exact component state of the uninterrupted one.
    """

    windows: Tuple[FaultWindow, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.windows, key=lambda w: (w.start, w.kind, w.target))
        )
        object.__setattr__(self, "windows", ordered)

    def __len__(self) -> int:
        return len(self.windows)

    def of_kind(self, kind: str) -> Tuple[FaultWindow, ...]:
        return tuple(w for w in self.windows if w.kind == kind)

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        timeline: Timeline,
        seed: int = 0,
        *,
        dropouts_per_day: float = 0.0,
        dropout_slots: Tuple[int, int] = (1, 8),
        dropout_severity: Tuple[float, float] = (0.5, 1.0),
        leak_spikes_per_day: float = 0.0,
        esr_spikes_per_day: float = 0.0,
        spike_slots: Tuple[int, int] = (10, 60),
        spike_severity: Tuple[float, float] = (0.3, 1.0),
        regulator_stalls_per_day: float = 0.0,
        stall_slots: Tuple[int, int] = (20, 120),
        corrupted_periods_per_day: float = 0.0,
        inference_failures_per_day: float = 0.0,
    ) -> "FaultPlan":
        """Sample a plan from per-day fault rates, deterministically.

        Counts are Poisson in the horizon length; starts are uniform
        over the horizon; durations and severities are uniform in the
        given ranges.  Period-scoped faults (feature corruption,
        inference failure) snap to period boundaries.
        """
        rng = np.random.default_rng(seed)
        days = timeline.num_days
        total_slots = timeline.total_slots
        windows: List[FaultWindow] = []

        def slot_faults(kind, rate, dur_range, sev_range, cap=None):
            for _ in range(int(rng.poisson(rate * days))):
                start = int(rng.integers(total_slots))
                duration = int(rng.integers(dur_range[0], dur_range[1] + 1))
                severity = float(rng.uniform(*sev_range))
                windows.append(
                    FaultWindow(
                        kind=kind,
                        start=start,
                        duration=duration,
                        severity=severity,
                    )
                )

        slot_faults(
            "supply_dropout", dropouts_per_day, dropout_slots,
            dropout_severity,
        )
        slot_faults(
            "leak_spike", leak_spikes_per_day, spike_slots, spike_severity
        )
        slot_faults(
            "esr_spike", esr_spikes_per_day, spike_slots, spike_severity
        )
        slot_faults(
            "regulator_stuck", regulator_stalls_per_day, stall_slots,
            (1.0, 1.0),
        )

        def period_faults(kind, rate):
            for _ in range(int(rng.poisson(rate * days))):
                flat_period = int(rng.integers(timeline.total_periods))
                periods = int(rng.integers(1, 4))
                windows.append(
                    FaultWindow(
                        kind=kind,
                        start=flat_period * timeline.slots_per_period,
                        duration=periods * timeline.slots_per_period,
                        severity=float(rng.uniform(0.3, 1.0)),
                    )
                )

        period_faults("feature_corruption", corrupted_periods_per_day)
        period_faults("inference_failure", inference_failures_per_day)
        return cls(windows=tuple(windows), seed=seed)


# ----------------------------------------------------------------------
#: Named chaos scenarios for the soak matrix, CLI and CI: each maps a
#: (timeline, seed) pair to a :class:`FaultPlan`.
RUNTIME_SCENARIOS: Dict[str, Dict[str, float]] = {
    "supply-dropout": {"dropouts_per_day": 8.0},
    "leak-spike": {"leak_spikes_per_day": 5.0},
    "esr-spike": {"esr_spikes_per_day": 5.0},
    "regulator-stuck": {"regulator_stalls_per_day": 3.0},
    "feature-corruption": {"corrupted_periods_per_day": 10.0},
    "inference-failure": {"inference_failures_per_day": 10.0},
    "chaos": {
        "dropouts_per_day": 8.0,
        "leak_spikes_per_day": 5.0,
        "esr_spikes_per_day": 5.0,
        "regulator_stalls_per_day": 3.0,
        "corrupted_periods_per_day": 10.0,
        "inference_failures_per_day": 10.0,
    },
}


def runtime_scenario(
    name: str, timeline: Timeline, seed: int = 0
) -> FaultPlan:
    """Build the named chaos scenario's :class:`FaultPlan`."""
    try:
        rates = RUNTIME_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime scenario {name!r}; expected one of "
            f"{sorted(RUNTIME_SCENARIOS)}"
        ) from None
    return FaultPlan.generate(timeline, seed=seed, **rates)


# ----------------------------------------------------------------------
class FaultInjector:
    """Applies a :class:`FaultPlan` to a live simulation.

    The engine drives three hooks:

    * :meth:`sync` at every slot (and period) boundary — reconciles
      component state (capacitor devices, PMU switch lock) with the
      windows covering that slot and emits transition events;
    * :meth:`transform_solar` — scales the slot's supply for active
      dropout windows;
    * :meth:`period_flags` at every period start — reports
      period-scoped faults for the coarse stage.

    Synchronisation is *idempotent*: the desired state is recomputed
    from scratch against pristine device models each time, so a run
    resumed from a checkpoint mid-window reconstructs bit-identical
    component state.
    """

    def __init__(self, plan: FaultPlan, timeline: Timeline) -> None:
        self.plan = plan
        self.timeline = timeline
        self.observer = NULL_OBSERVER
        self._slot_windows = [
            w for w in plan.windows if w.kind in _SLOT_KINDS
        ]
        self._period_windows = [
            w for w in plan.windows if w.kind in _PERIOD_KINDS
        ]
        self._dropouts = [w for w in self._slot_windows
                          if w.kind == "supply_dropout"]
        self._active_slot_ids: Set[int] = set()
        self._active_period_ids: Set[int] = set()
        self._pristine: Tuple[SuperCapacitor, ...] = ()
        self._applied_mults: Tuple[Tuple[float, float], ...] = ()
        self._node: Optional[SensorNode] = None
        self.activation_counts: Dict[str, int] = {
            kind: 0 for kind in FAULT_KINDS
        }

    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(self.activation_counts.values())

    def attach(self, node: SensorNode) -> None:
        """Capture the pristine device models; called at run start."""
        num_caps = len(node.bank)
        for w in self.plan.windows:
            if w.kind in _COMPONENT_KINDS and w.target >= num_caps:
                raise ValueError(
                    f"fault window targets capacitor {w.target} but the "
                    f"bank has {num_caps}"
                )
        self._node = node
        self._pristine = tuple(s.capacitor for s in node.bank.states)
        self._applied_mults = tuple((1.0, 1.0) for _ in range(num_caps))
        self._active_slot_ids = set()
        self._active_period_ids = set()

    # ------------------------------------------------------------------
    def sync(self, node: SensorNode, flat_slot: int) -> None:
        """Reconcile component state with the windows at ``flat_slot``."""
        active: Set[int] = set()
        for i, w in enumerate(self._slot_windows):
            if w.covers(flat_slot):
                active.add(i)
        if active != self._active_slot_ids:
            self._emit_transitions(
                self._slot_windows, self._active_slot_ids, active
            )
            self._active_slot_ids = active
        self._apply_component_state(node, active)

    def _emit_transitions(self, windows, previous: Set[int],
                          current: Set[int]) -> None:
        obs = self.observer
        for i in sorted(current - previous):
            w = windows[i]
            self.activation_counts[w.kind] += 1
            obs.fault_injected(
                fault=w.kind, phase="start", severity=w.severity,
                target=w.target, duration_slots=w.duration,
            )
        for i in sorted(previous - current):
            w = windows[i]
            obs.fault_injected(
                fault=w.kind, phase="end", severity=w.severity,
                target=w.target, duration_slots=w.duration,
            )

    def _apply_component_state(self, node: SensorNode,
                               active: Set[int]) -> None:
        num_caps = len(node.bank)
        # Aggregate desired multipliers per capacitor in plan order so
        # overlapping windows combine deterministically.
        mults = [[1.0, 1.0] for _ in range(num_caps)]  # (leak, esr)
        stuck = False
        for i in sorted(active):
            w = self._slot_windows[i]
            if w.kind == "regulator_stuck":
                stuck = True
                continue
            if w.kind not in _COMPONENT_KINDS:
                continue
            targets = (
                range(num_caps) if w.target < 0 else (w.target,)
            )
            for t in targets:
                if w.kind == "leak_spike":
                    mults[t][0] *= (
                        1.0 + w.severity * (LEAK_SPIKE_MAX_MULTIPLIER - 1.0)
                    )
                else:  # esr_spike
                    mults[t][1] *= 1.0 - w.severity
        desired = tuple((m[0], m[1]) for m in mults)
        if desired != self._applied_mults:
            for idx in range(num_caps):
                if desired[idx] == self._applied_mults[idx]:
                    continue
                base = self._pristine[idx]
                leak_mult, esr_mult = desired[idx]
                if leak_mult == 1.0 and esr_mult == 1.0:
                    node.bank.swap_device(idx, base)
                else:
                    node.bank.swap_device(
                        idx,
                        dataclasses.replace(
                            base,
                            leak_coeff=base.leak_coeff * leak_mult,
                            cycle_efficiency=max(
                                base.cycle_efficiency * esr_mult,
                                ESR_SPIKE_MIN_EFFICIENCY,
                            ),
                        ),
                    )
            self._applied_mults = desired
        node.pmu.switch_locked = stuck

    # ------------------------------------------------------------------
    def transform_solar(self, flat_slot: int, power: float) -> float:
        """Scale the slot's supply by every active dropout window."""
        for w in self._dropouts:
            if w.covers(flat_slot):
                power *= 1.0 - w.severity
        return max(power, 0.0)

    # ------------------------------------------------------------------
    def period_flags(self, flat_period: int) -> Optional[PeriodFaultFlags]:
        """Period-scoped faults covering this period (or None)."""
        start_slot = flat_period * self.timeline.slots_per_period
        active: Set[int] = set()
        corrupted = fail = False
        for i, w in enumerate(self._period_windows):
            if w.covers(start_slot):
                active.add(i)
                if w.kind == "feature_corruption":
                    corrupted = True
                else:
                    fail = True
        if active != self._active_period_ids:
            self._emit_transitions(
                self._period_windows, self._active_period_ids, active
            )
            self._active_period_ids = active
        if not (corrupted or fail):
            return None
        return PeriodFaultFlags(
            corrupted_features=corrupted, fail_inference=fail
        )

    def corrupt_powers(
        self, flat_period: int, powers: np.ndarray
    ) -> np.ndarray:
        """Deterministically corrupt a previous-period power vector.

        The corruption depends only on ``(plan.seed, flat_period)`` —
        never on call order — so checkpoint/resume reproduces it.
        """
        severity = max(
            (
                w.severity
                for w in self._period_windows
                if w.kind == "feature_corruption"
                and w.covers(flat_period * self.timeline.slots_per_period)
            ),
            default=1.0,
        )
        rng = np.random.default_rng((self.plan.seed, flat_period))
        corrupted = np.asarray(powers, dtype=float).copy()
        mode = int(rng.integers(3))
        hit = rng.random(corrupted.shape) < max(severity, 0.05)
        if mode == 0:
            corrupted[hit] = np.nan
        elif mode == 1:
            corrupted[hit] *= float(rng.uniform(1e3, 1e6))
        else:
            corrupted[hit] = 0.0
        return corrupted

    # ------------------------------------------------------------------
    def finish(self, node: SensorNode) -> None:
        """Restore pristine component state at run end."""
        if self._node is not node or not self._pristine:
            return
        for idx, base in enumerate(self._pristine):
            if node.bank.states[idx].capacitor is not base:
                node.bank.swap_device(idx, base)
        self._applied_mults = tuple(
            (1.0, 1.0) for _ in range(len(self._pristine))
        )
        node.pmu.switch_locked = False
