"""Fault injection and robustness evaluation."""

from .faults import (
    IntermittentShading,
    PanelDegradation,
    SupplyGlitches,
    TraceFault,
    age_capacitor,
)
from .harness import FaultScenario, RobustnessRow, robustness_report
from .runtime import (
    FAULT_KINDS,
    RUNTIME_SCENARIOS,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    runtime_scenario,
)

__all__ = [
    "TraceFault",
    "PanelDegradation",
    "IntermittentShading",
    "SupplyGlitches",
    "age_capacitor",
    "FaultScenario",
    "RobustnessRow",
    "robustness_report",
    "FAULT_KINDS",
    "RUNTIME_SCENARIOS",
    "FaultWindow",
    "FaultPlan",
    "FaultInjector",
    "runtime_scenario",
]
