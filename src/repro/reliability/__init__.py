"""Fault injection, robustness evaluation and supervised execution."""

from .chaos import ChaosError, ChaosPlan, ChaosSpec
from .faults import (
    IntermittentShading,
    PanelDegradation,
    SupplyGlitches,
    TraceFault,
    age_capacitor,
)
from .harness import FaultScenario, RobustnessRow, robustness_report
from .runtime import (
    FAULT_KINDS,
    RUNTIME_SCENARIOS,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    runtime_scenario,
)
from .supervisor import (
    SupervisedResult,
    SupervisorError,
    SupervisorPolicy,
    TaskFailure,
    backoff_delay,
    supervised_map,
    supervised_traced_map,
)

__all__ = [
    "TraceFault",
    "PanelDegradation",
    "IntermittentShading",
    "SupplyGlitches",
    "age_capacitor",
    "FaultScenario",
    "RobustnessRow",
    "robustness_report",
    "FAULT_KINDS",
    "RUNTIME_SCENARIOS",
    "FaultWindow",
    "FaultPlan",
    "FaultInjector",
    "runtime_scenario",
    "ChaosError",
    "ChaosPlan",
    "ChaosSpec",
    "SupervisorPolicy",
    "SupervisedResult",
    "SupervisorError",
    "TaskFailure",
    "backoff_delay",
    "supervised_map",
    "supervised_traced_map",
]
