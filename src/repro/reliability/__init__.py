"""Fault injection and robustness evaluation."""

from .faults import (
    IntermittentShading,
    PanelDegradation,
    SupplyGlitches,
    TraceFault,
    age_capacitor,
)
from .harness import FaultScenario, RobustnessRow, robustness_report

__all__ = [
    "TraceFault",
    "PanelDegradation",
    "IntermittentShading",
    "SupplyGlitches",
    "age_capacitor",
    "FaultScenario",
    "RobustnessRow",
    "robustness_report",
]
