"""Robustness harness: replay schedulers under injected faults.

``robustness_report`` runs a set of schedulers on a clean trace and on
fault-degraded variants of it and reports the DMR deltas — how much of
each policy's margin survives dust, shading and glitches.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..obs import NULL_OBSERVER, Observer
from ..schedulers.base import Scheduler
from ..sim.engine import simulate
from ..solar.trace import SolarTrace
from ..node.node import SensorNode
from ..tasks.graph import TaskGraph
from .faults import TraceFault

__all__ = ["FaultScenario", "RobustnessRow", "robustness_report"]


@dataclasses.dataclass(frozen=True)
class FaultScenario:
    """A named stack of trace faults applied in order."""

    name: str
    faults: Sequence[TraceFault]
    seed: int = 0

    def degrade(self, trace: SolarTrace) -> SolarTrace:
        rng = np.random.default_rng(self.seed)
        for fault in self.faults:
            trace = fault.apply(trace, rng)
        return trace


@dataclasses.dataclass(frozen=True)
class RobustnessRow:
    """One (scheduler, scenario) outcome."""

    scheduler: str
    scenario: str
    dmr: float
    dmr_clean: float
    lost_energy_fraction: float

    @property
    def dmr_increase(self) -> float:
        return self.dmr - self.dmr_clean


def robustness_report(
    graph: TaskGraph,
    trace: SolarTrace,
    node_factory: Callable[[], SensorNode],
    scheduler_factories: Dict[str, Callable[[], Scheduler]],
    scenarios: Sequence[FaultScenario],
    observer: Observer = NULL_OBSERVER,
) -> List[RobustnessRow]:
    """Evaluate every scheduler on the clean trace and every scenario.

    ``scheduler_factories`` and ``node_factory`` are callables because
    schedulers and nodes carry state across a run — each cell of the
    report needs a fresh pair.  ``observer`` receives one
    ``fault_scenario`` event per degraded scenario so chaos sweeps
    show up on the same event bus as the runs they wrap.
    """
    clean_energy = trace.total_energy()
    clean_dmr: Dict[str, float] = {}
    rows: List[RobustnessRow] = []

    for name, make_scheduler in scheduler_factories.items():
        result = simulate(
            node_factory(), graph, trace, make_scheduler(), strict=False
        )
        clean_dmr[name] = result.dmr
        rows.append(
            RobustnessRow(
                scheduler=name,
                scenario="clean",
                dmr=result.dmr,
                dmr_clean=result.dmr,
                lost_energy_fraction=0.0,
            )
        )

    for scenario in scenarios:
        degraded = scenario.degrade(trace)
        lost = 1.0 - degraded.total_energy() / max(clean_energy, 1e-12)
        observer.fault_scenario(
            scenario=scenario.name,
            faults=tuple(type(f).__name__ for f in scenario.faults),
            lost_energy_fraction=lost,
        )
        for name, make_scheduler in scheduler_factories.items():
            result = simulate(
                node_factory(), graph, degraded, make_scheduler(),
                strict=False,
            )
            rows.append(
                RobustnessRow(
                    scheduler=name,
                    scenario=scenario.name,
                    dmr=result.dmr,
                    dmr_clean=clean_dmr[name],
                    lost_energy_fraction=lost,
                )
            )
    return rows
