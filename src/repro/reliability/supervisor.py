"""Supervised pooled execution: retries, timeouts, pool recovery.

:func:`repro.perf.parallel.parallel_map` assumes every task returns:
a raising task, a hung worker or a ``BrokenProcessPool`` kills the
whole map — and with it a multi-hour fleet run.  This module wraps the
same fan-out plan in a supervisor that treats those failures as the
normal operating regime, the way the batteryless-IoT literature treats
node death-and-resume:

- **bounded retries** — a raising task is re-dispatched up to
  ``max_retries`` times with *deterministic* seeded exponential
  backoff (:func:`backoff_delay` derives the jitter from a sha256 of
  ``(seed, index, attempt)``, never from wall-clock or a shared RNG,
  so two runs back off identically);
- **per-task timeouts** — a task that exceeds ``task_timeout`` seconds
  is charged an attempt and re-dispatched; the stuck worker cannot be
  cancelled cooperatively, so the pool is rebuilt and every *innocent*
  in-flight task is re-submitted without an attempt charge (straggler
  re-submission);
- **pool recovery** — a dying worker (``BrokenProcessPool``) rebuilds
  the pool and re-dispatches the in-flight tasks, each charged one
  attempt (this bounds a poison task that kills its worker every
  time);
- **structured failure** — a task that exhausts its retries becomes a
  :class:`TaskFailure` record; policy ``on_error="quarantine"`` keeps
  going and returns a *degraded* :class:`SupervisedResult`,
  ``on_error="fail"`` raises :class:`SupervisorError`.

Every supervisor action is emitted as a typed obs event with a
structured reason (``task_retry``, ``worker_lost``, ``shard_timeout``
plus the planner's ``pool_decision``), so ``repro obs summarize``
shows *why* a run degraded without reading logs.

Determinism contract: results land slotted by input index, retries
re-run pure functions, and failed slots are reported — a degraded map
over the same inputs yields bit-identical results for the surviving
subset whatever the worker count, interleaving or retry history.

When no timeout is configured and the planner picks serial mode, the
supervisor runs in-process with the same retry ladder and near-zero
overhead (one ``try`` per task) — supervision costs nothing on the
happy path.  Timeout enforcement requires process isolation, so a
configured ``task_timeout`` forces pool mode even for one worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..obs.trace import activate, collecting_tracer, current_tracer
from ..perf.parallel import plan_pool, resolve_workers

__all__ = [
    "ENV_MAX_RETRIES",
    "ENV_TASK_TIMEOUT",
    "SupervisedResult",
    "SupervisorError",
    "SupervisorPolicy",
    "TaskFailure",
    "backoff_delay",
    "supervised_map",
    "supervised_traced_map",
]

ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"

#: Floor of the poll interval in the pool loop: short enough that a
#: timeout is detected promptly, long enough not to busy-wait.
_MIN_WAIT_S = 0.02

T = TypeVar("T")
R = TypeVar("R")


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """How a supervised map handles failure.

    Parameters
    ----------
    max_retries:
        Re-dispatch attempts per task beyond the first (default 2).
    task_timeout:
        Per-task wall-clock budget in seconds; ``None`` (default)
        disables timeout enforcement.  Setting it forces pool mode —
        a hung task can only be abandoned from another process.
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff ladder: retry ``a`` of task ``i`` sleeps
        ``base * factor**a``, jittered deterministically from
        ``backoff_seed`` and capped at ``backoff_max`` seconds.
    backoff_seed:
        Seed of the deterministic jitter (no wall-clock, no shared
        RNG: two identical runs back off identically).
    on_error:
        ``"fail"`` (default) raises :class:`SupervisorError` when a
        task exhausts its retries; ``"quarantine"`` records a
        :class:`TaskFailure` and keeps going.
    """

    max_retries: int = 2
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    backoff_seed: int = 0
    on_error: str = "fail"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError(
                f"bad backoff ladder (base {self.backoff_base}, "
                f"factor {self.backoff_factor})"
            )
        if self.on_error not in ("fail", "quarantine"):
            raise ValueError(
                f"on_error must be 'fail' or 'quarantine', got "
                f"{self.on_error!r}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "SupervisorPolicy":
        """Policy with ``$REPRO_MAX_RETRIES``/``$REPRO_TASK_TIMEOUT``
        defaults; explicit keyword overrides win."""
        fields: Dict[str, object] = {}
        env_retries = os.environ.get(ENV_MAX_RETRIES)
        if env_retries:
            try:
                fields["max_retries"] = int(env_retries)
            except ValueError:
                raise ValueError(
                    f"{ENV_MAX_RETRIES} must be an integer, got "
                    f"{env_retries!r}"
                ) from None
        env_timeout = os.environ.get(ENV_TASK_TIMEOUT)
        if env_timeout:
            try:
                fields["task_timeout"] = float(env_timeout)
            except ValueError:
                raise ValueError(
                    f"{ENV_TASK_TIMEOUT} must be a number, got "
                    f"{env_timeout!r}"
                ) from None
        fields.update(overrides)
        return cls(**fields)


def backoff_delay(
    policy: SupervisorPolicy, index: int, attempt: int
) -> float:
    """Deterministic backoff before re-dispatching ``index``.

    ``base * factor**attempt`` jittered into ``[0.5x, 1.5x)`` by a
    sha256 of ``(seed, index, attempt)`` and capped at
    ``backoff_max`` — a pure function, so the retry schedule of a run
    is reproducible bit-for-bit from its seed.
    """
    if policy.backoff_base <= 0:
        return 0.0
    digest = hashlib.sha256(
        repr(("backoff", policy.backoff_seed, index, attempt)).encode()
    ).hexdigest()
    jitter = 0.5 + (int(digest[:8], 16) / 0x100000000)
    raw = policy.backoff_base * (policy.backoff_factor ** attempt) * jitter
    return min(policy.backoff_max, raw)


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retries (picklable, JSON-able)."""

    index: int
    label: str
    error_type: str
    message: str
    retries: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class SupervisorError(RuntimeError):
    """A supervised task failed permanently under ``on_error="fail"``."""

    def __init__(self, failures: Sequence[TaskFailure]) -> None:
        self.failures: List[TaskFailure] = list(failures)
        first = self.failures[0]
        extra = (
            f" (+{len(self.failures) - 1} more)"
            if len(self.failures) > 1
            else ""
        )
        super().__init__(
            f"task {first.index} ({first.label}) failed after "
            f"{first.retries} retr{'y' if first.retries == 1 else 'ies'}: "
            f"{first.error_type}: {first.message}{extra}"
        )


@dataclasses.dataclass
class SupervisedResult:
    """Outcome of one supervised map.

    ``results`` is slotted by input index with ``None`` at failed
    positions; ``failures`` lists the quarantined tasks; the counters
    summarise what the supervisor had to do.  ``degraded`` is True
    when any task was lost — the partial results are still
    deterministic over the surviving subset.
    """

    results: List[Optional[object]]
    failures: List[TaskFailure]
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _prepare(prepare, item, attempt):
    return item if prepare is None else prepare(item, attempt)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, abandoning any running task.

    ``shutdown`` alone joins running workers — which is exactly what a
    hung task never allows — so the worker processes are terminated
    first.  Touches executor internals; guarded so a layout change in
    a future stdlib degrades to a plain shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class _Supervisor:
    """State of one supervised map (shared by serial and pool paths)."""

    def __init__(
        self,
        fn: Callable,
        work: List,
        policy: SupervisorPolicy,
        labels: Sequence[str],
        observer,
        on_result,
        prepare,
    ) -> None:
        self.fn = fn
        self.work = work
        self.policy = policy
        self.labels = labels
        self.observer = observer
        self.on_result = on_result
        self.prepare = prepare
        self.results: List[Optional[object]] = [None] * len(work)
        self.failures: List[TaskFailure] = []
        self.retries = 0
        self.timeouts = 0
        self.rebuilds = 0
        # Re-dispatch entries charged outside the main queue (e.g. by
        # a BrokenProcessPool result), drained into it on rebuild.
        self._pending_charges: List[Tuple[int, int, float]] = []
        # Tasks whose retry budget was consumed entirely by pool
        # breaks: blame is unproven, so they get a solo probe instead
        # of a quarantine.
        self._suspects: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def _emit_retry(
        self, index: int, attempt: int, reason: str, error_type: str,
        delay: float,
    ) -> None:
        self.retries += 1
        if self.observer is not None:
            self.observer.task_retry(
                label=self.labels[index],
                index=index,
                attempt=attempt,
                reason=reason,
                error_type=error_type,
                backoff_s=delay,
            )

    def _fail(self, index: int, exc: BaseException, attempts: int) -> None:
        failure = TaskFailure(
            index=index,
            label=self.labels[index],
            error_type=type(exc).__name__,
            message=str(exc),
            retries=attempts,
        )
        self.failures.append(failure)
        if self.policy.on_error == "fail":
            raise SupervisorError([failure]) from exc

    def _land(self, index: int, result) -> None:
        self.results[index] = result
        if self.on_result is not None:
            self.on_result(index, result)

    def finish(self) -> SupervisedResult:
        self.failures.sort(key=lambda f: f.index)
        return SupervisedResult(
            results=self.results,
            failures=self.failures,
            retries=self.retries,
            timeouts=self.timeouts,
            pool_rebuilds=self.rebuilds,
        )

    # ------------------------------------------------------------------
    def run_serial(self) -> SupervisedResult:
        for index, item in enumerate(self.work):
            attempt = 0
            while True:
                try:
                    result = self.fn(_prepare(self.prepare, item, attempt))
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if attempt < self.policy.max_retries:
                        delay = backoff_delay(self.policy, index, attempt)
                        self._emit_retry(
                            index, attempt, "raised",
                            type(exc).__name__, delay,
                        )
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    self._fail(index, exc, attempt)
                    break
                else:
                    self._land(index, result)
                    break
        return self.finish()

    # ------------------------------------------------------------------
    def run_pool(self, workers: int) -> SupervisedResult:
        timeout = self.policy.task_timeout
        # (index, attempt, not-before) re-dispatch queue: backoff is a
        # deterministic *delay floor*, enforced without blocking the
        # tasks that are already healthy in flight.
        to_submit: deque = deque(
            (index, 0, 0.0) for index in range(len(self.work))
        )
        inflight: Dict[object, Tuple[int, int, Optional[float]]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while to_submit or inflight:
                now = time.monotonic()
                held: List[Tuple[int, int, float]] = []
                while to_submit:
                    index, attempt, not_before = to_submit.popleft()
                    if now < not_before:
                        held.append((index, attempt, not_before))
                        continue
                    payload = _prepare(
                        self.prepare, self.work[index], attempt
                    )
                    future = pool.submit(self.fn, payload)
                    deadline = (
                        time.monotonic() + timeout
                        if timeout is not None
                        else None
                    )
                    inflight[future] = (index, attempt, deadline)
                to_submit.extend(held)

                wait_for = None
                now = time.monotonic()
                deadlines = [
                    dl for (_, _, dl) in inflight.values() if dl is not None
                ]
                if held:
                    deadlines.append(min(nb for (_, _, nb) in held))
                if deadlines:
                    wait_for = max(_MIN_WAIT_S, min(deadlines) - now)
                if not inflight:
                    # Everything pending is backoff-held: just sleep it off.
                    if wait_for is not None:
                        time.sleep(wait_for)
                    continue

                done, _pending = wait(
                    set(inflight),
                    timeout=wait_for,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    index, attempt, _deadline = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._charge(index, attempt, "worker_lost")
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        if attempt < self.policy.max_retries:
                            delay = backoff_delay(
                                self.policy, index, attempt
                            )
                            self._emit_retry(
                                index, attempt, "raised",
                                type(exc).__name__, delay,
                            )
                            to_submit.append(
                                (index, attempt + 1,
                                 time.monotonic() + delay)
                            )
                        else:
                            self._fail(index, exc, attempt)
                    else:
                        self._land(index, result)

                if broken:
                    pool = self._rebuild(
                        pool, inflight, to_submit,
                        charge_all=True, reason="a worker process died",
                    )
                    continue

                if timeout is not None:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, _, dl) in inflight.items()
                        if dl is not None and now >= dl
                    ]
                    if expired:
                        for future in expired:
                            index, attempt, _dl = inflight.pop(future)
                            self.timeouts += 1
                            if self.observer is not None:
                                self.observer.shard_timeout(
                                    label=self.labels[index],
                                    index=index,
                                    attempt=attempt,
                                    timeout_s=timeout,
                                    reason=(
                                        "task exceeded its "
                                        f"{timeout:g}s budget; worker "
                                        "killed and task re-dispatched"
                                    ),
                                )
                            self._charge(index, attempt, "timeout",
                                         queue=to_submit)
                        pool = self._rebuild(
                            pool, inflight, to_submit,
                            charge_all=False,
                            reason="stuck worker killed after task "
                            "timeout",
                        )
            while self._suspects:
                index, attempt = self._suspects.pop(0)
                self._probe_solo(index, attempt, timeout)
        finally:
            _kill_pool(pool)
        return self.finish()

    def _probe_solo(
        self, index: int, attempt: int, timeout: Optional[float]
    ) -> None:
        """Run a pool-break suspect alone in a fresh one-worker pool.

        A lone task that breaks its own pool is definitively the
        killer and fails permanently; one that completes was
        collateral damage of a noisy neighbour and lands normally —
        so the quarantine set never depends on which tasks happened
        to share a pool with a crasher.
        """
        while True:
            probe = ProcessPoolExecutor(max_workers=1)
            try:
                future = probe.submit(
                    self.fn, _prepare(self.prepare, self.work[index], attempt)
                )
                try:
                    result = future.result(timeout=timeout)
                except BrokenProcessPool:
                    self.rebuilds += 1
                    if self.observer is not None:
                        self.observer.worker_lost(
                            label=self.labels[index],
                            inflight=1,
                            rebuilds=self.rebuilds,
                            reason="solo probe: worker died executing "
                            "this task in isolation",
                        )
                    self._fail(
                        index,
                        RuntimeError(
                            "worker process died executing this task "
                            "in isolation"
                        ),
                        attempt,
                    )
                    return
                except FuturesTimeout:
                    self.timeouts += 1
                    if self.observer is not None:
                        self.observer.shard_timeout(
                            label=self.labels[index],
                            index=index,
                            attempt=attempt,
                            timeout_s=timeout or 0.0,
                            reason="solo probe: task exceeded its "
                            "budget in isolation",
                        )
                    self._fail(
                        index,
                        RuntimeError(
                            f"exceeded the {timeout:g}s budget in "
                            "isolation"
                        ),
                        attempt,
                    )
                    return
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if attempt < self.policy.max_retries:
                        delay = backoff_delay(self.policy, index, attempt)
                        self._emit_retry(
                            index, attempt, "raised",
                            type(exc).__name__, delay,
                        )
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    self._fail(index, exc, attempt)
                    return
                else:
                    self._land(index, result)
                    return
            finally:
                _kill_pool(probe)

    def _charge(
        self, index: int, attempt: int, reason: str, queue=None
    ) -> None:
        """Charge one attempt to a task hit by a pool-level failure."""
        if attempt < self.policy.max_retries:
            delay = backoff_delay(self.policy, index, attempt)
            self._emit_retry(index, attempt, reason, "", delay)
            entry = (index, attempt + 1, time.monotonic() + delay)
            if queue is not None:
                queue.append(entry)
            else:
                self._pending_charges.append(entry)
        elif reason == "worker_lost":
            # A pool break cannot name the task that caused it, so a
            # task exhausted by breaks alone may be innocent collateral
            # of a neighbour's crashes.  Isolate blame with a solo run
            # instead of quarantining on circumstantial evidence.
            self._suspects.append((index, attempt + 1))
        else:
            self._fail(
                index,
                RuntimeError(
                    f"lost to {reason} on every allowed attempt"
                ),
                attempt,
            )

    def _rebuild(
        self, pool, inflight, to_submit, charge_all: bool, reason: str
    ):
        """Replace a broken/poisoned pool, re-queueing in-flight work.

        ``charge_all`` charges an attempt to every in-flight task (a
        broken pool cannot say which task killed it); otherwise the
        survivors are re-queued for free — they were merely sharing a
        pool with a hung task.
        """
        for future, (index, attempt, _dl) in list(inflight.items()):
            if future.done() and not future.cancelled():
                # Completed in the race window: keep the result.
                try:
                    self._land(index, future.result())
                    continue
                except Exception:
                    pass
            if charge_all:
                self._charge(index, attempt, "worker_lost")
            else:
                to_submit.append((index, attempt, 0.0))
        to_submit.extend(self._pending_charges)
        self._pending_charges = []
        inflight.clear()
        _kill_pool(pool)
        self.rebuilds += 1
        if self.observer is not None:
            self.observer.worker_lost(
                label=self.labels[0] if self.labels else "",
                inflight=len(to_submit),
                rebuilds=self.rebuilds,
                reason=f"pool rebuilt: {reason}",
            )
        return ProcessPoolExecutor(max_workers=pool._max_workers)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def supervised_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    policy: Optional[SupervisorPolicy] = None,
    n_workers: Optional[int] = None,
    observer=None,
    on_result: Optional[Callable[[int, R], None]] = None,
    assume_cpus: Optional[int] = None,
    prepare: Optional[Callable[[T, int], object]] = None,
    labels: Optional[Sequence[str]] = None,
    force_pool: bool = False,
) -> SupervisedResult:
    """:func:`~repro.perf.parallel.parallel_map` under supervision.

    Same contract — results slotted in input order, ``fn`` and items
    picklable, ``on_result`` fired per completion — plus the retry/
    timeout/pool-recovery ladder of ``policy`` (default
    :meth:`SupervisorPolicy.from_env`).

    ``prepare(item, attempt)`` (optional) maps an item to the payload
    actually dispatched, receiving the 0-based attempt number — this
    is how deterministic chaos harnesses inject first-attempt-only
    faults.  ``labels`` names tasks in events and failure records
    (defaults to the stringified index).  ``force_pool`` overrides the
    planner's serial fallback — required when the dispatched code may
    hang or kill its process (a configured ``task_timeout`` implies
    it).
    """
    work = list(items)
    policy = policy if policy is not None else SupervisorPolicy.from_env()
    label_list = (
        [str(l) for l in labels]
        if labels is not None
        else [str(i) for i in range(len(work))]
    )
    if len(label_list) != len(work):
        raise ValueError(
            f"{len(label_list)} labels for {len(work)} items"
        )
    requested = resolve_workers(n_workers)
    workers, mode, reason = plan_pool(
        requested, len(work), cpu_count=assume_cpus
    )
    if (
        mode == "serial"
        and work
        and (policy.task_timeout is not None or force_pool)
    ):
        # A hung task can only be abandoned — and a crashing one only
        # survived — from another process.
        workers = max(1, min(requested, len(work)))
        mode = "pool"
        reason = (
            "task timeout enforcement requires process isolation"
            if policy.task_timeout is not None
            else "caller requires process isolation"
        )
    if observer is not None:
        observer.pool_decision(
            requested=requested,
            cpu_count=(
                assume_cpus if assume_cpus is not None
                else (os.cpu_count() or 1)
            ),
            items=len(work),
            workers=workers,
            mode=mode,
            reason=reason,
        )
    supervisor = _Supervisor(
        fn, work, policy, label_list, observer, on_result, prepare
    )
    if mode == "serial":
        return supervisor.run_serial()
    return supervisor.run_pool(workers)


def _run_supervised_traced_item(payload):
    """Worker entry: rebuild the tracer, wrap the item in a span.

    Only a *successful* attempt returns its span records, so a retried
    task never emits duplicate spans — the deterministic span ids of
    the winning attempt are identical whichever attempt won.
    """
    fn, name, key, wire, item = payload
    tracer, records = collecting_tracer(wire)
    with activate(tracer):
        with tracer.span(name, key=key):
            result = fn(item)
    return result, records


def supervised_traced_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    name: str = "item",
    keys: Optional[Sequence[object]] = None,
    policy: Optional[SupervisorPolicy] = None,
    n_workers: Optional[int] = None,
    tracer=None,
    observer=None,
    on_result: Optional[Callable[[int, R], None]] = None,
    assume_cpus: Optional[int] = None,
) -> SupervisedResult:
    """:func:`supervised_map` that carries span context into workers.

    The supervised sibling of
    :func:`repro.perf.parallel.traced_map`: each item runs inside a
    ``name`` span keyed by ``keys[i]`` under the caller's active span,
    and the worker-side records of successful attempts are re-emitted
    here.  With no active tracer the span plumbing short-circuits.
    """
    work = list(items)
    tracer = tracer if tracer is not None else current_tracer()
    key_list = list(keys) if keys is not None else list(range(len(work)))
    if len(key_list) != len(work):
        raise ValueError(f"{len(key_list)} keys for {len(work)} items")
    labels = [str(k) for k in key_list]
    if not tracer.enabled:
        return supervised_map(
            fn, work, policy=policy, n_workers=n_workers,
            observer=observer, on_result=on_result,
            assume_cpus=assume_cpus, labels=labels,
        )
    wire = tracer.context().to_wire()
    payloads = [
        (fn, name, key, wire, item) for key, item in zip(key_list, work)
    ]

    def _relay(index: int, out) -> None:
        result, records = out
        for record in records:
            tracer.emit(record)
        if on_result is not None:
            on_result(index, result)

    sup = supervised_map(
        _run_supervised_traced_item, payloads, policy=policy,
        n_workers=n_workers, observer=observer, on_result=_relay,
        assume_cpus=assume_cpus, labels=labels,
    )
    sup.results = [
        (out[0] if out is not None else None) for out in sup.results
    ]
    return sup
