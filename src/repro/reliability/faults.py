"""Fault models for robustness studies.

Real deployments do not match the clean simulation: panels collect
dust and age, foliage or debris shades them intermittently, connectors
glitch, and super capacitors fade with cycling.  None of these appear
in the paper's evaluation, but a downstream user adopting the
scheduler needs to know how gracefully it degrades — so the repository
ships the standard fault models and a harness
(:mod:`repro.reliability.harness`) that replays any experiment under
them.

Trace-level faults transform a :class:`~repro.solar.trace.SolarTrace`
into a degraded one; component-level faults derive aged device models.
Everything is deterministic given a seed.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..solar.trace import SolarTrace

__all__ = [
    "TraceFault",
    "PanelDegradation",
    "IntermittentShading",
    "SupplyGlitches",
    "age_capacitor",
]


class TraceFault(abc.ABC):
    """A transformation degrading a solar trace."""

    @abc.abstractmethod
    def apply(self, trace: SolarTrace, rng: np.random.Generator) -> SolarTrace:
        """Return the degraded trace (the input is never mutated)."""

    def __call__(
        self, trace: SolarTrace, rng: np.random.Generator
    ) -> SolarTrace:
        return self.apply(trace, rng)


@dataclasses.dataclass(frozen=True)
class PanelDegradation(TraceFault):
    """Gradual output loss from dust accumulation / cell aging.

    Output is derated by ``rate_per_day`` compounding daily, starting
    from ``initial_factor`` (1.0 = pristine).  A month of desert dust
    at 0.5%/day costs ~14% of output — easily the difference between a
    schedulable and an unschedulable night.
    """

    rate_per_day: float = 0.005
    initial_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate_per_day < 1.0:
            raise ValueError(
                f"rate_per_day must be in [0, 1), got {self.rate_per_day}"
            )
        if not 0.0 < self.initial_factor <= 1.0:
            raise ValueError(
                f"initial_factor must be in (0, 1], got {self.initial_factor}"
            )

    def apply(self, trace: SolarTrace, rng: np.random.Generator) -> SolarTrace:
        days = trace.timeline.num_days
        factors = self.initial_factor * (1.0 - self.rate_per_day) ** np.arange(
            days
        )
        power = trace.power * factors[:, None, None]
        return SolarTrace(trace.timeline, power)


@dataclasses.dataclass(frozen=True)
class IntermittentShading(TraceFault):
    """Random shading episodes (foliage, wildlife, snow patches).

    Each day draws ``episodes_per_day`` (Poisson) episodes; an episode
    blocks ``depth`` of the panel for ``duration_slots`` consecutive
    slots starting at a random flat slot of the day.
    """

    episodes_per_day: float = 2.0
    duration_slots: int = 20
    depth: float = 0.8

    def __post_init__(self) -> None:
        if self.episodes_per_day < 0:
            raise ValueError("episodes_per_day must be >= 0")
        if self.duration_slots < 1:
            raise ValueError("duration_slots must be >= 1")
        if not 0.0 < self.depth <= 1.0:
            raise ValueError(f"depth must be in (0, 1], got {self.depth}")

    def apply(self, trace: SolarTrace, rng: np.random.Generator) -> SolarTrace:
        tl = trace.timeline
        power = trace.power.copy()
        slots_per_day = tl.slots_per_day
        for day in range(tl.num_days):
            flat_day = power[day].reshape(-1)
            for _ in range(int(rng.poisson(self.episodes_per_day))):
                start = int(rng.integers(slots_per_day))
                stop = min(start + self.duration_slots, slots_per_day)
                flat_day[start:stop] *= 1.0 - self.depth
            power[day] = flat_day.reshape(
                tl.periods_per_day, tl.slots_per_period
            )
        return SolarTrace(tl, power)


@dataclasses.dataclass(frozen=True)
class SupplyGlitches(TraceFault):
    """Transient supply dropouts (connector/MPPT glitches).

    Every slot independently drops to zero with ``probability``.
    """

    probability: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def apply(self, trace: SolarTrace, rng: np.random.Generator) -> SolarTrace:
        mask = rng.random(trace.power.shape) >= self.probability
        return SolarTrace(trace.timeline, trace.power * mask)


def age_capacitor(
    capacitor: SuperCapacitor,
    service_days: float,
    capacitance_fade_per_1000_days: float = 0.10,
    leak_growth_per_1000_days: float = 0.50,
) -> SuperCapacitor:
    """An end-of-service derated copy of a super capacitor.

    Electrochemical double-layer capacitors lose capacitance and gain
    leakage with time and cycling; datasheet end-of-life is typically
    -20% C.  The defaults fade 10% of C and grow leakage 50% per 1000
    days of service, linearly.
    """
    if service_days < 0:
        raise ValueError(f"service_days must be >= 0, got {service_days}")
    if capacitance_fade_per_1000_days < 0 or leak_growth_per_1000_days < 0:
        raise ValueError("fade/growth rates must be >= 0")
    fade = min(
        capacitance_fade_per_1000_days * service_days / 1000.0, 0.95
    )
    growth = leak_growth_per_1000_days * service_days / 1000.0
    return dataclasses.replace(
        capacitor,
        capacitance=capacitor.capacitance * (1.0 - fade),
        leak_coeff=capacitor.leak_coeff * (1.0 + growth),
    )
