"""Deterministic chaos for fleet execution: kills, hangs, poison.

:mod:`repro.reliability.runtime` injects faults *inside* the physics
of one node; this module injects faults into the **orchestration
layer** around a fleet run, to exercise the supervision path of
:mod:`repro.reliability.supervisor` end to end:

``poison``
    The selected nodes raise :class:`ChaosError` from
    ``simulate_node`` on *every* attempt — the supervisor must
    quarantine exactly these nodes and no others.
``hang``
    The selected nodes sleep ``hang_seconds`` on the **first attempt
    only** — long enough to trip a configured task timeout, after
    which the re-dispatched attempt completes normally.
``kill``
    Workers executing the selected shards call ``os._exit`` on the
    first attempt — a hard worker death the pool cannot catch — and
    the rebuilt pool's retry completes normally.

All three are materialised from a :class:`ChaosSpec` by seeded
sha256 draws (:meth:`ChaosSpec.plan`): the same spec over the same
fleet always poisons the same node ids and kills the same shards, so
a chaos run is as reproducible as a clean one.  First-attempt-only
kills and hangs make the *outcome* deterministic too — transient
faults always recover, poison always quarantines — which is what lets
CI assert an exact quarantine set and a bit-identical healthy-subset
fingerprint.

Kills and hangs require process isolation (``os._exit`` in-process
would take the parent down): the fleet runner forces pool mode
whenever a chaos plan is active.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Dict, FrozenSet, Optional, Sequence

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosSpec",
]


class ChaosError(RuntimeError):
    """Raised by a poisoned node — the injected 'engine bug'."""


def _draw(seed: int, salt: str, population: Sequence[int], k: int):
    """Pick ``k`` distinct members of ``population`` deterministically.

    Members are ranked by the sha256 of ``(seed, salt, member)`` —
    order-free, so the draw depends only on the seed and the
    population contents, never on iteration order.
    """
    k = min(k, len(population))
    if k <= 0:
        return frozenset()
    ranked = sorted(
        population,
        key=lambda m: hashlib.sha256(
            repr(("chaos", seed, salt, m)).encode()
        ).hexdigest(),
    )
    return frozenset(ranked[:k])


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """What to break, how much, under which seed.

    Parameters
    ----------
    seed:
        Seed of every selection draw.
    poison_nodes:
        Number of nodes whose simulation raises on every attempt.
    hang_nodes:
        Number of nodes that sleep ``hang_seconds`` on attempt 0.
    kill_shards:
        Number of shards whose first-attempt worker dies hard.
    hang_seconds:
        First-attempt sleep of a hung node (pick it above the task
        timeout to trip the straggler path).
    """

    seed: int = 0
    poison_nodes: int = 0
    hang_nodes: int = 0
    kill_shards: int = 0
    hang_seconds: float = 2.0

    def __post_init__(self) -> None:
        for field in ("poison_nodes", "hang_nodes", "kill_shards"):
            if getattr(self, field) < 0:
                raise ValueError(
                    f"{field} must be >= 0, got {getattr(self, field)}"
                )
        if self.hang_seconds < 0:
            raise ValueError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )

    @property
    def active(self) -> bool:
        return bool(
            self.poison_nodes or self.hang_nodes or self.kill_shards
        )

    def describe(self) -> Dict[str, object]:
        """Digest-stable description (mixed into shard cache keys so a
        chaos run never poisons the clean-run cache)."""
        return {
            "seed": self.seed,
            "poison_nodes": self.poison_nodes,
            "hang_nodes": self.hang_nodes,
            "kill_shards": self.kill_shards,
            "hang_seconds": self.hang_seconds,
        }

    def plan(
        self, node_ids: Sequence[int], n_shards: int
    ) -> "ChaosPlan":
        """Materialise the spec over a concrete fleet layout.

        Poison and hang draws are disjoint (a hung node that also
        raised would make the quarantine set timing-dependent).
        """
        poison = _draw(self.seed, "poison", node_ids, self.poison_nodes)
        hang_pool = [n for n in node_ids if n not in poison]
        hang = _draw(self.seed, "hang", hang_pool, self.hang_nodes)
        kills = _draw(
            self.seed, "kill", range(n_shards), self.kill_shards
        )
        return ChaosPlan(
            poison=poison,
            hang=hang,
            kill_shards=kills,
            hang_seconds=self.hang_seconds,
        )


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A materialised :class:`ChaosSpec`: concrete ids, ready to fire.

    Picklable — the plan rides into pool workers with the shard
    payload.
    """

    poison: FrozenSet[int] = frozenset()
    hang: FrozenSet[int] = frozenset()
    kill_shards: FrozenSet[int] = frozenset()
    hang_seconds: float = 2.0

    def on_shard_start(self, shard_index: int, attempt: int) -> None:
        """Fire a worker kill, first attempt only.

        ``os._exit`` skips every handler and finaliser — exactly the
        failure mode ``BrokenProcessPool`` reports.  Never called
        in-process: the runner forces pool mode under chaos.
        """
        if attempt == 0 and shard_index in self.kill_shards:
            os._exit(1)

    def on_node_start(self, node_id: int, attempt: int) -> None:
        """Fire a poison raise (every attempt) or hang (attempt 0)."""
        if node_id in self.poison:
            raise ChaosError(
                f"chaos: node {node_id} is poisoned (attempt {attempt})"
            )
        if attempt == 0 and node_id in self.hang:
            time.sleep(self.hang_seconds)


def maybe_plan(
    spec: Optional[ChaosSpec],
    node_ids: Sequence[int],
    n_shards: int,
) -> Optional[ChaosPlan]:
    """``spec.plan(...)`` when the spec is present and active."""
    if spec is None or not spec.active:
        return None
    return spec.plan(node_ids, n_shards)
