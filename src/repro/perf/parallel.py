"""Deterministic process-pool map over independent simulation cells.

The experiment grids (scheduler × day × seed × config) are
embarrassingly parallel: every cell builds its own node and scheduler
from picklable inputs and returns a picklable result.  This module
fans those cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the *results* — and therefore every downstream table and
fingerprint — identical to a serial run:

- the work list is materialised up front and mapped in order
  (``ProcessPoolExecutor.map`` preserves input order, whatever order
  the workers finish in);
- each cell carries its own seeds/config; nothing is derived from
  worker identity, scheduling order or wall-clock;
- ``n_workers <= 1`` short-circuits to a plain in-process loop, so the
  serial path stays the reference implementation.

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

ENV_WORKERS = "REPRO_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """Effective worker count: argument, ``$REPRO_WORKERS``, else 1."""
    if n_workers is None:
        env = os.environ.get(ENV_WORKERS)
        if env:
            try:
                n_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
    if n_workers is None or n_workers < 1:
        return 1
    return int(n_workers)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_workers: Optional[int] = None,
) -> List[R]:
    """``[fn(item) for item in items]``, fanned out over processes.

    Results come back in item order regardless of worker count, so a
    parallel run is a drop-in replacement for the serial loop.  ``fn``
    and every item must be picklable (module-level function, picklable
    arguments).  With one worker — or one item — no pool is created.
    """
    work = list(items)
    workers = min(resolve_workers(n_workers), len(work))
    if workers <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, work))
