"""Deterministic process-pool map over independent simulation cells.

The experiment grids (scheduler × day × seed × config) are
embarrassingly parallel: every cell builds its own node and scheduler
from picklable inputs and returns a picklable result.  This module
fans those cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the *results* — and therefore every downstream table and
fingerprint — identical to a serial run:

- the work list is materialised up front and results are reassembled
  in input order, whatever order the workers finish in;
- each cell carries its own seeds/config; nothing is derived from
  worker identity, scheduling order or wall-clock;
- the serial path stays the reference implementation, and the planner
  *falls back to it* whenever a pool cannot win: one effective worker,
  fewer than two items, or a host without spare cores
  (``os.cpu_count()``).  Spawning four processes on a single-core box
  is how the old code turned "parallel" into a 0.77x slowdown.

Every fan-out decision can be recorded as a ``pool_decision`` obs
event (pass an ``observer``), and span context propagates through
:func:`traced_map` so worker-side spans reassemble under the caller's
span tree.

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..obs.trace import activate, collecting_tracer, current_tracer

__all__ = ["parallel_map", "plan_pool", "resolve_workers", "traced_map"]

ENV_WORKERS = "REPRO_WORKERS"

#: Below this many items a pool's startup cost cannot amortise.
MIN_POOL_ITEMS = 2

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """Effective worker count: argument, ``$REPRO_WORKERS``, else 1."""
    if n_workers is None:
        env = os.environ.get(ENV_WORKERS)
        if env:
            try:
                n_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
    if n_workers is None or n_workers < 1:
        return 1
    return int(n_workers)


def plan_pool(
    requested: int, n_items: int, cpu_count: Optional[int] = None
) -> Tuple[int, str, str]:
    """Adaptive fan-out plan: ``(workers, mode, reason)``.

    ``mode`` is ``"pool"`` or ``"serial"``.  The pool engages only
    when it can plausibly win: more than one worker requested, at
    least :data:`MIN_POOL_ITEMS` items, and more than one CPU — the
    worker count is capped at both the item count and the host's
    cores.  ``cpu_count`` overrides ``os.cpu_count()`` for tests.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if requested <= 1:
        return 1, "serial", "one worker requested"
    if n_items < MIN_POOL_ITEMS:
        return 1, "serial", f"only {n_items} item(s)"
    if cpus <= 1:
        return 1, "serial", f"host has {cpus} cpu(s); a pool cannot win"
    workers = min(requested, n_items, cpus)
    if workers <= 1:
        return 1, "serial", "effective worker count is 1"
    return (
        workers,
        "pool",
        f"min(requested {requested}, items {n_items}, cpus {cpus})",
    )


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_workers: Optional[int] = None,
    observer=None,
    on_result: Optional[Callable[[int, R], None]] = None,
    assume_cpus: Optional[int] = None,
) -> List[R]:
    """``[fn(item) for item in items]``, fanned out over processes.

    Results come back in item order regardless of worker count, so a
    parallel run is a drop-in replacement for the serial loop.  ``fn``
    and every item must be picklable (module-level function, picklable
    arguments).

    ``on_result(index, result)`` fires in the parent process as each
    item *completes* (completion order in pool mode, input order in
    serial mode) — this is what live progress surfaces hang off.
    ``observer`` records the fan-out decision as a ``pool_decision``
    event; ``assume_cpus`` overrides the detected core count (tests).
    """
    work = list(items)
    requested = resolve_workers(n_workers)
    workers, mode, reason = plan_pool(
        requested, len(work), cpu_count=assume_cpus
    )
    if observer is not None:
        observer.pool_decision(
            requested=requested,
            cpu_count=(
                assume_cpus if assume_cpus is not None
                else (os.cpu_count() or 1)
            ),
            items=len(work),
            workers=workers,
            mode=mode,
            reason=reason,
        )
    if mode == "serial":
        results: List[R] = []
        for index, item in enumerate(work):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    slots: List[Optional[R]] = [None] * len(work)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(fn, item): index for index, item in enumerate(work)
        }
        for future in as_completed(futures):
            index = futures[future]
            result = future.result()
            slots[index] = result
            if on_result is not None:
                on_result(index, result)
    return slots  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Span propagation through the pool
# ----------------------------------------------------------------------
def _run_traced_item(payload):
    """Worker entry: rebuild the tracer, wrap the item in a span."""
    fn, name, key, wire, item = payload
    tracer, records = collecting_tracer(wire)
    with activate(tracer):
        with tracer.span(name, key=key):
            result = fn(item)
    return result, records


def traced_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    name: str = "item",
    keys: Optional[Sequence[object]] = None,
    n_workers: Optional[int] = None,
    tracer=None,
    observer=None,
    on_result: Optional[Callable[[int, R], None]] = None,
    assume_cpus: Optional[int] = None,
) -> List[R]:
    """:func:`parallel_map` that carries span context into workers.

    Each item runs inside a ``name`` span keyed by ``keys[i]`` (item
    index by default) and parented at the caller's active span; the
    worker-side records come back with the results and are re-emitted
    here, so the trace reassembles into one tree.  With no active
    tracer this is exactly :func:`parallel_map`.
    """
    work = list(items)
    tracer = tracer if tracer is not None else current_tracer()
    if not tracer.enabled:
        return parallel_map(
            fn, work, n_workers=n_workers, observer=observer,
            on_result=on_result, assume_cpus=assume_cpus,
        )
    wire = tracer.context().to_wire()
    key_list = list(keys) if keys is not None else list(range(len(work)))
    if len(key_list) != len(work):
        raise ValueError(
            f"{len(key_list)} keys for {len(work)} items"
        )
    payloads = [
        (fn, name, key, wire, item) for key, item in zip(key_list, work)
    ]

    def _relay(index: int, out) -> None:
        result, records = out
        for record in records:
            tracer.emit(record)
        if on_result is not None:
            on_result(index, result)

    outs = parallel_map(
        _run_traced_item, payloads, n_workers=n_workers,
        observer=observer, on_result=_relay, assume_cpus=assume_cpus,
    )
    return [result for result, _records in outs]
