"""Performance layer: artifact cache, parallel runner, benchmarks.

``repro.perf`` keeps the reproduction fast without touching its
numerics:

- :mod:`repro.perf.cache` — content-addressed disk cache for the
  expensive offline artifacts (trained DBN policies and everything
  bundled with them: sized capacitor banks, LUT samples, solar-class
  centroids);
- :mod:`repro.perf.parallel` — deterministic process-pool map over
  independent simulation cells;
- :mod:`repro.perf.bench` — the ``repro bench`` perf-regression
  harness behind ``BENCH_perf.json``.
"""

from .cache import (
    ArtifactCache,
    cache_enabled,
    default_cache,
    default_cache_dir,
    hash_key,
)
from .parallel import parallel_map, resolve_workers

__all__ = [
    "ArtifactCache",
    "cache_enabled",
    "default_cache",
    "default_cache_dir",
    "hash_key",
    "parallel_map",
    "resolve_workers",
]
