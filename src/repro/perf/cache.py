"""Content-addressed disk cache for expensive offline artifacts.

The offline stage (capacitor sizing, the long-term DP, RBM pretraining
and backprop fine-tuning) costs orders of magnitude more than the
simulations it feeds, yet its output is a pure function of the task
graph, the pipeline hyper-parameters and the training trace.  This
module stores those artifacts on disk under a sha256 of exactly that
input description, so a second experiment run — same process or not —
loads the trained policy instead of retraining it.

Keys are *content-addressed*: any change to the task set, the trace
bytes, an epoch count or the cache schema version produces a different
digest, so stale entries are never returned — they are merely never hit
again.  Explicit invalidation (``repro cache clear``) only reclaims
disk space.

Environment knobs:

- ``REPRO_CACHE_DIR`` — cache root (default ``.repro-cache`` in the
  working directory);
- ``REPRO_NO_CACHE`` — any non-empty value disables the disk cache
  (same effect as the CLI ``--no-cache`` flag).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

logger = logging.getLogger(__name__)

__all__ = [
    "CACHE_VERSION",
    "ArtifactCache",
    "cache_enabled",
    "default_cache",
    "default_cache_dir",
    "describe_graph",
    "describe_timeline",
    "hash_key",
    "trace_digest",
]

#: Bump to invalidate every previously written artifact (schema change).
CACHE_VERSION = 1

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the cwd."""
    env = os.environ.get(ENV_CACHE_DIR)
    return Path(env) if env else Path(".repro-cache")


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a non-empty value."""
    return not os.environ.get(ENV_NO_CACHE)


# ----------------------------------------------------------------------
# Key construction
# ----------------------------------------------------------------------
def _jsonify(obj: Any) -> Any:
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing")


def hash_key(parts: Dict[str, Any]) -> str:
    """sha256 over a canonical JSON encoding of ``parts``.

    The schema version is mixed in so a layout change invalidates all
    prior entries.  Values must be JSON-representable (numpy scalars
    and arrays are converted).
    """
    payload = json.dumps(
        {"cache_version": CACHE_VERSION, **parts},
        sort_keys=True,
        separators=(",", ":"),
        default=_jsonify,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def describe_graph(graph) -> Dict[str, Any]:
    """Canonical description of a :class:`~repro.tasks.graph.TaskGraph`."""
    tasks = graph.tasks
    return {
        "name": graph.name,
        "tasks": [
            [t.name, t.execution_time, t.deadline, t.power, t.nvp]
            for t in tasks
        ],
        "edges": [
            [tasks[p].name, tasks[i].name]
            for i in range(len(tasks))
            for p in graph.predecessors(i)
        ],
    }


def describe_timeline(timeline) -> Dict[str, Any]:
    """Canonical description of a :class:`~repro.timeline.Timeline`."""
    return {
        "num_days": timeline.num_days,
        "periods_per_day": timeline.periods_per_day,
        "slots_per_period": timeline.slots_per_period,
        "slot_seconds": timeline.slot_seconds,
    }


def trace_digest(trace) -> Dict[str, Any]:
    """Timeline shape plus a sha256 of the trace's power bytes."""
    power = np.ascontiguousarray(trace.power)
    return {
        "timeline": describe_timeline(trace.timeline),
        "power_sha256": hashlib.sha256(power.tobytes()).hexdigest(),
    }


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------
class ArtifactCache:
    """Pickle store addressed by ``(kind, sha256 digest)``.

    ``kind`` namespaces artifact types into subdirectories (``policy``
    for trained policies today; anything picklable works).  Writes are
    atomic (tmp file + rename) so concurrent experiment processes can
    share one cache; corrupt or unreadable entries are treated as
    misses and removed.

    The cache is an accelerator, never a dependency: a write that
    fails with :class:`OSError` (read-only mount, full disk, a
    ``REPRO_CACHE_DIR`` that is not a directory) is logged, counted in
    ``write_failures``, surfaced as a ``cache_write_failed`` obs event
    when an ``observer`` is attached — and the run continues exactly
    as if caching were disabled.
    """

    def __init__(self, root: Optional[Path] = None, observer=None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.observer = observer
        #: OSError-swallowed writes this process (each one a miss on
        #: the next read, never a crash).
        self.write_failures = 0

    def path_for(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}.pkl"

    def get(self, kind: str, digest: str) -> Optional[Any]:
        """The cached object, or None on a miss."""
        path = self.path_for(kind, digest)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # A truncated write from a killed process: drop and retrain.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, kind: str, digest: str, obj: Any) -> Optional[Path]:
        """Atomically store ``obj``; returns the entry path.

        An :class:`OSError` anywhere in the write path degrades to a
        logged no-op returning ``None``: the entry is simply not
        cached.  Pickling errors still raise — an unpicklable artifact
        is a caller bug, not an environment fault.
        """
        path = self.path_for(kind, digest)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as exc:
            self.write_failures += 1
            logger.warning(
                "cache write failed for %s/%s (%s); continuing uncached",
                kind, digest[:12], exc,
            )
            if self.observer is not None:
                self.observer.cache_write_failed(
                    artifact_kind=kind,
                    digest=digest,
                    reason=f"{type(exc).__name__}: {exc}",
                )
            return None
        finally:
            try:
                if tmp.exists():
                    tmp.unlink()
            except OSError:
                pass
        return path

    def clear(self, kind: Optional[str] = None) -> int:
        """Remove every entry (of one kind, or all); returns the count."""
        removed = 0
        roots = [self.root / kind] if kind else [self.root]
        for root in roots:
            if not root.is_dir():
                continue
            for entry in sorted(root.rglob("*.pkl")):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def info(self) -> Dict[str, Any]:
        """Per-kind entry counts and byte totals for ``repro cache info``."""
        kinds: Dict[str, Dict[str, int]] = {}
        if self.root.is_dir():
            for sub in sorted(p for p in self.root.iterdir() if p.is_dir()):
                entries = list(sub.glob("*.pkl"))
                kinds[sub.name] = {
                    "entries": len(entries),
                    "bytes": sum(e.stat().st_size for e in entries),
                }
        return {"root": str(self.root), "kinds": kinds}


def default_cache() -> ArtifactCache:
    """An :class:`ArtifactCache` rooted at :func:`default_cache_dir`."""
    return ArtifactCache()
