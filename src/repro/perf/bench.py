"""The ``repro bench`` perf-regression harness.

Times the three things this reproduction spends wall-clock on —

- the per-slot simulation loop (slots/sec on the fig-8 workload:
  WAM, intra-task, one canonical solar day),
- the offline stage (cold train vs a disk-cache hit),
- an end-to-end evaluation suite, serial vs the parallel runner
  (the fig-9 monthly sweep in full mode),
- fleet throughput (nodes/s) through both shard executors: the scalar
  per-node engine and the batched node-major engine, with the batch
  speedup vs per-node reported from the same run,

— and writes the numbers to ``BENCH_perf.json`` so the perf trajectory
is tracked PR-over-PR.  :func:`compare_to_baseline` implements the CI
gate: the current slot-loop throughput must stay within a tolerance of
the committed baseline.

The phase breakdown comes from the existing ``obs.profile`` spans
(``coarse_hook`` / ``slot_loop`` / ``leakage_update``); the headline
slots/sec is measured on an *unobserved* run, the configuration the
experiments actually use.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "run_bench",
    "compare_to_baseline",
    "write_report",
    "append_history",
    "render_history",
    "BENCH_VERSION",
    "HISTORY_PATH",
]

BENCH_VERSION = 1

#: Default report location (repo root when run from there).
DEFAULT_REPORT = "BENCH_perf.json"

#: Trend store: one JSON line per bench run, appended over time.
HISTORY_PATH = ".benchmarks/history.jsonl"

#: CI gate: fail when slot throughput drops by more than this fraction.
DEFAULT_MAX_REGRESSION = 0.30


def _bench_slot_loop(quick: bool) -> Dict[str, Any]:
    """Slots/sec of the fig-8 workload; phase totals from obs.profile."""
    from .. import quick_node
    from ..obs import Observer
    from ..schedulers import IntraTaskScheduler
    from ..sim.engine import simulate
    from ..solar import four_day_trace
    from ..tasks import paper_benchmarks
    from ..timeline import Timeline

    timeline = Timeline(
        num_days=4, periods_per_day=144, slots_per_period=20,
        slot_seconds=30.0,
    )
    graph = paper_benchmarks()["WAM"]
    trace = four_day_trace(timeline).day_slice(0)
    repeats = 1 if quick else 3

    # Headline number: the unobserved configuration (NULL_OBSERVER),
    # best of ``repeats`` to shave scheduler-noise.
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        simulate(
            quick_node(graph), graph, trace, IntraTaskScheduler(),
            strict=False,
        )
        best = min(best, time.perf_counter() - t0)
    slots = trace.timeline.total_slots

    # Phase breakdown: one observed run through the same workload.
    observer = Observer()
    simulate(
        quick_node(graph), graph, trace, IntraTaskScheduler(),
        strict=False, observer=observer,
    )
    phases = observer.profiler.snapshot()

    return {
        "workload": "fig8/WAM/intra-task/canonical-day1",
        "slots": slots,
        "seconds": best,
        "slots_per_sec": slots / best,
        "phases": phases,
    }


def _bench_offline(quick: bool) -> Dict[str, Any]:
    """Cold offline-stage training vs a disk-cache hit."""
    import shutil
    import tempfile

    from ..core.offline import OfflinePipeline
    from ..experiments.common import training_trace
    from ..tasks import paper_benchmarks
    from .cache import ArtifactCache

    graph = paper_benchmarks()["WAM"]
    train_days = 2 if quick else 4
    epochs = 5 if quick else 40
    pipe = OfflinePipeline(graph, finetune_epochs=epochs)
    trace = training_trace(train_days)

    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cache = ArtifactCache(tmp)
        t0 = time.perf_counter()
        pipe.run(trace, cache=cache)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        pipe.run(trace, cache=cache)
        cached = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "workload": f"offline/WAM/{train_days}d/{epochs}ep",
        "cold_seconds": cold,
        "cached_seconds": cached,
        "cache_speedup": cold / max(cached, 1e-9),
    }


def _bench_parallel(quick: bool, workers: int) -> Dict[str, Any]:
    """Serial vs parallel evaluation suite (fig-9 sweep in full mode)."""
    from ..experiments.common import (
        default_timeline,
        evaluation_suite,
        train_policy,
    )
    from ..solar import four_day_trace, synthetic_trace
    from ..tasks import paper_benchmarks

    graph = paper_benchmarks()["WAM"]
    if quick:
        policy = train_policy(graph, train_days=2, finetune_epochs=5)
        trace = four_day_trace(default_timeline(4)).day_slice(1)
        workload = "suite/WAM/canonical-day2"
    else:
        policy = train_policy(graph)
        trace = synthetic_trace(default_timeline(60), seed=2016)
        workload = "fig9/WAM/60d/seed2016"

    t0 = time.perf_counter()
    evaluation_suite(graph, trace, policy, n_workers=1)
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    evaluation_suite(graph, trace, policy, n_workers=workers)
    parallel = time.perf_counter() - t0
    return {
        "workload": workload,
        "workers": workers,
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "speedup": serial / max(parallel, 1e-9),
    }


def _bench_fleet(quick: bool) -> Dict[str, Any]:
    """Fleet throughput (nodes/s) on a small heterogeneous population.

    Serial and checkpoint-free on purpose: the number tracks raw
    per-node simulation cost, not pool scaling or cache luck.  The
    aggregate fingerprint rides along so a perf report doubles as a
    determinism witness.
    """
    from ..fleet import FleetRunner, FleetSpec

    n_nodes = 16 if quick else 64
    spec = FleetSpec(n_nodes=n_nodes, seed=0)
    t0 = time.perf_counter()
    result = FleetRunner(
        spec, workers=1, cache=False, engine="per-node"
    ).run()
    seconds = time.perf_counter() - t0
    return {
        "workload": f"fleet/{n_nodes}n/1d/seed0/per-node",
        "nodes": n_nodes,
        "seconds": seconds,
        "nodes_per_sec": n_nodes / seconds,
        "fingerprint": result.fingerprint(),
    }


def _bench_fleet_batch(
    quick: bool, per_node_nodes_per_sec: float
) -> Dict[str, Any]:
    """Fleet throughput through the batched node-major engine.

    One whole-fleet shard (``shard_size=n_nodes``) so the number
    measures the vectorized core, not shard bookkeeping.  The fleet is
    larger than the per-node benchmark's — batching amortizes per-slot
    numpy dispatch over the batch width, so throughput keeps rising
    with node count — and the reported ``speedup_vs_per_node`` divides
    by the per-node engine's nodes/s from the same bench run.
    """
    from ..fleet import FleetRunner, FleetSpec

    n_nodes = 256 if quick else 1024
    spec = FleetSpec(n_nodes=n_nodes, seed=0)
    t0 = time.perf_counter()
    result = FleetRunner(
        spec, workers=1, shard_size=n_nodes, cache=False, engine="batch"
    ).run()
    seconds = time.perf_counter() - t0
    nodes_per_sec = n_nodes / seconds
    return {
        "workload": f"fleet/{n_nodes}n/1d/seed0/batch",
        "nodes": n_nodes,
        "seconds": seconds,
        "nodes_per_sec": nodes_per_sec,
        "speedup_vs_per_node": (
            nodes_per_sec / per_node_nodes_per_sec
            if per_node_nodes_per_sec > 0
            else 0.0
        ),
        "fingerprint": result.fingerprint(),
    }


def run_bench(quick: bool = False, workers: int = 4) -> Dict[str, Any]:
    """Run the full harness; returns the report dict."""
    report: Dict[str, Any] = {
        "version": BENCH_VERSION,
        "quick": quick,
        # Parallel-suite speedup is bounded by the host's core count;
        # record it so a 1x on a single-core box reads as expected,
        # not as a regression (the baseline gate ignores it anyway).
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
        },
        "benchmarks": {
            "slot_loop": _bench_slot_loop(quick),
            "offline_training": _bench_offline(quick),
            "parallel_suite": _bench_parallel(quick, workers),
            "fleet": _bench_fleet(quick),
        },
    }
    fleet = report["benchmarks"]["fleet"]
    report["benchmarks"]["fleet_batch"] = _bench_fleet_batch(
        quick, fleet["nodes_per_sec"]
    )
    return report


def write_report(report: Dict[str, Any], path=DEFAULT_REPORT) -> Path:
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def append_history(report: Dict[str, Any], path=HISTORY_PATH) -> Path:
    """Append one summary line for ``report`` to the trend store.

    The store is a JSONL file (one bench run per line) so trends
    survive across checkouts and CI runs; only the headline numbers
    are kept, not the full phase breakdowns.
    """
    bench = report["benchmarks"]
    entry = {
        "schema": BENCH_VERSION,
        "unix_time": time.time(),
        "quick": report.get("quick", False),
        "cpu_count": report.get("host", {}).get("cpu_count"),
        "slots_per_sec": bench["slot_loop"]["slots_per_sec"],
        "cache_speedup": bench["offline_training"]["cache_speedup"],
        "parallel_speedup": bench["parallel_suite"]["speedup"],
        "fleet_nodes_per_sec": bench["fleet"]["nodes_per_sec"],
        "fleet_fingerprint": bench["fleet"]["fingerprint"],
    }
    if "fleet_batch" in bench:
        entry["fleet_batch_nodes_per_sec"] = (
            bench["fleet_batch"]["nodes_per_sec"]
        )
        entry["fleet_batch_speedup"] = (
            bench["fleet_batch"]["speedup_vs_per_node"]
        )
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return out


def render_history(path=HISTORY_PATH) -> str:
    """Human-readable trend table over the history store.

    Streams the store through a :class:`~repro.obs.sketch.P2Quantile`
    so the median line works on arbitrarily long histories without
    holding them in memory.
    """
    from ..obs.sketch import P2Quantile

    src = Path(path)
    if not src.exists():
        return f"no bench history at {src}"
    median = P2Quantile(0.5)
    rows: List[Dict[str, Any]] = []
    with src.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            median.add(float(entry.get("slots_per_sec", 0.0)))
            rows.append(entry)
    if not rows:
        return f"no bench history at {src}"
    lines = [
        f"bench history: {len(rows)} run(s) from {src}",
        f"{'when (unix)':>14}  {'quick':>5}  {'slots/s':>10}  "
        f"{'cache x':>8}  {'par x':>6}  {'fleet n/s':>10}  "
        f"{'batch n/s':>10}",
    ]
    for entry in rows[-20:]:
        lines.append(
            f"{entry.get('unix_time', 0):>14.0f}  "
            f"{str(bool(entry.get('quick'))):>5}  "
            f"{entry.get('slots_per_sec', 0):>10.0f}  "
            f"{entry.get('cache_speedup', 0):>8.1f}  "
            f"{entry.get('parallel_speedup', 0):>6.2f}  "
            f"{entry.get('fleet_nodes_per_sec', 0):>10.2f}  "
            f"{entry.get('fleet_batch_nodes_per_sec', 0):>10.1f}"
        )
    latest = rows[-1].get("slots_per_sec", 0.0)
    med = median.estimate(latest)
    delta = 100.0 * (latest / med - 1.0) if med else 0.0
    lines.append(
        f"slot-loop median {med:.0f} slots/s over {len(rows)} run(s); "
        f"latest {latest:.0f} ({delta:+.1f}% vs median)"
    )
    return "\n".join(lines)


def compare_to_baseline(
    report: Dict[str, Any],
    baseline_path,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> List[str]:
    """Regression check against a committed baseline report.

    Only the slot-loop throughput gates (cache/parallel numbers vary
    too much with machine load); returns human-readable failures,
    empty when the current run is acceptable.  A missing baseline is
    not a failure — there is nothing to regress against.
    """
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text())
    failures: List[str] = []
    try:
        base_tp = baseline["benchmarks"]["slot_loop"]["slots_per_sec"]
    except (KeyError, TypeError):
        return [f"baseline {baseline_path} has no slot_loop throughput"]
    cur_tp = report["benchmarks"]["slot_loop"]["slots_per_sec"]
    floor = base_tp * (1.0 - max_regression)
    if cur_tp < floor:
        failures.append(
            f"slot-loop throughput regressed: {cur_tp:.0f} slots/s vs "
            f"baseline {base_tp:.0f} (floor {floor:.0f}, "
            f"-{100 * (1 - cur_tp / base_tp):.1f}%)"
        )
    return failures
