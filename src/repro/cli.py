"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available benchmarks, schedulers and experiments.
``simulate``
    Run one scheduler on one benchmark over a chosen trace and print
    the headline metrics; ``--trace`` writes a JSONL event log,
    ``--profile`` prints per-phase timings, ``--manifest`` writes a
    run-provenance manifest.
``experiment``
    Run one of the paper's table/figure reproductions and print it;
    ``--results-dir`` persists the table plus its run manifest.
``obs``
    Observability utilities; ``obs summarize trace.jsonl`` renders
    event counts and per-phase timings from a trace file;
    ``obs trace trace.jsonl`` reassembles the span records into the
    hierarchical call tree with total/self wall-clock per span and
    the hot-span table (``--check`` exits 6 unless the tree is a
    single root with no orphans).
``export-trace``
    Write a synthetic solar trace as a MIDC-style CSV.
``bench``
    Run the perf-regression harness and write ``BENCH_perf.json``;
    ``--baseline`` gates against a committed report (exit code 5 on a
    regression), ``--quick`` is the CI smoke configuration.
``cache``
    Offline-artifact cache utilities: ``cache info`` shows the entry
    counts and sizes, ``cache clear`` removes cached artifacts.
``verify``
    Run the conformance suite (physics invariants, differential
    oracles, metamorphic relations) at ``--level smoke|quick|deep``;
    exits 6 with a violation summary when a check fails.
    ``--update-fingerprints`` regenerates the committed engine
    reference digests instead of verifying.
``fleet``
    Fleet-scale simulation: ``fleet run --nodes N --seed S`` simulates
    N heterogeneous nodes sharing one base solar trace and prints the
    population report plus the deterministic aggregate fingerprint
    (bit-identical for any ``--workers``/``--shard-size`` and for
    ``--engine batch`` vs ``--engine per-node``);
    ``fleet report result.json`` re-renders a saved ``--out`` file.
    Execution is supervised: ``--max-retries``/``--task-timeout``
    bound failures, ``--on-node-error quarantine`` (default) completes
    degraded with exit code 7 when nodes had to be quarantined
    (``fail`` aborts with exit code 4 instead), ``--chaos-*`` flags
    inject deterministic worker kills/hangs/poison nodes for drills,
    and ``--exclude-nodes`` reruns the healthy subset of a degraded
    run.  Ctrl-C terminates the pool, flushes event sinks and stamps
    the manifest ``interrupted: true`` (exit code 130).

A global ``--log-level`` (default WARNING) configures stdlib logging
for every command.  ``experiment --workers N`` fans independent
simulations over N processes; ``experiment --no-cache`` disables the
offline-artifact disk cache for the run.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from . import quick_node
from .obs import (
    JsonlSink,
    Observer,
    build_manifest,
    summarize_jsonl,
    timeline_dict,
)
from .reliability import RUNTIME_SCENARIOS, FaultInjector, runtime_scenario
from .reliability.supervisor import SupervisorError
from .schedulers import (
    DVFSLoadMatchingScheduler,
    GreedyEDFScheduler,
    InterTaskScheduler,
    IntraTaskScheduler,
)
from .sim import (
    CheckpointConfig,
    CheckpointError,
    SimulationInterrupted,
    latest_checkpoint,
    result_fingerprint,
)
from .fleet.spec import FLEET_POLICIES
from .sim.engine import InvalidDecisionError, simulate
from .solar import four_day_trace, synthetic_trace
from .solar.dataset import MIDCFormatError, write_midc_csv
from .tasks import paper_benchmarks
from .timeline import Timeline

__all__ = ["main", "build_parser"]

_LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")

logger = logging.getLogger(__name__)

_SCHEDULERS: Dict[str, Callable] = {
    "asap": GreedyEDFScheduler,
    "inter-task": InterTaskScheduler,
    "intra-task": IntraTaskScheduler,
    "dvfs": DVFSLoadMatchingScheduler,
}

_EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "table2",
    "fig8",
    "fig9",
    "fig10a",
    "fig10b",
    "overhead",
    "fleet",
)


def _timeline(days: int) -> Timeline:
    return Timeline(
        num_days=days, periods_per_day=144, slots_per_period=20,
        slot_seconds=30.0,
    )


def _trace(days: int, seed: int):
    if days == 4 and seed == 0:
        return four_day_trace(_timeline(4))
    return synthetic_trace(_timeline(days), seed=seed or 2016)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC'15 solar-node deadline-aware scheduling "
        "reproduction",
    )
    parser.add_argument(
        "--log-level",
        default="WARNING",
        choices=_LOG_LEVELS,
        help="stdlib logging level (default WARNING)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list benchmarks/schedulers/experiments")

    sim = commands.add_parser("simulate", help="run one scheduler")
    sim.add_argument(
        "--benchmark", default="WAM", choices=sorted(paper_benchmarks())
    )
    sim.add_argument(
        "--scheduler", default="intra-task", choices=sorted(_SCHEDULERS)
    )
    sim.add_argument("--days", type=int, default=4)
    sim.add_argument(
        "--seed", type=int, default=0,
        help="weather seed (0 + 4 days = the paper's canonical days)",
    )
    sim.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL event trace of the run to PATH",
    )
    sim.add_argument(
        "--profile", action="store_true",
        help="print per-phase engine timings after the run",
    )
    sim.add_argument(
        "--manifest", metavar="PATH",
        help="write a run-provenance manifest (JSON) to PATH",
    )
    sim.add_argument(
        "--max-slots", type=int, metavar="N",
        help="refuse runs longer than N slots (guard against typos "
        "like --days 4000)",
    )
    sim.add_argument(
        "--fault-scenario", choices=sorted(RUNTIME_SCENARIOS),
        help="inject a seeded runtime fault scenario into the run",
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan (default 0)",
    )
    sim.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write crash-safe checkpoints to DIR at period boundaries",
    )
    sim.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="N",
        help="checkpoint every N periods (default 8)",
    )
    sim.add_argument(
        "--resume", action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    sim.add_argument(
        "--stop-after-periods", type=int, metavar="N",
        help="checkpoint and stop after N periods (simulated crash; "
        "requires --checkpoint-dir)",
    )

    exp = commands.add_parser("experiment", help="reproduce a table/figure")
    exp.add_argument("name", choices=_EXPERIMENTS)
    exp.add_argument(
        "--results-dir", metavar="DIR",
        help="also write the rendered table and its run manifest here",
    )
    exp.add_argument(
        "--workers", type=int, metavar="N",
        help="fan independent simulations out over N processes "
        "(default: serial, or $REPRO_WORKERS)",
    )
    exp.add_argument(
        "--no-cache", action="store_true",
        help="skip the offline-artifact disk cache (always retrain)",
    )

    obs_cmd = commands.add_parser("obs", help="observability utilities")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="summarise a JSONL event trace"
    )
    summarize.add_argument("trace", help="path to a trace.jsonl file")
    span_tree = obs_sub.add_parser(
        "trace", help="render the span tree of a JSONL event trace"
    )
    span_tree.add_argument(
        "trace",
        help="path to a trace.jsonl file (or a run directory "
        "containing one)",
    )
    span_tree.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the hot-span table (default 10)",
    )
    span_tree.add_argument(
        "--check", action="store_true",
        help="exit 6 unless the trace reassembles into exactly one "
        "rooted tree with no orphan spans",
    )

    export = commands.add_parser(
        "export-trace", help="write synthetic weather as MIDC CSV"
    )
    export.add_argument("--days", type=int, default=4)
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--out", required=True)

    bench = commands.add_parser(
        "bench", help="run the perf-regression harness"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small workloads (the CI smoke configuration)",
    )
    bench.add_argument(
        "--out", default="BENCH_perf.json", metavar="PATH",
        help="where to write the report (default BENCH_perf.json)",
    )
    bench.add_argument(
        "--baseline", metavar="PATH",
        help="compare against a committed report; exit 5 if slot "
        "throughput regressed beyond --max-regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRAC",
        help="tolerated fractional throughput drop vs the baseline "
        "(default 0.30)",
    )
    bench.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="process count for the parallel-suite benchmark (default 4)",
    )
    bench.add_argument(
        "--history", action="store_true",
        help="print the trend table from the history store and exit "
        "(no benchmarks are run)",
    )
    bench.add_argument(
        "--history-file", default=None, metavar="PATH",
        help="trend store location (default .benchmarks/history.jsonl)",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the history store",
    )

    cache_cmd = commands.add_parser(
        "cache", help="offline-artifact cache utilities"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("info", help="show cache location and contents")
    cache_clear = cache_sub.add_parser(
        "clear", help="remove cached artifacts"
    )
    cache_clear.add_argument(
        "--kind", metavar="KIND",
        help="only clear one artifact kind (e.g. policy)",
    )

    verify = commands.add_parser(
        "verify", help="run the conformance suite (invariants + oracles)"
    )
    verify.add_argument(
        "--level", default="quick", choices=("smoke", "quick", "deep"),
        help="depth: smoke (seconds), quick (the CI gate: canonical "
        "days + fault scenarios), deep (adds randomized sweeps)",
    )
    verify.add_argument(
        "--seed", type=int, default=0,
        help="seed for the randomized extras (default 0); the "
        "canonical matrix is deterministic",
    )
    verify.add_argument(
        "--json", metavar="PATH",
        help="also write the full structured report as JSON to PATH",
    )
    verify.add_argument(
        "--fingerprints", metavar="PATH",
        help="reference fingerprint file (default: the committed "
        "tests/data/engine_fingerprints.json)",
    )
    verify.add_argument(
        "--update-fingerprints", action="store_true",
        help="regenerate the reference fingerprints instead of "
        "verifying (do this only after an intentional semantic change)",
    )
    verify.add_argument(
        "--quiet", action="store_true",
        help="suppress per-check progress lines",
    )

    fleet = commands.add_parser(
        "fleet", help="fleet-scale multi-node simulation"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="simulate N heterogeneous nodes"
    )
    fleet_run.add_argument(
        "--nodes", type=int, default=100, metavar="N",
        help="fleet size (default 100)",
    )
    fleet_run.add_argument(
        "--seed", type=int, default=0,
        help="fleet seed: base weather + every per-node variation "
        "(default 0)",
    )
    fleet_run.add_argument(
        "--days", type=int, default=1,
        help="simulated days per node (default 1)",
    )
    fleet_run.add_argument(
        "--policies", metavar="P1,P2,...",
        help="comma-separated scheduler/policy pool nodes draw from "
        f"(subset of {','.join(sorted(FLEET_POLICIES))}; "
        "default asap,inter-task,intra-task,random)",
    )
    fleet_run.add_argument(
        "--workers", type=int, metavar="N",
        help="process count for shard fan-out (default: serial, or "
        "$REPRO_WORKERS); never changes the results",
    )
    fleet_run.add_argument(
        "--shard-size", type=int, metavar="N",
        help="nodes per work item (default 32); never changes the "
        "results",
    )
    fleet_run.add_argument(
        "--engine", choices=("batch", "per-node"), default="batch",
        help="shard executor: batch (default) advances eligible "
        "nodes through one node-major vectorized engine, per-node "
        "steps one scalar engine per node; bit-identical results, "
        "only nodes/s differs",
    )
    fleet_run.add_argument(
        "--no-cache", action="store_true",
        help="skip shard checkpoints and the offline-artifact cache",
    )
    fleet_run.add_argument(
        "--out", metavar="PATH",
        help="write the full fleet result (per-node summaries + "
        "aggregates) as JSON to PATH",
    )
    fleet_run.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL event log (one fleet_shard event per "
        "shard + run summary) to PATH",
    )
    fleet_run.add_argument(
        "--manifest", metavar="PATH",
        help="write a run-provenance manifest (JSON) to PATH",
    )
    fleet_run.add_argument(
        "--progress", action="store_true",
        help="print a live heartbeat line per completed shard "
        "(stderr), fed by the event stream",
    )
    fleet_run.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="supervisor re-dispatches per shard and in-worker "
        "retries per node beyond the first attempt (default 2)",
    )
    fleet_run.add_argument(
        "--task-timeout", type=float, metavar="SECONDS",
        help="per-shard wall-clock budget; a shard exceeding it is "
        "killed and re-dispatched (default: no timeout). Forces "
        "pool execution.",
    )
    fleet_run.add_argument(
        "--on-node-error", choices=("quarantine", "fail"),
        default="quarantine",
        help="quarantine (default): record raising nodes as "
        "FailedNode and complete degraded (exit 7); fail: abort on "
        "the first permanent failure (exit 4)",
    )
    fleet_run.add_argument(
        "--exclude-nodes", metavar="ID1,ID2,...",
        help="node ids to skip — rerun the healthy subset of a "
        "degraded run to reproduce its fingerprint fault-free",
    )
    fleet_run.add_argument(
        "--chaos-seed", type=int, default=0, metavar="S",
        help="seed of the chaos fault draws (default 0)",
    )
    fleet_run.add_argument(
        "--chaos-poison", type=int, default=0, metavar="N",
        help="chaos: N nodes raise on every attempt (must end up "
        "quarantined)",
    )
    fleet_run.add_argument(
        "--chaos-hangs", type=int, default=0, metavar="N",
        help="chaos: N nodes sleep --chaos-hang-seconds on their "
        "first attempt (pair with --task-timeout)",
    )
    fleet_run.add_argument(
        "--chaos-kills", type=int, default=0, metavar="N",
        help="chaos: N shards hard-kill their worker on the first "
        "attempt (exercises pool rebuild)",
    )
    fleet_run.add_argument(
        "--chaos-hang-seconds", type=float, default=2.0,
        metavar="SECONDS",
        help="sleep of a chaos-hung node's first attempt (default 2)",
    )
    fleet_report = fleet_sub.add_parser(
        "report", help="re-render a saved fleet result"
    )
    fleet_report.add_argument(
        "result", help="path to a fleet result JSON (fleet run --out)"
    )
    return parser


def _cmd_list(out) -> int:
    print("benchmarks: ", ", ".join(sorted(paper_benchmarks())), file=out)
    print("schedulers: ", ", ".join(sorted(_SCHEDULERS)), file=out)
    print("experiments:", ", ".join(_EXPERIMENTS), file=out)
    return 0


def _cmd_simulate(args, out) -> int:
    graph = paper_benchmarks()[args.benchmark]
    trace = _trace(args.days, args.seed)
    timeline = trace.timeline
    if args.max_slots is not None and timeline.total_slots > args.max_slots:
        raise ValueError(
            f"run spans {timeline.total_slots} slots, over the "
            f"--max-slots guard of {args.max_slots}"
        )
    scheduler = _SCHEDULERS[args.scheduler]()
    node = quick_node(graph)

    fault_injector = None
    if args.fault_scenario:
        plan = runtime_scenario(
            args.fault_scenario, timeline, seed=args.fault_seed
        )
        fault_injector = FaultInjector(plan, timeline)

    checkpoint = None
    resume_from = None
    if args.resume and not args.checkpoint_dir:
        raise ValueError("--resume requires --checkpoint-dir")
    if args.checkpoint_dir:
        checkpoint = CheckpointConfig(
            args.checkpoint_dir, every_periods=args.checkpoint_every
        )
        if args.resume:
            resume_from = latest_checkpoint(args.checkpoint_dir)
            if resume_from is None:
                raise CheckpointError(
                    f"no checkpoint to resume in {args.checkpoint_dir}"
                )

    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    observe = bool(sinks) or args.profile or bool(args.manifest)
    observer = Observer(sinks=sinks) if observe else None
    if observer is not None:
        observer.start_trace(
            "simulate", args.benchmark, args.scheduler, args.days,
            args.seed,
        )

    t0 = time.perf_counter()
    try:
        result = simulate(
            node, graph, trace, scheduler, strict=False, observer=observer,
            fault_injector=fault_injector, checkpoint=checkpoint,
            resume_from=resume_from,
            stop_after_periods=args.stop_after_periods,
        )
    except SimulationInterrupted as stop:
        print(
            f"stopped after {stop.periods_done} period(s); resume with "
            f"--resume --checkpoint-dir {args.checkpoint_dir}",
            file=out,
        )
        if observer is not None:
            observer.close()
        return 0
    wall = time.perf_counter() - t0

    print(f"benchmark:          {args.benchmark}", file=out)
    print(f"scheduler:          {scheduler.name}", file=out)
    print(f"days:               {args.days}", file=out)
    print(f"DMR:                {result.dmr:.4f}", file=out)
    print(f"energy utilisation: {result.energy_utilization:.4f}", file=out)
    print(
        f"per-day DMR:        "
        + ", ".join(f"{x:.3f}" for x in result.dmr_by_day()),
        file=out,
    )
    print(f"fingerprint:        {result_fingerprint(result)}", file=out)
    if fault_injector is not None:
        print(
            f"fault activations:  {fault_injector.total_activations} "
            f"(scenario {args.fault_scenario}, seed {args.fault_seed})",
            file=out,
        )
    if args.trace:
        logger.info("wrote event trace to %s", args.trace)
        print(f"event trace:        {args.trace}", file=out)
    if args.profile and observer is not None:
        print(file=out)
        print(observer.profiler.render(), file=out)
    if args.manifest:
        manifest = build_manifest(
            f"simulate-{args.benchmark}",
            seed=args.seed,
            scheduler=scheduler.name,
            benchmark=args.benchmark,
            timeline=timeline_dict(trace.timeline),
            config={
                "days": args.days,
                "strict": False,
                "fault_scenario": args.fault_scenario,
                "fault_seed": args.fault_seed,
            },
            result_summary=result.summary(),
            wall_time_s=wall,
        )
        path = manifest.write(args.manifest)
        logger.info("wrote run manifest to %s", path)
        print(f"manifest:           {path}", file=out)
    if observer is not None:
        observer.close()
    return 0


def _cmd_experiment(args, out) -> int:
    from . import experiments as exp

    # Propagate the perf knobs through the environment so every helper
    # (train_policy's disk cache, evaluation_suite's worker pool) sees
    # them without threading arguments through each figure module.
    if args.workers is not None:
        if args.workers < 1:
            raise ValueError(f"--workers must be >= 1, got {args.workers}")
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"

    runners = {
        "fig1": exp.fig1_motivation.run,
        "fig2": exp.fig2_sizing.run,
        "fig5": exp.fig5_regulators.run,
        "fig6": exp.fig6_dbn.run,
        "fig7": exp.fig7_solar.run,
        "table2": exp.table2_migration.run,
        "fig8": exp.fig8_daily.run,
        "fig9": exp.fig9_monthly.run,
        "fig10a": exp.fig10a_prediction.run,
        "fig10b": exp.fig10b_capacitors.run,
        "overhead": exp.overhead.run,
        "fleet": exp.fleet_study.run,
    }
    t0 = time.perf_counter()
    table = runners[args.name]()
    wall = time.perf_counter() - t0
    print(table.render(), file=out)
    if args.results_dir:
        from pathlib import Path

        from .experiments.common import write_experiment_manifest

        results_dir = Path(args.results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / f"{args.name}.txt").write_text(table.render() + "\n")
        path = write_experiment_manifest(
            args.name, table, results_dir, wall_time_s=wall
        )
        logger.info("wrote experiment manifest to %s", path)
        print(f"manifest: {path}", file=out)
    return 0


def _cmd_obs(args, out) -> int:
    if args.obs_command == "summarize":
        try:
            print(summarize_jsonl(args.trace), file=out)
        except FileNotFoundError:
            print(f"error: no such trace file: {args.trace}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(
                f"error: {args.trace} is not a JSONL event trace "
                f"({exc})",
                file=sys.stderr,
            )
            return 2
        return 0
    if args.obs_command == "trace":
        from pathlib import Path

        from .obs import read_jsonl
        from .obs.trace import build_span_tree, render_span_tree

        path = Path(args.trace)
        if path.is_dir():
            path = path / "trace.jsonl"
        try:
            records = read_jsonl(path)
        except FileNotFoundError:
            print(f"error: no such trace file: {path}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(
                f"error: {path} is not a JSONL event trace ({exc})",
                file=sys.stderr,
            )
            return 2
        spans = [r for r in records if r.get("kind") == "span"]
        if not spans:
            print(f"no span records in {path}", file=out)
            return 2 if args.check else 0
        print(render_span_tree(spans, top=args.top), file=out)
        if args.check:
            tree = build_span_tree(spans)
            problems = []
            if len(tree.roots) != 1:
                problems.append(f"{len(tree.roots)} root span(s), want 1")
            if tree.orphans:
                problems.append(f"{len(tree.orphans)} orphan span(s)")
            if problems:
                print(
                    f"span-tree check failed: {'; '.join(problems)}",
                    file=sys.stderr,
                )
                return 6
            print("span-tree check: single root, no orphans", file=out)
        return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_bench(args, out) -> int:
    from .perf import bench as perf_bench

    history_path = args.history_file or perf_bench.HISTORY_PATH
    if args.history:
        print(perf_bench.render_history(history_path), file=out)
        return 0

    report = perf_bench.run_bench(quick=args.quick, workers=args.workers)
    path = perf_bench.write_report(report, args.out)
    b = report["benchmarks"]
    slot = b["slot_loop"]
    off = b["offline_training"]
    par = b["parallel_suite"]
    print(
        f"slot loop:     {slot['slots_per_sec']:.0f} slots/s "
        f"({slot['slots']} slots in {slot['seconds']:.3f}s, "
        f"{slot['workload']})",
        file=out,
    )
    print(
        f"offline stage: cold {off['cold_seconds']:.2f}s, cache hit "
        f"{off['cached_seconds']:.3f}s ({off['cache_speedup']:.1f}x, "
        f"{off['workload']})",
        file=out,
    )
    print(
        f"parallel suite: serial {par['serial_seconds']:.2f}s, "
        f"{par['workers']} workers {par['parallel_seconds']:.2f}s "
        f"({par['speedup']:.2f}x, {par['workload']})",
        file=out,
    )
    fleet = b["fleet"]
    print(
        f"fleet:         {fleet['nodes_per_sec']:.1f} nodes/s "
        f"({fleet['nodes']} nodes in {fleet['seconds']:.2f}s, "
        f"{fleet['workload']})",
        file=out,
    )
    fb = b["fleet_batch"]
    print(
        f"fleet batch:   {fb['nodes_per_sec']:.1f} nodes/s "
        f"({fb['nodes']} nodes in {fb['seconds']:.2f}s, "
        f"{fb['speedup_vs_per_node']:.1f}x vs per-node, "
        f"{fb['workload']})",
        file=out,
    )
    print(f"report:        {path}", file=out)
    if not args.no_history:
        hist = perf_bench.append_history(report, history_path)
        print(f"history:       {hist}", file=out)
    if args.baseline:
        failures = perf_bench.compare_to_baseline(
            report, args.baseline, args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"perf regression: {failure}", file=sys.stderr)
            return 5
        print(f"baseline:      OK vs {args.baseline}", file=out)
    return 0


def _cmd_cache(args, out) -> int:
    from .perf.cache import default_cache

    cache = default_cache()
    if args.cache_command == "info":
        info = cache.info()
        print(f"cache root: {info['root']}", file=out)
        if not info["kinds"]:
            print("(empty)", file=out)
        for kind, stats in info["kinds"].items():
            print(
                f"  {kind}: {stats['entries']} entr"
                f"{'y' if stats['entries'] == 1 else 'ies'}, "
                f"{stats['bytes'] / 1e6:.1f} MB",
                file=out,
            )
        return 0
    if args.cache_command == "clear":
        removed = cache.clear(args.kind)
        print(
            f"removed {removed} cached artifact(s) from {cache.root}",
            file=out,
        )
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_verify(args, out) -> int:
    from .verify import run_verification, write_reference_fingerprints

    if args.update_fingerprints:
        path, fingerprints = write_reference_fingerprints(
            args.fingerprints
        )
        print(
            f"captured {len(fingerprints)} reference fingerprint(s) "
            f"to {path}",
            file=out,
        )
        return 0

    log = None if args.quiet else (lambda m: print(f"  {m}", file=out))
    t0 = time.perf_counter()
    report = run_verification(
        level=args.level,
        seed=args.seed,
        log=log,
        fingerprint_path=args.fingerprints,
    )
    wall = time.perf_counter() - t0
    print(report.render(), file=out)
    print(f"({wall:.1f}s)", file=out)
    if args.json:
        from pathlib import Path

        payload = report.to_dict()
        payload["wall_time_s"] = wall
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report: {args.json}", file=out)
    return 0 if report.ok else 6


def _cmd_fleet(args, out) -> int:
    from .fleet import FleetResult, FleetRunner, FleetSpec

    if args.fleet_command == "report":
        result = FleetResult.load_json(args.result)
        print(result.render(), file=out)
        print(file=out)
        print(f"fingerprint: {result.fingerprint()}", file=out)
        return 0

    if args.fleet_command != "run":
        raise AssertionError(
            f"unhandled fleet command {args.fleet_command!r}"
        )

    spec_kwargs = {"n_nodes": args.nodes, "seed": args.seed,
                   "days": args.days}
    if args.policies:
        spec_kwargs["policies"] = tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        )
    spec = FleetSpec(**spec_kwargs)
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"

    chaos = None
    if args.chaos_poison or args.chaos_hangs or args.chaos_kills:
        from .reliability.chaos import ChaosSpec

        chaos = ChaosSpec(
            seed=args.chaos_seed,
            poison_nodes=args.chaos_poison,
            hang_nodes=args.chaos_hangs,
            kill_shards=args.chaos_kills,
            hang_seconds=args.chaos_hang_seconds,
        )
    exclude = None
    if args.exclude_nodes:
        exclude = [
            int(tok) for tok in args.exclude_nodes.split(",") if tok.strip()
        ]

    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    if args.progress:
        from .obs import HeartbeatSink

        sinks.append(HeartbeatSink())
    observer = Observer(sinks=sinks) if sinks or args.manifest else None

    t0 = time.perf_counter()
    try:
        result = FleetRunner(
            spec,
            workers=args.workers,
            shard_size=args.shard_size,
            observer=observer,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            on_node_error=args.on_node_error,
            chaos=chaos,
            exclude_nodes=exclude,
            engine=args.engine,
        ).run()
    except KeyboardInterrupt:
        # The supervisor has already torn the pool down on the way
        # out; flush what the run produced so far and say so.
        wall = time.perf_counter() - t0
        if observer is not None:
            observer.close()
        if args.manifest:
            manifest = build_manifest(
                f"fleet-{args.nodes}",
                seed=args.seed,
                scheduler="fleet",
                benchmark="fleet",
                timeline=timeline_dict(spec.timeline()),
                config={**spec.describe(), "interrupted": True},
                result_summary={"interrupted": True},
                wall_time_s=wall,
            )
            path = manifest.write(args.manifest)
            print(f"manifest:    {path} (interrupted)", file=sys.stderr)
        print(
            f"interrupted after {wall:.1f}s: pool terminated, sinks "
            "flushed; completed shards are checkpointed and will be "
            "reused on rerun",
            file=sys.stderr,
        )
        return 130
    wall = time.perf_counter() - t0

    print(result.render(), file=out)
    print(file=out)
    print(
        f"throughput:  {len(result) / wall:.1f} nodes/s "
        f"({wall:.2f}s, {result.config['workers']} worker(s), "
        f"shard size {result.config['shard_size']})",
        file=out,
    )
    print(f"fingerprint: {result.fingerprint()}", file=out)
    if result.degraded:
        ids = ",".join(str(f.node_id) for f in result.failed_nodes)
        print(
            f"quarantined: {len(result.failed_nodes)} node(s): {ids}",
            file=out,
        )
        print(
            f"             rerun the healthy subset with "
            f"--exclude-nodes {ids}",
            file=out,
        )
    if args.out:
        path = result.write_json(args.out)
        print(f"result:      {path}", file=out)
    if args.trace:
        print(f"event trace: {args.trace}", file=out)
    if args.manifest:
        manifest = build_manifest(
            f"fleet-{args.nodes}",
            seed=args.seed,
            scheduler="fleet",
            benchmark="fleet",
            timeline=timeline_dict(spec.timeline()),
            config={k: v for k, v in result.config.items()
                    if k not in ("wall_time_s", "nodes_per_s")},
            result_summary=result.summary(),
            wall_time_s=wall,
        )
        path = manifest.write(args.manifest)
        print(f"manifest:    {path}", file=out)
    if observer is not None:
        observer.close()
    # 7 = "completed degraded": every healthy node's numbers are
    # valid (and deterministic), but quarantined nodes are missing.
    return 7 if result.degraded else 0


def _cmd_export(args, out) -> int:
    trace = _trace(args.days, args.seed)
    write_midc_csv(args.out, trace)
    print(
        f"wrote {trace.timeline.total_slots} rows covering "
        f"{args.days} day(s) to {args.out}",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    logging.basicConfig(level=getattr(logging, args.log_level))
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "simulate":
            return _cmd_simulate(args, out)
        if args.command == "experiment":
            return _cmd_experiment(args, out)
        if args.command == "obs":
            return _cmd_obs(args, out)
        if args.command == "export-trace":
            return _cmd_export(args, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "cache":
            return _cmd_cache(args, out)
        if args.command == "verify":
            return _cmd_verify(args, out)
        if args.command == "fleet":
            return _cmd_fleet(args, out)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly
        # the way well-behaved Unix tools do.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    # One-line errors with distinct exit codes: 2 = bad input/data,
    # 3 = checkpoint mismatch/corruption, 4 = simulation failure,
    # 5 = perf regression (returned directly by _cmd_bench),
    # 6 = verification failure (returned directly by _cmd_verify),
    # 7 = completed degraded (returned directly by _cmd_fleet),
    # 130 = interrupted (returned directly by _cmd_fleet).
    except (MIDCFormatError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 3
    except SupervisorError as exc:
        # Permanent task failure under --on-node-error fail (or a
        # fully-failed fleet): a simulation-layer abort, like
        # InvalidDecisionError below.
        print(f"simulation error: {exc}", file=sys.stderr)
        return 4
    except InvalidDecisionError as exc:
        print(f"simulation error: {exc}", file=sys.stderr)
        return 4
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
