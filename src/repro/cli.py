"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available benchmarks, schedulers and experiments.
``simulate``
    Run one scheduler on one benchmark over a chosen trace and print
    the headline metrics.
``experiment``
    Run one of the paper's table/figure reproductions and print it.
``export-trace``
    Write a synthetic solar trace as a MIDC-style CSV.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from . import quick_node
from .schedulers import (
    DVFSLoadMatchingScheduler,
    GreedyEDFScheduler,
    InterTaskScheduler,
    IntraTaskScheduler,
)
from .sim.engine import simulate
from .solar import four_day_trace, synthetic_trace
from .solar.dataset import write_midc_csv
from .tasks import paper_benchmarks
from .timeline import Timeline

__all__ = ["main", "build_parser"]

_SCHEDULERS: Dict[str, Callable] = {
    "asap": GreedyEDFScheduler,
    "inter-task": InterTaskScheduler,
    "intra-task": IntraTaskScheduler,
    "dvfs": DVFSLoadMatchingScheduler,
}

_EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "table2",
    "fig8",
    "fig9",
    "fig10a",
    "fig10b",
    "overhead",
)


def _timeline(days: int) -> Timeline:
    return Timeline(
        num_days=days, periods_per_day=144, slots_per_period=20,
        slot_seconds=30.0,
    )


def _trace(days: int, seed: int):
    if days == 4 and seed == 0:
        return four_day_trace(_timeline(4))
    return synthetic_trace(_timeline(days), seed=seed or 2016)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC'15 solar-node deadline-aware scheduling "
        "reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list benchmarks/schedulers/experiments")

    sim = commands.add_parser("simulate", help="run one scheduler")
    sim.add_argument(
        "--benchmark", default="WAM", choices=sorted(paper_benchmarks())
    )
    sim.add_argument(
        "--scheduler", default="intra-task", choices=sorted(_SCHEDULERS)
    )
    sim.add_argument("--days", type=int, default=4)
    sim.add_argument(
        "--seed", type=int, default=0,
        help="weather seed (0 + 4 days = the paper's canonical days)",
    )

    exp = commands.add_parser("experiment", help="reproduce a table/figure")
    exp.add_argument("name", choices=_EXPERIMENTS)

    export = commands.add_parser(
        "export-trace", help="write synthetic weather as MIDC CSV"
    )
    export.add_argument("--days", type=int, default=4)
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--out", required=True)
    return parser


def _cmd_list(out) -> int:
    print("benchmarks: ", ", ".join(sorted(paper_benchmarks())), file=out)
    print("schedulers: ", ", ".join(sorted(_SCHEDULERS)), file=out)
    print("experiments:", ", ".join(_EXPERIMENTS), file=out)
    return 0


def _cmd_simulate(args, out) -> int:
    graph = paper_benchmarks()[args.benchmark]
    trace = _trace(args.days, args.seed)
    scheduler = _SCHEDULERS[args.scheduler]()
    node = quick_node(graph)
    result = simulate(node, graph, trace, scheduler, strict=False)
    print(f"benchmark:          {args.benchmark}", file=out)
    print(f"scheduler:          {scheduler.name}", file=out)
    print(f"days:               {args.days}", file=out)
    print(f"DMR:                {result.dmr:.4f}", file=out)
    print(f"energy utilisation: {result.energy_utilization:.4f}", file=out)
    print(
        f"per-day DMR:        "
        + ", ".join(f"{x:.3f}" for x in result.dmr_by_day()),
        file=out,
    )
    return 0


def _cmd_experiment(args, out) -> int:
    from . import experiments as exp

    runners = {
        "fig1": exp.fig1_motivation.run,
        "fig2": exp.fig2_sizing.run,
        "fig5": exp.fig5_regulators.run,
        "fig6": exp.fig6_dbn.run,
        "fig7": exp.fig7_solar.run,
        "table2": exp.table2_migration.run,
        "fig8": exp.fig8_daily.run,
        "fig9": exp.fig9_monthly.run,
        "fig10a": exp.fig10a_prediction.run,
        "fig10b": exp.fig10b_capacitors.run,
        "overhead": exp.overhead.run,
    }
    table = runners[args.name]()
    print(table.render(), file=out)
    return 0


def _cmd_export(args, out) -> int:
    trace = _trace(args.days, args.seed)
    write_midc_csv(args.out, trace)
    print(
        f"wrote {trace.timeline.total_slots} rows covering "
        f"{args.days} day(s) to {args.out}",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "simulate":
            return _cmd_simulate(args, out)
        if args.command == "experiment":
            return _cmd_experiment(args, out)
        if args.command == "export-trace":
            return _cmd_export(args, out)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly
        # the way well-behaved Unix tools do.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
