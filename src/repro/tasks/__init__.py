"""Task model substrate: tasks, dependence DAGs and benchmark sets."""

from .task import Task, task_mw
from .graph import CycleError, TaskGraph
from .generator import STRUCTURES, WorkloadSpec, generate_workload, uunifast
from .benchmarks import (
    DEFAULT_PERIOD_SECONDS,
    ecg,
    paper_benchmarks,
    random_benchmark,
    random_case,
    shm,
    wam,
)

__all__ = [
    "Task",
    "task_mw",
    "TaskGraph",
    "CycleError",
    "wam",
    "ecg",
    "shm",
    "random_benchmark",
    "random_case",
    "paper_benchmarks",
    "DEFAULT_PERIOD_SECONDS",
    "WorkloadSpec",
    "generate_workload",
    "uunifast",
    "STRUCTURES",
]
