"""Task model for periodic real-time workloads on the sensor node.

Each task releases once per period and must complete ``execution_time``
seconds of work before its per-period ``deadline`` (both relative to the
period start).  ``power`` is the average execution power ``P_n^τ`` drawn
while the task runs.  Tasks are bound to a specific nonvolatile
processor (NVP) by ``nvp``: a task can only run on its own NVP and an
NVP runs at most one task per slot (constraint (9) of the paper).
"""

from __future__ import annotations

import dataclasses

__all__ = ["Task"]


@dataclasses.dataclass(frozen=True)
class Task:
    """One periodic task (``τ_n`` in the paper).

    Parameters
    ----------
    name:
        Unique identifier within a task set.
    execution_time:
        ``S_n``: total execution time per period, seconds.
    deadline:
        ``D_n``: relative deadline per period, seconds from period start.
    power:
        ``P_n^τ``: average execution power, watts.
    nvp:
        Index of the nonvolatile processor that runs this task.
    """

    name: str
    execution_time: float
    deadline: float
    power: float
    nvp: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if not self.execution_time > 0:
            raise ValueError(
                f"task {self.name!r}: execution_time must be > 0, "
                f"got {self.execution_time}"
            )
        if not self.deadline > 0:
            raise ValueError(
                f"task {self.name!r}: deadline must be > 0, got {self.deadline}"
            )
        if self.execution_time > self.deadline:
            raise ValueError(
                f"task {self.name!r}: execution_time {self.execution_time} "
                f"exceeds deadline {self.deadline}; the task can never meet "
                "its deadline"
            )
        if not self.power > 0:
            raise ValueError(
                f"task {self.name!r}: power must be > 0, got {self.power}"
            )
        if self.nvp < 0:
            raise ValueError(f"task {self.name!r}: nvp must be >= 0, got {self.nvp}")

    @property
    def energy(self) -> float:
        """Total energy needed to complete the task once, joules."""
        return self.execution_time * self.power

    def slots_needed(self, slot_seconds: float) -> int:
        """Number of whole slots of work the task needs per period."""
        if not slot_seconds > 0:
            raise ValueError(f"slot_seconds must be > 0, got {slot_seconds}")
        full, frac = divmod(self.execution_time, slot_seconds)
        slots = int(full) + (1 if frac > 1e-9 else 0)
        return max(slots, 1)


def task_mw(
    name: str,
    execution_time: float,
    deadline: float,
    power_mw: float,
    nvp: int = 0,
) -> Task:
    """Convenience constructor taking power in milliwatts.

    The paper quotes task powers in mW; internally everything is SI.
    """
    return Task(
        name=name,
        execution_time=execution_time,
        deadline=deadline,
        power=power_mw * 1e-3,
        nvp=nvp,
    )


__all__.append("task_mw")
