"""Directed acyclic task graph ``G(V, W)``.

The paper models the per-period workload as a DAG: ``W_{n,l} = 1`` when
task ``τ_l`` depends on the result of ``τ_n`` (constraint (7): a task may
start only after all of its predecessors completed within the same
period).  :class:`TaskGraph` owns the task set, the dependence relation
and the NVP partition ``A_k``, validates acyclicity and per-NVP
feasibility, and provides the order/reachability queries the schedulers
need.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from .task import Task

__all__ = ["TaskGraph", "CycleError"]


class CycleError(ValueError):
    """Raised when the dependence relation contains a cycle."""


class TaskGraph:
    """Task set plus dependence edges and NVP partition.

    Parameters
    ----------
    tasks:
        The task set ``V``.  Task names must be unique; each task's
        ``nvp`` attribute defines the partition ``A_k``.
    edges:
        Dependence pairs ``(producer, consumer)`` by task name;
        ``consumer`` cannot start until ``producer`` has completed in
        the same period.
    name:
        Optional benchmark name, used in reports.
    """

    def __init__(
        self,
        tasks: Sequence[Task],
        edges: Iterable[Tuple[str, str]] = (),
        name: str = "taskset",
    ) -> None:
        if not tasks:
            raise ValueError("a task graph needs at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate task names: {dupes}")
        self.name = name
        self._tasks: Tuple[Task, ...] = tuple(tasks)
        self._index: Dict[str, int] = {t.name: i for i, t in enumerate(tasks)}

        n = len(tasks)
        self._adj: np.ndarray = np.zeros((n, n), dtype=bool)
        for producer, consumer in edges:
            if producer not in self._index:
                raise KeyError(f"unknown producer task {producer!r}")
            if consumer not in self._index:
                raise KeyError(f"unknown consumer task {consumer!r}")
            if producer == consumer:
                raise CycleError(f"self-dependence on task {producer!r}")
            self._adj[self._index[producer], self._index[consumer]] = True

        self._topo: Tuple[int, ...] = tuple(self._topological_order())
        self._preds: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(np.flatnonzero(self._adj[:, i]).tolist()) for i in range(n)
        )
        self._succs: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(np.flatnonzero(self._adj[i, :]).tolist()) for i in range(n)
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self._tasks

    @property
    def num_edges(self) -> int:
        return int(self._adj.sum())

    @property
    def dependence_matrix(self) -> np.ndarray:
        """Copy of the boolean matrix ``W`` (producers on rows)."""
        return self._adj.copy()

    def index(self, name: str) -> int:
        return self._index[name]

    def task(self, name: str) -> Task:
        return self._tasks[self._index[name]]

    def predecessors(self, task_index: int) -> Tuple[int, ...]:
        """Indices of tasks that must complete before ``task_index``."""
        return self._preds[task_index]

    def successors(self, task_index: int) -> Tuple[int, ...]:
        return self._succs[task_index]

    def topological_order(self) -> Tuple[int, ...]:
        """Task indices in a dependence-respecting order."""
        return self._topo

    # ------------------------------------------------------------------
    # NVP partition
    # ------------------------------------------------------------------
    @property
    def num_nvps(self) -> int:
        """Number of NVPs (``N_k``); NVP indices must be dense from 0."""
        return max(t.nvp for t in self._tasks) + 1

    def nvp_partition(self) -> Mapping[int, Tuple[int, ...]]:
        """The partition ``A_k``: task indices grouped by NVP."""
        groups: Dict[int, List[int]] = {}
        for i, task in enumerate(self._tasks):
            groups.setdefault(task.nvp, []).append(i)
        return {k: tuple(v) for k, v in groups.items()}

    def nvp_of(self, task_index: int) -> int:
        return self._tasks[task_index].nvp

    # ------------------------------------------------------------------
    # Aggregates used by schedulers
    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        """Energy to complete every task once, joules."""
        return float(sum(t.energy for t in self._tasks))

    def total_execution_time(self) -> float:
        return float(sum(t.execution_time for t in self._tasks))

    def max_power(self) -> float:
        """Largest possible instantaneous load: one task per NVP."""
        best: Dict[int, float] = {}
        for t in self._tasks:
            best[t.nvp] = max(best.get(t.nvp, 0.0), t.power)
        return float(sum(best.values()))

    def descendants(self, task_index: int) -> Set[int]:
        """All tasks transitively depending on ``task_index``."""
        seen: Set[int] = set()
        stack = list(self._succs[task_index])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succs[node])
        return seen

    def feasible_in(self, period_seconds: float, slot_seconds: float) -> bool:
        """Whether every task *could* meet its deadline with full energy.

        Checks, per NVP, that the work of the tasks due by each deadline
        fits in the slots before that deadline (a necessary EDF-style
        demand-bound condition, ignoring dependences).
        """
        for nvp, members in self.nvp_partition().items():
            by_deadline = sorted(members, key=lambda i: self._tasks[i].deadline)
            demand_slots = 0
            for i in by_deadline:
                task = self._tasks[i]
                if task.deadline > period_seconds + 1e-9:
                    return False
                demand_slots += task.slots_needed(slot_seconds)
                available = int(task.deadline / slot_seconds + 1e-9)
                if demand_slots > available:
                    return False
        return True

    # ------------------------------------------------------------------
    def _topological_order(self) -> List[int]:
        n = len(self._tasks)
        in_degree = self._adj.sum(axis=0).astype(int)
        ready = sorted(np.flatnonzero(in_degree == 0).tolist())
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in np.flatnonzero(self._adj[node]).tolist():
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != n:
            stuck = [self._tasks[i].name for i in range(n) if i not in order]
            raise CycleError(f"dependence cycle among tasks: {stuck}")
        return order

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, tasks={len(self)}, "
            f"edges={self.num_edges}, nvps={self.num_nvps})"
        )
