"""Benchmark task sets from the paper's evaluation (Section 6.1).

Three real application benchmarks — wild animal monitoring (WAM, 8
tasks), electrocardiogram (ECG, 6 tasks) and structure health
monitoring (SHM, 5 tasks) — plus the seeded random benchmark generator
(4–8 tasks, 0–2 edges, 2–6 NVPs).

The paper obtained per-task execution time and power from C2RTL /
Modelsim / DC Compiler under SMIC 130 nm; those absolute numbers are
not published, so the tables below pick values at the same scale as the
node (peak panel output ≈ 95 mW, task powers 8–55 mW, hyper-period
600 s) while preserving each benchmark's published structure: task
count, the task names from the paper's footnotes, and processing
pipelines (sensing → processing → compression → storage → transmission
for WAM; filter chain → QRS/FFT → AES for ECG; sensing → FFT →
transmission for SHM).  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .graph import TaskGraph
from .task import Task

__all__ = [
    "wam",
    "ecg",
    "shm",
    "random_benchmark",
    "random_case",
    "paper_benchmarks",
    "DEFAULT_PERIOD_SECONDS",
]

#: Hyper-period used by all built-in benchmarks, seconds (10 minutes).
DEFAULT_PERIOD_SECONDS = 600.0

_MW = 1e-3


def _t(name: str, exec_s: float, deadline_s: float, power_mw: float, nvp: int) -> Task:
    return Task(
        name=name,
        execution_time=exec_s,
        deadline=deadline_s,
        power=power_mw * _MW,
        nvp=nvp,
    )


def wam() -> TaskGraph:
    """Wild animal monitoring: 8 tasks on 3 NVPs.

    Task names follow the paper's footnote 1: periodic locating, heart
    rate sampling, voice recordation, audio process, emergency response,
    audio compression, local storage and data transmission.
    """
    tasks = [
        _t("locate", 60.0, 300.0, 45.0, nvp=0),
        _t("heart_rate", 30.0, 150.0, 12.0, nvp=1),
        _t("voice_record", 120.0, 240.0, 18.0, nvp=2),
        _t("audio_process", 90.0, 420.0, 30.0, nvp=2),
        _t("emergency", 30.0, 300.0, 25.0, nvp=1),
        _t("audio_compress", 60.0, 510.0, 22.0, nvp=2),
        _t("storage", 30.0, 570.0, 8.0, nvp=0),
        _t("transmit", 60.0, 600.0, 50.0, nvp=1),
    ]
    edges = [
        ("voice_record", "audio_process"),
        ("audio_process", "audio_compress"),
        ("audio_compress", "storage"),
        ("storage", "transmit"),
        ("heart_rate", "emergency"),
        ("locate", "transmit"),
    ]
    return TaskGraph(tasks, edges, name="WAM")


def ecg() -> TaskGraph:
    """Electrocardiogram application: 6 tasks on 2 NVPs.

    Task names follow the paper's footnote 2: low pass filter, high
    pass filter 1/2, QRS wave detection, FFT and AES encoder.
    """
    tasks = [
        _t("lpf", 45.0, 120.0, 15.0, nvp=0),
        _t("hpf1", 45.0, 240.0, 15.0, nvp=0),
        _t("hpf2", 45.0, 330.0, 15.0, nvp=1),
        _t("qrs", 60.0, 450.0, 28.0, nvp=0),
        _t("fft", 90.0, 480.0, 35.0, nvp=1),
        _t("aes", 60.0, 600.0, 40.0, nvp=0),
    ]
    edges = [
        ("lpf", "hpf1"),
        ("hpf1", "hpf2"),
        ("hpf2", "qrs"),
        ("lpf", "fft"),
        ("qrs", "aes"),
    ]
    return TaskGraph(tasks, edges, name="ECG")


def shm() -> TaskGraph:
    """Structure health monitoring: 5 tasks on 2 NVPs.

    Task names follow the paper's footnote 3: temperature sensing,
    acceleration sensing, FFT, data receiving and transmitting.
    """
    tasks = [
        _t("temp_sense", 30.0, 150.0, 10.0, nvp=0),
        _t("accel_sense", 60.0, 210.0, 16.0, nvp=1),
        _t("fft", 120.0, 450.0, 38.0, nvp=1),
        _t("rx", 30.0, 300.0, 35.0, nvp=0),
        _t("tx", 90.0, 600.0, 55.0, nvp=0),
    ]
    edges = [
        ("accel_sense", "fft"),
        ("fft", "tx"),
        ("temp_sense", "tx"),
    ]
    return TaskGraph(tasks, edges, name="SHM")


def random_benchmark(
    seed: int,
    period_seconds: float = DEFAULT_PERIOD_SECONDS,
    slot_seconds: float = 30.0,
    name: str = "",
) -> TaskGraph:
    """Seeded random benchmark matching the paper's ranges.

    Task number 4–8, edge number 0–2, NVP number 2–6 (Section 6.1).
    Execution times are whole slots, deadlines leave enough slack for
    the per-NVP demand-bound check to pass, and powers span the node's
    task-power range.  The same ``seed`` always yields the same graph.
    """
    rng = np.random.default_rng(seed)
    num_tasks = int(rng.integers(4, 9))
    num_edges = int(rng.integers(0, 3))
    num_nvps = int(rng.integers(2, 7))

    slots = int(round(period_seconds / slot_seconds))
    # Keep per-NVP demand feasible: spread tasks round-robin over NVPs
    # and hand each NVP's tasks deadlines after their cumulative work.
    nvp_of = [i % num_nvps for i in range(num_tasks)]
    rng.shuffle(nvp_of)

    exec_slots = rng.integers(1, max(2, slots // 3), size=num_tasks)
    tasks: List[Task] = []
    nvp_load: Dict[int, int] = {}
    for i in range(num_tasks):
        nvp = nvp_of[i]
        load_before = nvp_load.get(nvp, 0)
        need = int(exec_slots[i])
        earliest_ok = load_before + need
        if earliest_ok > slots:
            need = max(1, slots - load_before)
            earliest_ok = load_before + need
        if earliest_ok > slots:
            # NVP already full: give the task the minimum footprint.
            need = 1
            earliest_ok = slots
        deadline_slot = int(rng.integers(earliest_ok, slots + 1))
        nvp_load[nvp] = load_before + need
        power_mw = float(rng.uniform(8.0, 55.0))
        tasks.append(
            Task(
                name=f"t{i}",
                execution_time=need * slot_seconds,
                deadline=deadline_slot * slot_seconds,
                power=round(power_mw, 1) * _MW,
                nvp=nvp,
            )
        )

    # Dependences must be deadline- and order-consistent: producer has
    # the earlier deadline.  Draw edges among index pairs (a, b) with
    # deadline(a) <= deadline(b), rejecting duplicates.
    order = sorted(range(num_tasks), key=lambda i: tasks[i].deadline)
    edges: List[Tuple[str, str]] = []
    attempts = 0
    while len(edges) < num_edges and attempts < 50:
        attempts += 1
        a, b = sorted(rng.choice(num_tasks, size=2, replace=False).tolist(),
                      key=order.index)
        pair = (tasks[a].name, tasks[b].name)
        producer, consumer = tasks[a], tasks[b]
        if pair in edges:
            continue
        # Consumer must still fit after the producer finishes.
        if producer.deadline + consumer.execution_time > consumer.deadline:
            continue
        edges.append(pair)

    graph = TaskGraph(tasks, edges, name=name or f"random-{seed}")
    return graph


def random_case(case: int) -> TaskGraph:
    """The three fixed random benchmarks used in the paper's figures."""
    seeds = {1: 1015, 2: 2015, 3: 3015}
    if case not in seeds:
        raise ValueError(f"random case must be 1, 2 or 3, got {case}")
    return random_benchmark(seeds[case], name=f"random-case-{case}")


def paper_benchmarks() -> Dict[str, TaskGraph]:
    """The six benchmarks evaluated in Figure 8, in paper order."""
    return {
        "random1": random_case(1),
        "random2": random_case(2),
        "random3": random_case(3),
        "WAM": wam(),
        "ECG": ecg(),
        "SHM": shm(),
    }
