"""Parametric workload generation for design-space sweeps.

The paper evaluates on three fixed applications plus small random
graphs; studying *when* long-term scheduling pays off needs workloads
whose pressure on the energy supply is a controlled knob.  This module
provides the standard machinery:

* :func:`uunifast` — the UUniFast algorithm (Bini & Buttazzo):
  unbiased sampling of per-task utilisation shares with a fixed sum;
* :func:`generate_workload` — builds a feasible :class:`TaskGraph`
  from a :class:`WorkloadSpec`: target *power utilisation* (mean task
  power demand as a fraction of a power budget, e.g. the panel's peak
  output), a dependence-structure family (independent / chain /
  fork-join / layered DAG), and an NVP count.

Generated sets always satisfy the per-NVP demand-bound feasibility
check (a fully-powered node could meet every deadline), so any misses
in simulation are attributable to energy, not to over-subscription.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

import numpy as np

from .graph import TaskGraph
from .task import Task

__all__ = ["uunifast", "WorkloadSpec", "generate_workload", "STRUCTURES"]

STRUCTURES = ("independent", "chain", "fork_join", "layered")


def uunifast(
    num_tasks: int, total_utilization: float, rng: np.random.Generator
) -> np.ndarray:
    """Unbiased utilisation shares summing to ``total_utilization``."""
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    if not total_utilization > 0:
        raise ValueError(
            f"total_utilization must be > 0, got {total_utilization}"
        )
    shares = np.empty(num_tasks)
    remaining = total_utilization
    for i in range(num_tasks - 1):
        next_remaining = remaining * rng.random() ** (
            1.0 / (num_tasks - i - 1)
        )
        shares[i] = remaining - next_remaining
        remaining = next_remaining
    shares[-1] = remaining
    return shares


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of a generated workload.

    Parameters
    ----------
    num_tasks:
        Task count.
    utilization:
        Mean power the full task set demands, as a fraction of
        ``power_budget`` (e.g. 1.0 = the whole panel peak if everything
        ran all period).
    power_budget:
        Reference power, watts (default: the paper panel's 94.5 mW).
    structure:
        One of :data:`STRUCTURES`.
    num_nvps:
        Processor count; tasks are spread round-robin.
    period_seconds / slot_seconds:
        Time structure; execution times are whole slots.
    """

    num_tasks: int = 6
    utilization: float = 0.4
    power_budget: float = 0.0945
    structure: str = "independent"
    num_nvps: int = 2
    period_seconds: float = 600.0
    slot_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if not 0.0 < self.utilization:
            raise ValueError("utilization must be > 0")
        if not self.power_budget > 0:
            raise ValueError("power_budget must be > 0")
        if self.structure not in STRUCTURES:
            raise ValueError(
                f"structure must be one of {STRUCTURES}, got "
                f"{self.structure!r}"
            )
        if self.num_nvps < 1:
            raise ValueError("num_nvps must be >= 1")
        if self.period_seconds < self.slot_seconds > 0 or not (
            self.slot_seconds > 0
        ):
            raise ValueError("need 0 < slot_seconds <= period_seconds")


def _edges_for(
    structure: str, num_tasks: int, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """Dependence pairs (by index, producer < consumer)."""
    if structure == "independent" or num_tasks < 2:
        return []
    if structure == "chain":
        return [(i, i + 1) for i in range(num_tasks - 1)]
    if structure == "fork_join":
        middles = list(range(1, num_tasks - 1))
        edges = [(0, m) for m in middles]
        if num_tasks >= 3:
            edges += [(m, num_tasks - 1) for m in middles]
        else:
            edges = [(0, 1)]
        return edges
    if structure == "layered":
        num_layers = max(2, int(math.sqrt(num_tasks)))
        layers: List[List[int]] = [[] for _ in range(num_layers)]
        for i in range(num_tasks):
            layers[min(i * num_layers // num_tasks, num_layers - 1)].append(i)
        edges = []
        for upper, lower in zip(layers[:-1], layers[1:]):
            for consumer in lower:
                producers = rng.choice(
                    upper, size=min(len(upper), 2), replace=False
                )
                for p in producers:
                    edges.append((int(p), consumer))
        return edges
    raise AssertionError(structure)


#: Random-layout retries before falling back to the deterministic
#: repair (high-utilization specs can make the random layout fail with
#: probability near one; unbounded retries used to hit the recursion
#: limit there).
_MAX_ATTEMPTS = 64


def generate_workload(spec: WorkloadSpec, seed: int = 0) -> TaskGraph:
    """Build a feasible task graph matching the spec.

    Per-task energies follow UUniFast shares of the total demand
    ``utilization * power_budget * period``; execution times are drawn
    as whole slots and powers derived from energy/time (clamped to a
    sane mW range).  Deadlines are laid out topologically: each task's
    deadline leaves room for its own work after the latest-deadline
    producer and keeps per-NVP cumulative demand feasible.

    The random layout occasionally produces an infeasible set (crowded
    NVP); it is retried with derived seeds, and after
    :data:`_MAX_ATTEMPTS` failures a deterministic repair shrinks
    execution times to the per-NVP capacity and places every deadline
    at the period end, which is feasible by construction.
    """
    for attempt in range(_MAX_ATTEMPTS):
        graph = _generate_once(spec, seed + attempt * 10_007)
        if graph.feasible_in(spec.period_seconds, spec.slot_seconds):
            return graph
    return _generate_once(spec, seed, repair=True)


def _generate_once(
    spec: WorkloadSpec, seed: int, repair: bool = False
) -> TaskGraph:
    rng = np.random.default_rng(seed)
    n = spec.num_tasks
    slots = int(round(spec.period_seconds / spec.slot_seconds))
    total_energy = (
        spec.utilization * spec.power_budget * spec.period_seconds
    )
    shares = uunifast(n, 1.0, rng)
    energies = np.maximum(shares * total_energy, 1e-4)

    edges_idx = _edges_for(spec.structure, n, rng)
    preds: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges_idx:
        preds[b].append(a)

    # Execution times: whole slots, bounded so chains fit the period.
    depth = np.zeros(n, dtype=int)
    for i in range(n):
        depth[i] = 1 + max((depth[p] for p in preds[i]), default=0)
    max_depth = int(depth.max())
    max_exec_slots = max(slots // (2 * max_depth), 1)

    exec_slots = rng.integers(1, max_exec_slots + 1, size=n)
    # Tasks whose energy would need more than the node's per-task
    # power ceiling get stretched instead of clamped, preserving the
    # requested total demand (up to the depth bound).
    power_ceiling = 0.08
    min_slots = np.ceil(
        energies / (power_ceiling * spec.slot_seconds) - 1e-9
    ).astype(int)
    exec_slots = np.clip(
        np.maximum(exec_slots, min_slots), 1, max_exec_slots
    )

    nvp_of = [i % spec.num_nvps for i in range(n)]
    if repair:
        # Deterministic fallback: shrink the largest tasks of any
        # over-subscribed NVP until its demand fits the period, and put
        # every deadline at the period end — feasible by construction.
        for nvp in range(spec.num_nvps):
            members = [i for i in range(n) if nvp_of[i] == nvp]
            if len(members) > slots:
                raise ValueError(
                    f"spec is infeasible: {len(members)} tasks on NVP "
                    f"{nvp} but only {slots} slots per period"
                )
            while sum(int(exec_slots[i]) for i in members) > slots:
                largest = max(members, key=lambda i: exec_slots[i])
                exec_slots[largest] -= 1
        deadline_slots = np.full(n, slots, dtype=int)
        exec_times = exec_slots * spec.slot_seconds
        powers = np.clip(energies / exec_times, 2e-3, power_ceiling)
        return _assemble(spec, seed, exec_times, deadline_slots,
                         powers, nvp_of, edges_idx)

    exec_times = exec_slots * spec.slot_seconds
    powers = np.clip(energies / exec_times, 2e-3, power_ceiling)

    # Deadlines: topological layout honouring producers and NVP load.
    nvp_cumulative = [0] * spec.num_nvps
    deadline_slots = np.zeros(n, dtype=int)
    for i in range(n):  # indices are already topologically ordered
        after_producers = max(
            (deadline_slots[p] for p in preds[i]), default=0
        )
        nvp_cumulative[nvp_of[i]] += int(exec_slots[i])
        earliest = max(after_producers + int(exec_slots[i]),
                       nvp_cumulative[nvp_of[i]])
        if earliest > slots:
            earliest = slots  # keep in range; feasibility check below
        latest = slots
        deadline_slots[i] = int(rng.integers(earliest, latest + 1))

    return _assemble(spec, seed, exec_times, deadline_slots, powers,
                     nvp_of, edges_idx)


def _assemble(
    spec: WorkloadSpec,
    seed: int,
    exec_times: np.ndarray,
    deadline_slots: np.ndarray,
    powers: np.ndarray,
    nvp_of: List[int],
    edges_idx: List[Tuple[int, int]],
) -> TaskGraph:
    tasks = [
        Task(
            name=f"t{i}",
            execution_time=float(exec_times[i]),
            deadline=float(deadline_slots[i] * spec.slot_seconds),
            power=float(round(powers[i], 6)),
            nvp=nvp_of[i],
        )
        for i in range(len(exec_times))
    ]
    edges = [(f"t{a}", f"t{b}") for a, b in edges_idx]
    return TaskGraph(
        tasks, edges, name=f"{spec.structure}-u{spec.utilization:g}-s{seed}"
    )
