"""Reproduction of "Deadline-aware Task Scheduling for Solar-powered
Nonvolatile Sensor Nodes with Global Energy Migration" (DAC 2015).

Public API layers:

* :mod:`repro.timeline`, :mod:`repro.tasks` — time structure and task
  model;
* :mod:`repro.solar` — irradiance, panel, traces and predictors;
* :mod:`repro.energy` — regulators, super capacitors, migration and
  sizing;
* :mod:`repro.node` — the dual-channel sensor node architecture;
* :mod:`repro.sim` — the slot-level simulator;
* :mod:`repro.schedulers` — baseline policies;
* :mod:`repro.core` — the paper's contribution: offline long-term DMR
  optimisation, the DBN, and the online deadline-aware scheduler;
* :mod:`repro.reliability` — fault injection and robustness studies;
* :mod:`repro.obs` — structured tracing, metrics, profiling and run
  manifests (off by default, zero-cost when disabled);
* :mod:`repro.analysis` — bootstrap statistics for comparisons;
* :mod:`repro.experiments` — one runner per paper table/figure;
* :mod:`repro.cli` — ``python -m repro`` command-line interface.

Quickstart::

    from repro import quick_node, simulate
    from repro.tasks import wam
    from repro.solar import four_day_trace
    from repro.timeline import Timeline
    from repro.schedulers import InterTaskScheduler

    tl = Timeline(num_days=4, periods_per_day=144,
                  slots_per_period=20, slot_seconds=30.0)
    trace = four_day_trace(tl)
    graph = wam()
    node = quick_node(graph)
    result = simulate(node, graph, trace, InterTaskScheduler())
    print(result.dmr, result.energy_utilization)
"""

from __future__ import annotations

from typing import Sequence

from .timeline import SlotIndex, Timeline
from .sim.engine import simulate
from .node.node import SensorNode
from .energy.capacitor import SuperCapacitor
from .tasks.graph import TaskGraph

__version__ = "1.0.0"

__all__ = [
    "Timeline",
    "SlotIndex",
    "simulate",
    "SensorNode",
    "quick_node",
    "__version__",
]

#: Default distributed bank used when no sizing run is available,
#: spanning the small/large trade-off of the paper's Table 2.
DEFAULT_BANK_FARADS: Sequence[float] = (1.0, 4.7, 10.0, 47.0)


def quick_node(
    graph: TaskGraph,
    capacitances: Sequence[float] = DEFAULT_BANK_FARADS,
    **node_kwargs,
) -> SensorNode:
    """A ready-to-run node for the given task set.

    Builds a :class:`SensorNode` with the default panel and a
    distributed capacitor bank of the given sizes; for properly sized
    banks use :func:`repro.energy.size_bank`.
    """
    caps = [SuperCapacitor(capacitance=c) for c in capacitances]
    return SensorNode(caps, num_nvps=graph.num_nvps, **node_kwargs)
