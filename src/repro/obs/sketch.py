"""Memory-bounded mergeable aggregates: counters, histograms, quantiles.

ROADMAP item 3 (fleet aggregation at 100k–1M nodes) cannot hold every
per-node number in memory; these sketches are the streaming
replacement.  Each one is O(bins) / O(1) in memory regardless of how
many values it absorbs, and the two mergeable kinds obey an
**associative, commutative ``merge()`` contract**:

``a.merge(b).merge(c)`` equals ``a.merge(b.merge(c))`` — exactly for
every integer field (bin counts, totals, min/max) and up to float
summation order for ``sum`` — so shard-level sketches fold into fleet
aggregates in any grouping or order (guarded by hypothesis tests).

* :class:`CounterBag` — named integer/float counters; merge adds.
* :class:`FixedHistogram` — fixed-bin counts with exact ``count`` /
  ``min`` / ``max`` / ``sum``; quantile queries interpolate inside a
  bin, so the error is bounded by one bin width.  Linear bins suit
  DMR/utilization on [0, 1]; logarithmic bins suit throughputs.
* :class:`P2Quantile` — the classic P² streaming estimator (Jain &
  Chlamtac 1985): five markers, one quantile, no stored samples.
  **Not mergeable** — it is a per-stream estimator for live readouts
  (e.g. the fleet heartbeat's running median DMR); cross-shard
  aggregation uses :class:`FixedHistogram`.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SKETCH_SCHEMA", "CounterBag", "FixedHistogram", "P2Quantile"]

#: Version stamp for serialized sketches.
SKETCH_SCHEMA = 1


class CounterBag:
    """Named counters with an additive merge."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[str, float]] = None) -> None:
        self._counts: Dict[str, float] = dict(counts or {})

    def inc(self, name: str, value: float = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + value

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0)

    def items(self):
        return sorted(self._counts.items())

    def merge(self, other: "CounterBag") -> "CounterBag":
        merged = dict(self._counts)
        for name, value in other._counts.items():
            merged[name] = merged.get(name, 0) + value
        return CounterBag(merged)

    def to_dict(self) -> Dict[str, object]:
        return {"schema": SKETCH_SCHEMA, "counts": dict(self._counts)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CounterBag":
        return cls(dict(data.get("counts") or {}))


class FixedHistogram:
    """Fixed-bin histogram with exact count/sum/min/max sidecars.

    Values outside ``[edges[0], edges[-1]]`` are clamped into the
    first/last bin (``min``/``max`` stay exact, so the clamp is
    visible).  Bin assignment matches ``np.histogram``: each inner
    boundary belongs to the bin on its right, the top edge to the last
    bin.
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("need at least two bin edges")
        if not np.all(np.diff(edges) > 0):
            raise ValueError("bin edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(len(edges) - 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- constructors ---------------------------------------------------
    @classmethod
    def linear(cls, lo: float, hi: float, bins: int) -> "FixedHistogram":
        """``bins`` equal-width bins over ``[lo, hi]`` (DMR on [0, 1])."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        return cls(np.linspace(float(lo), float(hi), bins + 1))

    @classmethod
    def logarithmic(
        cls, lo: float, hi: float, bins: int
    ) -> "FixedHistogram":
        """``bins`` log-spaced bins over ``[lo, hi]`` (throughputs)."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        if not 0 < lo < hi:
            raise ValueError(
                f"log bins need 0 < lo < hi, got [{lo}, {hi}]"
            )
        return cls(np.geomspace(float(lo), float(hi), bins + 1))

    # -- ingestion ------------------------------------------------------
    def add(self, value: float) -> "FixedHistogram":
        return self.add_many((value,))

    def add_many(self, values: Iterable[float]) -> "FixedHistogram":
        arr = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=float)
        if arr.size == 0:
            return self
        idx = np.clip(
            np.searchsorted(self.edges, arr, side="right") - 1,
            0,
            len(self.counts) - 1,
        )
        np.add.at(self.counts, idx, 1)
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def bin_width(self) -> float:
        """Widest bin: the quantile error bound."""
        return float(np.diff(self.edges).max())

    # -- merge contract -------------------------------------------------
    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        """Associative, commutative fold; edges must match exactly."""
        if not isinstance(other, FixedHistogram):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge histograms with different edges")
        merged = FixedHistogram(self.edges)
        merged.counts = self.counts + other.counts
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    # -- queries --------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile.

        Guaranteed within one bin width of the nearest-rank sample
        (``sorted(values)[floor(q * (n - 1))]``, numpy's
        ``method="lower"``): the estimate interpolates the rank inside
        the bin that *contains* that sample and clamps to the exact
        observed ``[min, max]``.  Monotone in ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("empty histogram has no quantiles")
        rank = q * (self.count - 1)
        cum = 0
        for i, c in enumerate(self.counts):
            c = int(c)
            if c and rank < cum + c:
                frac = (rank - cum + 1.0) / (c + 1.0)
                width = self.edges[i + 1] - self.edges[i]
                value = float(self.edges[i] + frac * width)
                return min(max(value, self.min), self.max)
            cum += c
        return self.max

    def percentiles(
        self, percentiles: Sequence[float] = (5, 25, 50, 75, 95, 99)
    ) -> Dict[str, float]:
        return {
            f"p{p:g}": self.quantile(p / 100.0) for p in percentiles
        }

    def downsample(self, bins: int) -> Tuple[List[int], List[float]]:
        """Coarse ``(counts, edges)`` view; ``bins`` must divide ours."""
        ours = len(self.counts)
        if bins < 1 or ours % bins:
            raise ValueError(
                f"requested {bins} bins do not evenly divide {ours}"
            )
        factor = ours // bins
        counts = self.counts.reshape(bins, factor).sum(axis=1)
        return counts.astype(int).tolist(), self.edges[::factor].tolist()

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SKETCH_SCHEMA,
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FixedHistogram":
        hist = cls(data["edges"])
        hist.counts = np.asarray(data["counts"], dtype=np.int64)
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min = math.inf if data.get("min") is None else float(data["min"])
        hist.max = (
            -math.inf if data.get("max") is None else float(data["max"])
        )
        return hist


class P2Quantile:
    """Streaming single-quantile estimator (the P² algorithm).

    Five markers track the target quantile without storing samples;
    below five observations the estimate is exact (sorted-list
    interpolation).  Per-stream only — see the module docstring for
    why merging across streams goes through :class:`FixedHistogram`.
    """

    __slots__ = ("p", "count", "_init", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._init: List[float] = []
        self._q: List[float] = []
        self._n: List[float] = []
        self._np: List[float] = []
        self._dn: List[float] = []

    def add(self, value: float) -> "P2Quantile":
        v = float(value)
        self.count += 1
        if not self._q:
            bisect.insort(self._init, v)
            if len(self._init) == 5:
                p = self.p
                self._q = list(self._init)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [
                    1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0,
                ]
                self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
            return self

        q, n = self._q, self._n
        if v < q[0]:
            q[0] = v
            k = 0
        elif v >= q[4]:
            q[4] = v
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if v >= q[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]

        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, d)
                n[i] += d
        return self

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate; exact while fewer than five samples."""
        if self.count == 0:
            raise ValueError("empty sketch has no quantile")
        if self._q:
            return float(self._q[2])
        rank = self.p * (len(self._init) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(self._init) - 1)
        frac = rank - lo
        return float(
            self._init[lo] + frac * (self._init[hi] - self._init[lo])
        )

    def estimate(self, default: float = math.nan) -> float:
        """Like :meth:`value` but returns ``default`` when empty."""
        return self.value() if self.count else default
