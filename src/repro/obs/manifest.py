"""Run provenance manifests.

A :class:`RunManifest` ties one result to everything needed to
reproduce it: the seed, scheduler, benchmark, timeline shape, a hash
of the configuration, the git revision of the code, and the headline
metrics.  Experiment runners write a manifest next to each results
file; ``RunManifest.fingerprint()`` hashes only the deterministic
fields, so two runs of the same configuration at the same revision
produce the same fingerprint regardless of when or how fast they ran.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import time
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "RunManifest",
    "build_manifest",
    "git_revision",
    "config_digest",
    "MANIFEST_SCHEMA",
]

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """HEAD commit SHA of the repository holding this code, or None."""
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_digest(config: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a config dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class RunManifest:
    """Provenance record of one simulation/experiment run."""

    name: str
    seed: Optional[int]
    scheduler: Optional[str]
    benchmark: Optional[str]
    timeline: Dict[str, object]
    config: Dict[str, object]
    config_hash: str
    result_summary: Dict[str, object]
    git_sha: Optional[str]
    created_utc: str
    wall_time_s: float
    version: str
    schema: int = MANIFEST_SCHEMA

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Hash of the deterministic fields only.

        Excludes ``created_utc`` and ``wall_time_s`` so re-running the
        same configuration at the same revision reproduces the value.
        """
        det = {
            "schema": self.schema,
            "name": self.name,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "benchmark": self.benchmark,
            "timeline": self.timeline,
            "config_hash": self.config_hash,
            "result_summary": self.result_summary,
            "git_sha": self.git_sha,
            "version": self.version,
        }
        return config_digest(det)

    def to_dict(self) -> Dict[str, object]:
        rec = dataclasses.asdict(self)
        rec["fingerprint"] = self.fingerprint()
        return rec

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        data.pop("fingerprint", None)
        return cls(**data)


def build_manifest(
    name: str,
    *,
    seed: Optional[int] = None,
    scheduler: Optional[str] = None,
    benchmark: Optional[str] = None,
    timeline: Optional[Dict[str, object]] = None,
    config: Optional[Dict[str, object]] = None,
    result_summary: Optional[Dict[str, object]] = None,
    wall_time_s: float = 0.0,
    git_sha: Optional[str] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest`, filling provenance defaults."""
    from .. import __version__

    config = dict(config or {})
    return RunManifest(
        name=name,
        seed=seed,
        scheduler=scheduler,
        benchmark=benchmark,
        timeline=dict(timeline or {}),
        config=config,
        config_hash=config_digest(config),
        result_summary=dict(result_summary or {}),
        git_sha=git_sha if git_sha is not None else git_revision(),
        created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_time_s=float(wall_time_s),
        version=__version__,
    )


def timeline_dict(timeline) -> Dict[str, object]:
    """The manifest representation of a :class:`~repro.timeline.Timeline`."""
    return {
        "num_days": timeline.num_days,
        "periods_per_day": timeline.periods_per_day,
        "slots_per_period": timeline.slots_per_period,
        "slot_seconds": timeline.slot_seconds,
    }


__all__.append("timeline_dict")
