"""Counters, gauges and histograms for the simulator.

A :class:`MetricsRegistry` is a flat, name-keyed collection of three
instrument kinds, deliberately close to the Prometheus vocabulary so
names transfer (``slots_simulated_total``, ``brownout_slots_total``,
``coarse_pass_seconds``, ...).  Zero dependencies; a registry is cheap
to create and cheap to snapshot, so every :class:`~repro.obs.events.Observer`
carries one.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (e.g. ``brownout_slots_total``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Point-in-time value (e.g. active capacitor voltage)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max/last — enough for per-phase timing reports
    without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g})"
        )


class MetricsRegistry:
    """Name-keyed counters/gauges/histograms with get-or-create access."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "mean": h.mean,
                }
                for n, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable one-line-per-instrument report."""
        lines = []
        for name, c in sorted(self.counters.items()):
            lines.append(f"{name:<40} {c.value}")
        for name, g in sorted(self.gauges.items()):
            lines.append(f"{name:<40} {g.value:.6g}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"{name:<40} n={h.count} mean={h.mean:.3e} "
                f"min={h.min if h.count else 0.0:.3e} "
                f"max={h.max if h.count else 0.0:.3e}"
            )
        return "\n".join(lines)
