"""Observability for the simulator and experiment harness.

Zero-dependency tracing, metrics, profiling and run provenance:

* :mod:`repro.obs.events` — typed event bus (:class:`Observer`) with
  a disabled :data:`NULL_OBSERVER` default the engine uses when no
  observer is supplied;
* :mod:`repro.obs.metrics` — counters/gauges/histograms;
* :mod:`repro.obs.profile` — per-phase wall-time profiling;
* :mod:`repro.obs.sinks` — JSONL trace files, ring buffers, console
  summaries, and the ``repro obs summarize`` renderer;
* :mod:`repro.obs.manifest` — reproducibility manifests written next
  to experiment results.

Quickstart::

    from repro.obs import Observer, JsonlSink

    obs = Observer(sinks=[JsonlSink("trace.jsonl")])
    result = simulate(node, graph, trace, scheduler, observer=obs)
    obs.finish(result.summary(), scheduler=result.scheduler_name)
    obs.close()
"""

from __future__ import annotations

from .events import (
    BrownoutEvent,
    CapacitorSwitchEvent,
    CheckpointEvent,
    CoarseDecisionEvent,
    DeadlineMissEvent,
    DeltaFallbackEvent,
    Event,
    FaultInjectionEvent,
    FaultScenarioEvent,
    FleetShardEvent,
    InvariantViolationEvent,
    NULL_OBSERVER,
    Observer,
    PeriodEndEvent,
    PolicyFallbackEvent,
    SlotDecisionEvent,
)
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    config_digest,
    git_revision,
    timeline_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import NULL_SPAN, PhaseProfiler, PhaseStat
from .sinks import (
    ConsoleSummarySink,
    JsonlSink,
    RingBufferSink,
    read_jsonl,
    summarize_jsonl,
)

__all__ = [
    "Event",
    "SlotDecisionEvent",
    "DeadlineMissEvent",
    "BrownoutEvent",
    "CapacitorSwitchEvent",
    "CoarseDecisionEvent",
    "DeltaFallbackEvent",
    "PeriodEndEvent",
    "FaultInjectionEvent",
    "PolicyFallbackEvent",
    "FaultScenarioEvent",
    "CheckpointEvent",
    "InvariantViolationEvent",
    "FleetShardEvent",
    "Observer",
    "NULL_OBSERVER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseStat",
    "NULL_SPAN",
    "JsonlSink",
    "RingBufferSink",
    "ConsoleSummarySink",
    "read_jsonl",
    "summarize_jsonl",
    "RunManifest",
    "build_manifest",
    "git_revision",
    "config_digest",
    "timeline_dict",
    "MANIFEST_SCHEMA",
]
