"""Observability for the simulator and experiment harness.

Zero-dependency tracing, metrics, profiling and run provenance:

* :mod:`repro.obs.events` — typed event bus (:class:`Observer`) with
  a disabled :data:`NULL_OBSERVER` default the engine uses when no
  observer is supplied;
* :mod:`repro.obs.metrics` — counters/gauges/histograms;
* :mod:`repro.obs.profile` — per-phase wall-time profiling;
* :mod:`repro.obs.sinks` — JSONL trace files, ring buffers, console
  summaries, and the ``repro obs summarize`` renderer;
* :mod:`repro.obs.manifest` — reproducibility manifests written next
  to experiment results;
* :mod:`repro.obs.trace` — hierarchical spans with deterministic ids
  that survive process boundaries (``repro obs trace`` reassembles a
  multi-worker run into one rooted tree);
* :mod:`repro.obs.sketch` — memory-bounded mergeable aggregates
  (counters, fixed-bin histograms, P² quantiles) with an associative
  ``merge()`` for shard → fleet fold-ins.

Quickstart::

    from repro.obs import Observer, JsonlSink

    obs = Observer(sinks=[JsonlSink("trace.jsonl")])
    result = simulate(node, graph, trace, scheduler, observer=obs)
    obs.finish(result.summary(), scheduler=result.scheduler_name)
    obs.close()
"""

from __future__ import annotations

from .events import (
    BrownoutEvent,
    CacheWriteFailedEvent,
    CapacitorSwitchEvent,
    CheckpointEvent,
    CoarseDecisionEvent,
    DeadlineMissEvent,
    DeltaFallbackEvent,
    Event,
    FaultInjectionEvent,
    FaultScenarioEvent,
    FleetShardEvent,
    InvariantViolationEvent,
    KNOWN_RECORD_KINDS,
    NodeQuarantinedEvent,
    NULL_OBSERVER,
    Observer,
    PeriodEndEvent,
    PolicyFallbackEvent,
    PoolDecisionEvent,
    ShardTimeoutEvent,
    SlotDecisionEvent,
    TaskRetryEvent,
    WorkerLostEvent,
)
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    config_digest,
    git_revision,
    timeline_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import NULL_SPAN, PhaseProfiler, PhaseStat
from .sinks import (
    ConsoleSummarySink,
    HeartbeatSink,
    JsonlSink,
    OBS_SCHEMA,
    RingBufferSink,
    read_jsonl,
    summarize_jsonl,
)
from .sketch import SKETCH_SCHEMA, CounterBag, FixedHistogram, P2Quantile
from .trace import (
    NULL_TRACER,
    SPAN_SCHEMA,
    SpanContext,
    SpanTree,
    Tracer,
    activate,
    build_span_tree,
    collecting_tracer,
    current_tracer,
    derive_span_id,
    derive_trace_id,
    render_span_tree,
)

__all__ = [
    "Event",
    "SlotDecisionEvent",
    "DeadlineMissEvent",
    "BrownoutEvent",
    "CapacitorSwitchEvent",
    "CoarseDecisionEvent",
    "DeltaFallbackEvent",
    "PeriodEndEvent",
    "FaultInjectionEvent",
    "PolicyFallbackEvent",
    "FaultScenarioEvent",
    "CheckpointEvent",
    "InvariantViolationEvent",
    "FleetShardEvent",
    "PoolDecisionEvent",
    "TaskRetryEvent",
    "WorkerLostEvent",
    "ShardTimeoutEvent",
    "NodeQuarantinedEvent",
    "CacheWriteFailedEvent",
    "KNOWN_RECORD_KINDS",
    "Observer",
    "NULL_OBSERVER",
    "Tracer",
    "NULL_TRACER",
    "SpanContext",
    "SpanTree",
    "SPAN_SCHEMA",
    "derive_trace_id",
    "derive_span_id",
    "current_tracer",
    "activate",
    "collecting_tracer",
    "build_span_tree",
    "render_span_tree",
    "CounterBag",
    "FixedHistogram",
    "P2Quantile",
    "SKETCH_SCHEMA",
    "OBS_SCHEMA",
    "HeartbeatSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseStat",
    "NULL_SPAN",
    "JsonlSink",
    "RingBufferSink",
    "ConsoleSummarySink",
    "read_jsonl",
    "summarize_jsonl",
    "RunManifest",
    "build_manifest",
    "git_revision",
    "config_digest",
    "timeline_dict",
    "MANIFEST_SCHEMA",
]
