"""Phase profiling for the simulation engine.

The engine's hot path decomposes into a handful of phases — the coarse
per-period hook, the per-slot loop, the leakage update, the DBN
forward pass.  :class:`PhaseProfiler` accumulates wall time per phase
via ``time.perf_counter``, either through the :meth:`~PhaseProfiler.span`
context manager or through direct :meth:`~PhaseProfiler.add` calls
where a ``with`` block would sit in a too-hot loop.

When profiling is off the engine uses :data:`NULL_SPAN`, a shared
no-op context manager, so the disabled path costs one attribute load.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

__all__ = ["PhaseStat", "PhaseProfiler", "NULL_SPAN"]


class PhaseStat:
    """Accumulated timing of one named phase."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Span:
    """``with profiler.span(name):`` — times the enclosed block."""

    __slots__ = ("_profiler", "_name", "_t0", "elapsed")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = perf_counter() - self._t0
        self._profiler.add(self._name, self.elapsed)


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: Singleton no-op context manager returned when profiling is disabled.
NULL_SPAN = _NullSpan()


class PhaseProfiler:
    """Per-phase wall-time accumulator."""

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStat] = {}

    def span(self, name: str) -> _Span:
        """Context manager timing one occurrence of ``name``."""
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record one occurrence of ``name`` taking ``seconds``."""
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat()
        stat.add(seconds)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe dump: phase -> {count, total_s, mean_s, min_s, max_s}."""
        return {
            name: {
                "count": stat.count,
                "total_s": stat.total,
                "mean_s": stat.mean,
                "min_s": stat.min if stat.count else 0.0,
                "max_s": stat.max,
            }
            for name, stat in sorted(self.phases.items())
        }

    def render(self) -> str:
        """Aligned per-phase timing table, heaviest phase first."""
        if not self.phases:
            return "(no phases recorded)"
        rows = sorted(
            self.phases.items(), key=lambda kv: kv[1].total, reverse=True
        )
        lines = [
            f"{'phase':<20} {'count':>8} {'total s':>10} "
            f"{'mean ms':>10} {'max ms':>10}"
        ]
        for name, stat in rows:
            lines.append(
                f"{name:<20} {stat.count:>8} {stat.total:>10.4f} "
                f"{stat.mean * 1e3:>10.4f} {stat.max * 1e3:>10.4f}"
            )
        return "\n".join(lines)
