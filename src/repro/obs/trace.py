"""Hierarchical tracing: spans with parent identity across processes.

The event bus of :mod:`repro.obs.events` sees *flat* per-process
streams; this module adds the missing structure.  A :class:`Tracer`
opens nested spans (offline training, LUT build, fleet run → shard →
node, verify sections, experiment cells) and emits one ``span`` record
per closed span through whatever sink the observer already has.  Span
records carry ``trace`` / ``span`` / ``parent`` identifiers, so a run
that fanned out over a process pool reassembles into a single rooted
tree afterwards (:func:`build_span_tree` / :func:`render_span_tree`,
surfaced as ``repro obs trace``).

Two properties keep this compatible with the repo's determinism
contracts:

* **Replay-stable IDs.**  Span ids are *derived*, not random:
  ``span_id = sha256(trace_id, parent_id, name, key)[:16]`` where
  ``key`` is an explicit stable discriminator (shard index, node id)
  or, by default, the span's per-``(parent, name)`` sequence number.
  The trace id itself derives from run inputs (seeds, sizes), so the
  same run produces the same tree — wall-clock timings are the only
  nondeterministic fields.
* **Zero cost when off.**  :data:`NULL_TRACER` is the disabled
  singleton; its ``span()`` returns a shared no-op handle after one
  attribute check, mirroring ``NULL_OBSERVER``.  The engine hot loop
  is never touched — spans wrap whole stages, and the existing
  bit-identity tests guard the disabled path.

Cross-process propagation uses a tiny wire format:
``SpanContext.to_wire()`` → ``"<trace_id>/<span_id>"`` travels inside
the pickled work item; the worker rebuilds a :func:`collecting_tracer`
whose records are returned with the result and re-emitted by the
parent, parented under the originating span.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import hashlib
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SPAN_SCHEMA",
    "SpanContext",
    "Tracer",
    "NULL_TRACER",
    "derive_trace_id",
    "derive_span_id",
    "current_tracer",
    "activate",
    "collecting_tracer",
    "SpanTree",
    "build_span_tree",
    "render_span_tree",
]

#: Version stamp of the ``span`` record layout.
SPAN_SCHEMA = 1

#: Hex chars kept from the sha256 digest (64 bits of id space).
_ID_HEX = 16


def _digest(*parts: object) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return h.hexdigest()[:_ID_HEX]


def derive_trace_id(*parts: object) -> str:
    """Deterministic trace id from run inputs (seeds, sizes, names)."""
    return _digest("trace", *parts)


def derive_span_id(
    trace_id: str, parent_id: Optional[str], name: str, key: object
) -> str:
    """Deterministic span id: pure function of position in the tree."""
    return _digest("span", trace_id, parent_id or "", name, key)


def _json_safe(value):
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


@dataclasses.dataclass(frozen=True)
class SpanContext:
    """The propagatable part of a tracer: trace id + active span id."""

    trace_id: str
    span_id: Optional[str]

    def to_wire(self) -> str:
        """Serialize for a worker payload (``"<trace>/<span>"``)."""
        return f"{self.trace_id}/{self.span_id or ''}"

    @classmethod
    def from_wire(cls, wire: str) -> "SpanContext":
        trace_id, _, span_id = wire.partition("/")
        return cls(trace_id=trace_id, span_id=span_id or None)


class _SpanHandle:
    """One open span; a context manager that emits its record on exit."""

    __slots__ = (
        "_tracer", "id", "parent", "name", "key", "explicit_key",
        "attrs", "_start_unix", "_start_perf",
    )

    def __init__(self, tracer, sid, parent, name, key, explicit_key, attrs):
        self._tracer = tracer
        self.id = sid
        self.parent = parent
        self.name = name
        self.key = key
        self.explicit_key = explicit_key
        self.attrs = attrs

    def annotate(self, **attrs) -> "_SpanHandle":
        """Attach result attributes (dmr, cache_hit, ...) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._tracer._stack.append(self.id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._stack.pop()
        record: Dict[str, object] = {
            "kind": "span",
            "schema": SPAN_SCHEMA,
            "trace": self._tracer.trace_id,
            "span": self.id,
            "parent": self.parent,
            "name": self.name,
            "key": _json_safe(self.key) if self.explicit_key else None,
            "start_unix": self._start_unix,
            "dur_s": time.perf_counter() - self._start_perf,
        }
        if self.attrs:
            record["attrs"] = {
                str(k): _json_safe(v) for k, v in self.attrs.items()
            }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._tracer.emit(record)
        return False


class _NullSpanHandle:
    """Stateless no-op span; shared singleton, nestable."""

    __slots__ = ()
    id = None
    name = None
    key = None
    attrs: Dict[str, object] = {}

    def annotate(self, **attrs) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_HANDLE = _NullSpanHandle()


class Tracer:
    """Opens spans, derives their ids, emits their records.

    Parameters
    ----------
    emit:
        Called with each closed span's record dict (typically
        ``Observer.emit_record`` or ``records.append`` in a worker).
    trace_id:
        The run's trace id (see :func:`derive_trace_id`).
    parent:
        Span id this tracer's top-level spans hang under — ``None``
        for the process that owns the root, the propagated span id in
        workers (see :func:`collecting_tracer`).
    """

    enabled = True

    def __init__(
        self,
        emit: Callable[[Dict[str, object]], None],
        trace_id: str,
        parent: Optional[str] = None,
    ) -> None:
        self._emit_fn = emit
        self.trace_id = trace_id
        self._stack: List[Optional[str]] = [parent]
        self._seq: Dict[Tuple[Optional[str], str], int] = {}

    # ------------------------------------------------------------------
    def span(self, name: str, key: object = None, attrs=None) -> _SpanHandle:
        """Open a span under the currently active one.

        ``key`` disambiguates siblings deterministically across
        processes (pass the shard index / node id); without it the
        per-``(parent, name)`` sequence number is used, which is
        stable for any fixed call order.
        """
        parent = self._stack[-1]
        explicit = key is not None
        if not explicit:
            seq = self._seq.get((parent, name), 0)
            self._seq[(parent, name)] = seq + 1
            key = seq
        sid = derive_span_id(self.trace_id, parent, name, key)
        return _SpanHandle(
            self, sid, parent, name, key, explicit, dict(attrs or {})
        )

    def context(self) -> SpanContext:
        """The propagatable (trace id, active span id) pair."""
        return SpanContext(self.trace_id, self._stack[-1])

    def emit(self, record: Dict[str, object]) -> None:
        """Forward a span record (own or re-emitted from a worker)."""
        self._emit_fn(record)


class _NullTracer:
    """Disabled tracer: one attribute check per call, no records."""

    enabled = False
    trace_id = None

    def span(self, name: str, key: object = None, attrs=None):
        return _NULL_SPAN_HANDLE

    def context(self) -> Optional[SpanContext]:
        return None

    def emit(self, record: Dict[str, object]) -> None:
        return None


#: Disabled singleton — the ambient default, mirroring NULL_OBSERVER.
NULL_TRACER = _NullTracer()


# ----------------------------------------------------------------------
# Ambient tracer (so deep call sites need no threading of arguments)
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless activated)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(tracer) -> Iterator:
    """Make ``tracer`` ambient for the duration of the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def collecting_tracer(wire: Optional[str]):
    """Worker-side tracer parented at a propagated :class:`SpanContext`.

    Returns ``(tracer, records)``: the tracer appends every closed
    span to ``records``, which the worker returns with its result so
    the parent process can re-emit them into the real sinks.  A
    ``None``/empty wire string yields ``(NULL_TRACER, [])`` — the
    untraced path stays free.
    """
    if not wire:
        return NULL_TRACER, []
    ctx = SpanContext.from_wire(wire)
    records: List[Dict[str, object]] = []
    tracer = Tracer(records.append, ctx.trace_id, parent=ctx.span_id)
    return tracer, records


# ----------------------------------------------------------------------
# Reassembly + rendering (the ``repro obs trace`` surface)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpanTree:
    """Span records indexed into a parent/child structure."""

    roots: List[Dict[str, object]]
    orphans: List[Dict[str, object]]
    children: Dict[str, List[Dict[str, object]]]
    by_id: Dict[str, Dict[str, object]]

    @property
    def n_spans(self) -> int:
        return len(self.by_id)

    def child_spans(self, span: Dict[str, object]) -> List[Dict[str, object]]:
        return self.children.get(str(span.get("span")), [])

    def self_seconds(self, span: Dict[str, object]) -> float:
        """Span duration minus its direct children's durations."""
        total = float(span.get("dur_s", 0.0))
        kids = sum(
            float(c.get("dur_s", 0.0)) for c in self.child_spans(span)
        )
        return max(0.0, total - kids)

    def walk(self) -> Iterator[Tuple[int, Dict[str, object]]]:
        """Depth-first ``(depth, span)`` over every rooted span."""
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(self.child_spans(span)):
                stack.append((depth + 1, child))


def _span_order(record: Dict[str, object]):
    return (
        float(record.get("start_unix", 0.0)),
        str(record.get("name")),
        str(record.get("key")),
    )


def build_span_tree(records) -> SpanTree:
    """Index ``span`` records into roots / children / orphans.

    A span whose ``parent`` is ``None`` is a root; one whose parent id
    is missing from the record set is an *orphan* — for a complete
    single-run trace the contract is one root, zero orphans (this is
    what the CI obs job asserts).
    """
    spans = [r for r in records if r.get("kind") == "span"]
    by_id = {str(r["span"]): r for r in spans}
    children: Dict[str, List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    orphans: List[Dict[str, object]] = []
    for record in spans:
        parent = record.get("parent")
        if parent is None:
            roots.append(record)
        elif str(parent) in by_id:
            children.setdefault(str(parent), []).append(record)
        else:
            orphans.append(record)
    roots.sort(key=_span_order)
    for siblings in children.values():
        siblings.sort(key=_span_order)
    return SpanTree(
        roots=roots, orphans=orphans, children=children, by_id=by_id
    )


def _label(record: Dict[str, object]) -> str:
    name = str(record.get("name"))
    key = record.get("key")
    return f"{name}[{key}]" if key is not None else name


def render_span_tree(
    records, top: int = 10, max_children: int = 16
) -> str:
    """Human-readable tree + hot-span table for ``repro obs trace``.

    ``total`` is the span's wall-clock, ``self`` the part not covered
    by its direct children.  Sibling lists longer than
    ``max_children`` are elided to keep big fleets readable; the hot
    table below ranks *every* span by self time regardless.
    """
    tree = build_span_tree(records)
    if not tree.by_id:
        return "no span records"
    trace_ids = sorted({str(r.get("trace")) for r in tree.by_id.values()})
    lines = [
        f"trace {', '.join(trace_ids)}: {tree.n_spans} span(s), "
        f"{len(tree.roots)} root(s), {len(tree.orphans)} orphan(s)"
    ]
    wall = sum(float(r.get("dur_s", 0.0)) for r in tree.roots)
    lines.append(f"{'span':<44} {'total s':>10} {'self s':>10}")
    shown: Dict[Optional[str], int] = {}
    for depth, span in tree.walk():
        parent = span.get("parent")
        shown[parent] = shown.get(parent, 0) + 1
        siblings = (
            len(tree.children.get(str(parent), []))
            if parent is not None
            else len(tree.roots)
        )
        if shown[parent] == max_children + 1:
            pad = "  " * depth
            lines.append(f"{pad}... (+{siblings - max_children} more)")
        if shown[parent] > max_children:
            continue
        pad = "  " * depth
        label = f"{pad}{_label(span)}"
        err = " !" + str(span["error"]) if "error" in span else ""
        lines.append(
            f"{label:<44} {float(span.get('dur_s', 0.0)):>10.4f} "
            f"{tree.self_seconds(span):>10.4f}{err}"
        )
    if tree.orphans:
        lines.append("orphan spans (parent record missing):")
        for record in sorted(tree.orphans, key=_span_order):
            lines.append(
                f"  {_label(record)} (parent {record.get('parent')})"
            )
    hot = sorted(
        tree.by_id.values(), key=tree.self_seconds, reverse=True
    )[: max(0, top)]
    if hot:
        lines.append("")
        lines.append(f"hot spans (top {len(hot)} by self time):")
        for rank, span in enumerate(hot, 1):
            self_s = tree.self_seconds(span)
            share = 100.0 * self_s / wall if wall > 0 else 0.0
            lines.append(
                f"  {rank:>2}. {_label(span):<40} {self_s:>10.4f}s "
                f"{share:>5.1f}%"
            )
    return "\n".join(lines)
