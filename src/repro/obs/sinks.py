"""Event sinks: JSONL trace files, ring buffers, console summaries.

Sinks receive plain dict records from an
:class:`~repro.obs.events.Observer` — one dict per event plus a final
``run_summary`` trailer.  The JSONL format is the interchange point:
``repro obs summarize trace.jsonl`` renders event counts and per-phase
timings from the file alone.
"""

from __future__ import annotations

import collections
import json
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

__all__ = [
    "JsonlSink",
    "RingBufferSink",
    "ConsoleSummarySink",
    "read_jsonl",
    "summarize_jsonl",
]


class JsonlSink:
    """Appends one JSON line per record to ``path``.

    Records are buffered and written in batches of ``buffer_records``
    lines, so a ``--trace`` run pays one file write per batch instead
    of two per event.  The buffer drains on :meth:`flush` (the
    observer calls it at every checkpoint, so a crash loses at most
    one checkpoint interval of events) and on :meth:`close`.
    """

    def __init__(
        self, path: Union[str, Path], buffer_records: int = 512
    ) -> None:
        if buffer_records < 1:
            raise ValueError(
                f"buffer_records must be >= 1, got {buffer_records}"
            )
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._buffer: List[str] = []
        self._buffer_records = buffer_records

    def write(self, record: Dict[str, object]) -> None:
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self._buffer_records:
            self._drain()

    def _drain(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def flush(self) -> None:
        if not self._fh.closed:
            self._drain()
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._drain()
            self._fh.close()


class RingBufferSink:
    """Keeps the last ``capacity`` records in memory."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.records: Deque[Dict[str, object]] = collections.deque(
            maxlen=capacity
        )

    def write(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def kinds(self) -> List[str]:
        """Event kinds in arrival order (handy in tests)."""
        return [str(r.get("kind")) for r in self.records]

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("kind") == kind]

    def __len__(self) -> int:
        return len(self.records)


class ConsoleSummarySink:
    """Counts records per kind; renders a human-readable digest."""

    def __init__(self, stream=None) -> None:
        self.stream = stream
        self.counts: Dict[str, int] = collections.Counter()
        self.trailer: Optional[Dict[str, object]] = None

    def write(self, record: Dict[str, object]) -> None:
        kind = str(record.get("kind"))
        if kind == "run_summary":
            self.trailer = record
        else:
            self.counts[kind] += 1

    def render(self) -> str:
        lines = ["event counts:"]
        for kind, count in sorted(self.counts.items()):
            lines.append(f"  {kind:<24} {count}")
        if not self.counts:
            lines.append("  (none)")
        if self.trailer is not None:
            lines.append(_render_trailer(self.trailer))
        return "\n".join(lines)

    def close(self) -> None:
        if self.stream is not None:
            print(self.render(), file=self.stream)


# ----------------------------------------------------------------------
def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load every record of a JSONL trace file."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _render_trailer(trailer: Dict[str, object]) -> str:
    lines: List[str] = []
    result = trailer.get("result") or {}
    if result:
        lines.append("headline result:")
        for key, value in result.items():
            if isinstance(value, float):
                lines.append(f"  {key:<24} {value:.6g}")
            else:
                lines.append(f"  {key:<24} {value}")
    profile = trailer.get("profile") or {}
    if profile:
        lines.append("per-phase timing:")
        lines.append(
            f"  {'phase':<20} {'count':>8} {'total s':>10} {'mean ms':>10}"
        )
        rows = sorted(
            profile.items(),
            key=lambda kv: kv[1].get("total_s", 0.0),
            reverse=True,
        )
        for name, stat in rows:
            lines.append(
                f"  {name:<20} {stat.get('count', 0):>8} "
                f"{stat.get('total_s', 0.0):>10.4f} "
                f"{stat.get('mean_s', 0.0) * 1e3:>10.4f}"
            )
    return "\n".join(lines)


def summarize_jsonl(path: Union[str, Path]) -> str:
    """Render a trace file the way ``repro obs summarize`` prints it."""
    records = read_jsonl(path)
    summary = ConsoleSummarySink()
    for record in records:
        summary.write(record)
    scheduler = (
        summary.trailer.get("scheduler") if summary.trailer else None
    )
    header = [f"trace: {path}", f"records: {len(records)}"]
    if scheduler:
        header.append(f"scheduler: {scheduler}")
    return "\n".join(header) + "\n" + summary.render()
