"""Event sinks: JSONL trace files, ring buffers, console summaries.

Sinks receive plain dict records from an
:class:`~repro.obs.events.Observer` — one dict per event plus a final
``run_summary`` trailer.  The JSONL format is the interchange point:
``repro obs summarize trace.jsonl`` renders event counts and per-phase
timings from the file alone.
"""

from __future__ import annotations

import collections
import json
import sys
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

__all__ = [
    "OBS_SCHEMA",
    "JsonlSink",
    "RingBufferSink",
    "ConsoleSummarySink",
    "HeartbeatSink",
    "read_jsonl",
    "summarize_jsonl",
]

#: Version of the JSONL record layout; :class:`JsonlSink` stamps it on
#: every record that does not already carry one, so a trace file is
#: self-describing and future readers can dispatch on it.
OBS_SCHEMA = 1


class JsonlSink:
    """Appends one JSON line per record to ``path``.

    Records are buffered and written in batches of ``buffer_records``
    lines, so a ``--trace`` run pays one file write per batch instead
    of two per event.  The buffer drains on :meth:`flush` (the
    observer calls it at every checkpoint, so a crash loses at most
    one checkpoint interval of events) and on :meth:`close`.
    """

    def __init__(
        self, path: Union[str, Path], buffer_records: int = 512
    ) -> None:
        if buffer_records < 1:
            raise ValueError(
                f"buffer_records must be >= 1, got {buffer_records}"
            )
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._buffer: List[str] = []
        self._buffer_records = buffer_records

    def write(self, record: Dict[str, object]) -> None:
        if "schema" not in record:
            record = {**record, "schema": OBS_SCHEMA}
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self._buffer_records:
            self._drain()

    def _drain(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def flush(self) -> None:
        if not self._fh.closed:
            self._drain()
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._drain()
            self._fh.close()


class RingBufferSink:
    """Keeps the last ``capacity`` records in memory."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.records: Deque[Dict[str, object]] = collections.deque(
            maxlen=capacity
        )

    def write(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def kinds(self) -> List[str]:
        """Event kinds in arrival order (handy in tests)."""
        return [str(r.get("kind")) for r in self.records]

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("kind") == kind]

    def __len__(self) -> int:
        return len(self.records)


class ConsoleSummarySink:
    """Counts records per kind; renders a human-readable digest.

    Record kinds this build does not know (traces written by a newer
    build, hand-edited files) are *skipped and counted* rather than
    mixed into the event table or treated as an error.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream
        self.counts: Dict[str, int] = collections.Counter()
        self.unknown: Dict[str, int] = collections.Counter()
        self.trailer: Optional[Dict[str, object]] = None

    def write(self, record: Dict[str, object]) -> None:
        from .events import KNOWN_RECORD_KINDS

        if not isinstance(record, dict):
            self.unknown["<not a record>"] += 1
            return
        kind = str(record.get("kind"))
        if kind == "run_summary":
            self.trailer = record
        elif kind in KNOWN_RECORD_KINDS:
            self.counts[kind] += 1
        else:
            self.unknown[kind] += 1

    def render(self) -> str:
        lines = ["event counts:"]
        for kind, count in sorted(self.counts.items()):
            lines.append(f"  {kind:<24} {count}")
        if not self.counts:
            lines.append("  (none)")
        if self.unknown:
            total = sum(self.unknown.values())
            kinds = ", ".join(sorted(self.unknown))
            lines.append(
                f"skipped {total} record(s) of unknown kind: {kinds}"
            )
        if self.trailer is not None:
            lines.append(_render_trailer(self.trailer))
        return "\n".join(lines)

    def close(self) -> None:
        if self.stream is not None:
            print(self.render(), file=self.stream)


class HeartbeatSink:
    """Live one-line progress heartbeats (``repro fleet run --progress``).

    Prints a line per ``fleet_shard`` record as it lands and keeps the
    last ``capacity`` records in an internal :class:`RingBufferSink`,
    so the progress surface doubles as a recent-events window.  Writes
    go to ``stream`` (default stderr) immediately — no buffering — so
    a long multi-worker fleet run shows a pulse instead of silence.
    """

    def __init__(self, stream=None, capacity: int = 256) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.ring = RingBufferSink(capacity=capacity)
        self._done = 0

    def write(self, record: Dict[str, object]) -> None:
        self.ring.write(record)
        kind = record.get("kind")
        if kind == "fleet_shard":
            self._done += 1
            n = len(record.get("node_ids") or ())
            cached = record.get("cached")
            took = (
                "cache hit"
                if cached
                else f"{float(record.get('seconds', 0.0)):.2f}s"
            )
            p50 = float(record.get("p50_dmr_est", -1.0))
            est = f"  p50 dmr ~{p50:.3f}" if p50 >= 0.0 else ""
            print(
                f"[fleet {self._done}/{record.get('num_shards')}] "
                f"shard {record.get('shard_index')}: {n} node(s) "
                f"{took}{est}",
                file=self.stream,
                flush=True,
            )
        elif kind == "pool_decision":
            print(
                f"[pool] {record.get('mode')} x{record.get('workers')} "
                f"({record.get('reason')})",
                file=self.stream,
                flush=True,
            )
        elif kind == "task_retry":
            print(
                f"[retry] {record.get('label')} attempt "
                f"{record.get('attempt')}: {record.get('reason')}",
                file=self.stream,
                flush=True,
            )
        elif kind == "worker_lost":
            print(
                f"[worker lost] rebuild #{record.get('rebuilds')}: "
                f"{record.get('reason')}",
                file=self.stream,
                flush=True,
            )
        elif kind == "shard_timeout":
            print(
                f"[timeout] {record.get('label')} exceeded "
                f"{record.get('timeout_s')}s: {record.get('reason')}",
                file=self.stream,
                flush=True,
            )
        elif kind == "node_quarantined":
            print(
                f"[quarantine] node {record.get('node_id')} "
                f"({record.get('node_policy')}): "
                f"{record.get('error_type')} after "
                f"{record.get('retries')} retr(y/ies)",
                file=self.stream,
                flush=True,
            )


# ----------------------------------------------------------------------
def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load every record of a JSONL trace file."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _render_trailer(trailer: Dict[str, object]) -> str:
    lines: List[str] = []
    result = trailer.get("result") or {}
    if result:
        lines.append("headline result:")
        for key, value in result.items():
            if isinstance(value, float):
                lines.append(f"  {key:<24} {value:.6g}")
            else:
                lines.append(f"  {key:<24} {value}")
    profile = trailer.get("profile") or {}
    if profile:
        lines.append("per-phase timing:")
        lines.append(
            f"  {'phase':<20} {'count':>8} {'total s':>10} {'mean ms':>10}"
        )
        rows = sorted(
            profile.items(),
            key=lambda kv: kv[1].get("total_s", 0.0),
            reverse=True,
        )
        for name, stat in rows:
            lines.append(
                f"  {name:<20} {stat.get('count', 0):>8} "
                f"{stat.get('total_s', 0.0):>10.4f} "
                f"{stat.get('mean_s', 0.0) * 1e3:>10.4f}"
            )
    return "\n".join(lines)


def summarize_jsonl(path: Union[str, Path]) -> str:
    """Render a trace file the way ``repro obs summarize`` prints it.

    Unknown record kinds are skipped and counted (see
    :class:`ConsoleSummarySink`), so a trace written by a newer build
    still summarizes; malformed JSON still raises — a corrupt file is
    an error, a forward-compatible one is not.
    """
    records = read_jsonl(path)
    summary = ConsoleSummarySink()
    for record in records:
        summary.write(record)
    scheduler = (
        summary.trailer.get("scheduler") if summary.trailer else None
    )
    header = [f"trace: {path}", f"records: {len(records)}"]
    if scheduler:
        header.append(f"scheduler: {scheduler}")
    return "\n".join(header) + "\n" + summary.render()
