"""Structured event bus for the simulator.

Every consequential moment of a run has a typed event: the per-slot
scheduling decision, a deadline miss, a brownout, a capacitor-switch
attempt (accepted *or* rejected by the Eq. 22 threshold), the coarse
stage's per-period output, and the δ-rule fallback to the cheap
inter-task pass.  Emitters (:mod:`repro.sim.engine`,
:mod:`repro.node.pmu`, :mod:`repro.core.online`) go through an
:class:`Observer`, which stamps events with the simulation clock,
fans them out to sinks, and keeps the run's metrics and phase timings.

The default observer is :data:`NULL_OBSERVER`: disabled, no sinks, and
every emit helper returns after one boolean check — the instrumented
engine with observability off is behaviourally and numerically
identical to an uninstrumented one (guarded by test).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry
from .profile import NULL_SPAN, PhaseProfiler

__all__ = [
    "Event",
    "SlotDecisionEvent",
    "DeadlineMissEvent",
    "BrownoutEvent",
    "CapacitorSwitchEvent",
    "CoarseDecisionEvent",
    "DeltaFallbackEvent",
    "PeriodEndEvent",
    "FaultInjectionEvent",
    "PolicyFallbackEvent",
    "FaultScenarioEvent",
    "CheckpointEvent",
    "InvariantViolationEvent",
    "FleetShardEvent",
    "PoolDecisionEvent",
    "TaskRetryEvent",
    "WorkerLostEvent",
    "ShardTimeoutEvent",
    "NodeQuarantinedEvent",
    "CacheWriteFailedEvent",
    "KNOWN_RECORD_KINDS",
    "Observer",
    "NULL_OBSERVER",
]


def _json_safe(value):
    """Coerce numpy scalars / tuples to plain JSON types."""
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


@dataclasses.dataclass(frozen=True)
class Event:
    """Base event: everything is stamped with the simulation clock.

    ``slot`` is ``-1`` for period-level events; a slot equal to the
    timeline's ``slots_per_period`` marks the end-of-period boundary
    (where final deadline checks run).
    """

    kind = "event"

    day: int
    period: int
    slot: int

    def to_dict(self) -> Dict[str, object]:
        rec: Dict[str, object] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            rec[f.name] = _json_safe(getattr(self, f.name))
        return rec


@dataclasses.dataclass(frozen=True)
class SlotDecisionEvent(Event):
    """One per simulated slot: what ran and how the slot went."""

    kind = "slot_decision"

    ready: Tuple[int, ...]
    chosen: Tuple[int, ...]
    solar_power: float
    load_power: float
    run_fraction: float


@dataclasses.dataclass(frozen=True)
class DeadlineMissEvent(Event):
    """Tasks newly marked missed at this slot boundary (Eq. 5)."""

    kind = "deadline_miss"

    tasks: Tuple[int, ...]
    final: bool  # True for the end-of-period sweep


@dataclasses.dataclass(frozen=True)
class BrownoutEvent(Event):
    """Storage could not cover the deficit; the load ran partially."""

    kind = "brownout"

    run_fraction: float
    needed_energy: float
    delivered_energy: float
    active_index: int
    active_voltage: float


@dataclasses.dataclass(frozen=True)
class CapacitorSwitchEvent(Event):
    """A capacitor selection attempt at the PMU.

    ``accepted`` is the Eq. (22) outcome; ``forced`` marks the
    unconditional path used by offline/oracle schedulers.
    """

    kind = "capacitor_switch"

    previous: int
    requested: int
    accepted: bool
    forced: bool
    active_usable_energy: float
    threshold: float


@dataclasses.dataclass(frozen=True)
class CoarseDecisionEvent(Event):
    """Per-period coarse output: capacitor, α, task subset, fine mode."""

    kind = "coarse_decision"

    cap_index: int
    alpha: float
    intra_mode: bool
    task_subset: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class DeltaFallbackEvent(Event):
    """``|1 - α| > δ``: the cheap inter-task pass replaces intra-task."""

    kind = "delta_fallback"

    alpha: float
    delta: float


@dataclasses.dataclass(frozen=True)
class FaultInjectionEvent(Event):
    """A runtime fault window activated or deactivated.

    ``phase`` is ``"start"`` when the window begins and ``"end"`` when
    it clears; ``target`` is the affected capacitor index for
    component-level faults, ``-1`` otherwise.
    """

    kind = "fault_injected"

    fault: str
    phase: str
    severity: float
    target: int
    duration_slots: int


@dataclasses.dataclass(frozen=True)
class PolicyFallbackEvent(Event):
    """The online coarse stage degraded instead of crashing.

    ``stage`` names the rung of the degradation ladder that handled
    the failure: ``retry``, ``fallback_policy``, ``inter_task_only``
    or ``quarantine``.
    """

    kind = "policy_fallback"

    stage: str
    reason: str
    failure_streak: int


@dataclasses.dataclass(frozen=True)
class FaultScenarioEvent(Event):
    """A pre-run trace-degradation scenario was applied."""

    kind = "fault_scenario"

    scenario: str
    faults: Tuple[str, ...]
    lost_energy_fraction: float


@dataclasses.dataclass(frozen=True)
class CheckpointEvent(Event):
    """A crash-safe simulation checkpoint was written."""

    kind = "checkpoint"

    path: str
    flat_period: int


@dataclasses.dataclass(frozen=True)
class InvariantViolationEvent(Event):
    """An online invariant monitor flagged a physics/accounting breach.

    Emitted through the engine's ``monitors`` hook (see
    :mod:`repro.verify.invariants`); ``severity`` is ``error`` or
    ``warning`` with the semantics of
    :class:`~repro.verify.report.Violation`.
    """

    kind = "invariant_violation"

    check: str
    message: str
    severity: str


@dataclasses.dataclass(frozen=True)
class FleetShardEvent(Event):
    """One shard of a fleet run finished (computed or checkpoint hit).

    Fleet events carry no simulation clock — shards span whole runs —
    so the base fields are the zeroed defaults.
    """

    kind = "fleet_shard"

    shard_index: int
    num_shards: int
    node_ids: Tuple[int, ...]
    cached: bool
    seconds: float
    #: Running P² estimate of the fleet's median node DMR at the time
    #: this shard landed; ``-1.0`` when unknown (no nodes seen yet).
    p50_dmr_est: float = -1.0


@dataclasses.dataclass(frozen=True)
class PoolDecisionEvent(Event):
    """How :func:`repro.perf.parallel.parallel_map` planned a fan-out.

    ``mode`` is ``"pool"`` or ``"serial"``; ``reason`` is the
    human-readable why (tiny job list, single-core host, ...).  No
    simulation clock — planning happens outside any run.
    """

    kind = "pool_decision"

    requested: int
    cpu_count: int
    items: int
    workers: int
    mode: str
    reason: str


@dataclasses.dataclass(frozen=True)
class TaskRetryEvent(Event):
    """The supervisor re-dispatched a failed or timed-out pool task.

    ``attempt`` is the 0-based attempt that just failed; ``reason`` is
    the structured why (``raised``, ``worker_lost``, ``timeout``) and
    ``error_type`` the exception class name when one was raised.  No
    simulation clock — supervision happens outside any run.
    """

    kind = "task_retry"

    label: str
    index: int
    attempt: int
    reason: str
    error_type: str
    backoff_s: float


@dataclasses.dataclass(frozen=True)
class WorkerLostEvent(Event):
    """A pool worker died (``BrokenProcessPool``); the pool was rebuilt.

    ``inflight`` counts the tasks that were in flight when the pool
    broke — each is re-dispatched into the rebuilt pool.
    """

    kind = "worker_lost"

    label: str
    inflight: int
    rebuilds: int
    reason: str


@dataclasses.dataclass(frozen=True)
class ShardTimeoutEvent(Event):
    """A supervised task exceeded its per-task timeout.

    The worker running it cannot be cancelled cooperatively, so the
    pool is rebuilt and every in-flight task re-dispatched; only the
    expired task is charged an attempt.
    """

    kind = "shard_timeout"

    label: str
    index: int
    attempt: int
    timeout_s: float
    reason: str


@dataclasses.dataclass(frozen=True)
class NodeQuarantinedEvent(Event):
    """A fleet node's simulation raised and was quarantined.

    The node becomes a structured ``FailedNode`` record on the fleet
    result instead of aborting the shard; ``spec_digest`` pins the
    node configuration that failed, ``retries`` how many in-shard
    re-attempts were made before giving up.
    """

    kind = "node_quarantined"

    node_id: int
    node_policy: str
    error_type: str
    spec_digest: str
    retries: int
    reason: str


@dataclasses.dataclass(frozen=True)
class CacheWriteFailedEvent(Event):
    """An artifact-cache write failed (read-only or full disk).

    The write degrades to a logged cache-miss — the artifact is simply
    recomputed next time — rather than crashing the run.
    """

    kind = "cache_write_failed"

    artifact_kind: str
    digest: str
    reason: str


@dataclasses.dataclass(frozen=True)
class PeriodEndEvent(Event):
    """Aggregate outcome of one period."""

    kind = "period_end"

    dmr: float
    miss_count: int
    brownout_slots: int
    solar_energy: float
    load_energy: float


class Observer:
    """Event bus + metrics + phase profiler for one or more runs.

    Parameters
    ----------
    sinks:
        Objects with ``write(record: dict)`` (see :mod:`repro.obs.sinks`);
        optionally ``flush()`` / ``close()``.
    enabled:
        Defaults to True; :data:`NULL_OBSERVER` is the disabled
        singleton the engine uses when no observer is passed.
    """

    def __init__(self, sinks: Sequence = (), enabled: bool = True) -> None:
        self.sinks: List = list(sinks)
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.profiler = PhaseProfiler() if enabled else None
        self.tracer = None
        self.day = -1
        self.period = -1
        self.slot = -1

    # ------------------------------------------------------------------
    def set_time(self, day: int, period: int, slot: int = -1) -> None:
        """Advance the simulation clock used to stamp events."""
        self.day = day
        self.period = period
        self.slot = slot

    def span(self, name: str):
        """Profiling context manager; no-op when disabled."""
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.span(name)

    def emit(self, event: Event) -> None:
        """Fan an already-built event out to every sink."""
        if not self.enabled:
            return
        record = event.to_dict()
        for sink in self.sinks:
            sink.write(record)

    def emit_record(self, record: Dict[str, object]) -> None:
        """Fan a raw record dict out (span records, worker re-emits)."""
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.write(record)

    def start_trace(self, name: str, *parts):
        """Attach a :class:`~repro.obs.trace.Tracer` with a derived id.

        Span records flow through :meth:`emit_record` into the same
        sinks as events.  Returns the disabled
        :data:`~repro.obs.trace.NULL_TRACER` when this observer is
        off, so callers can use the result unconditionally.
        """
        from .trace import NULL_TRACER, Tracer, derive_trace_id

        if not self.enabled:
            return NULL_TRACER
        self.tracer = Tracer(self.emit_record, derive_trace_id(name, *parts))
        return self.tracer

    # ------------------------------------------------------------------
    # Typed emit helpers (each guards itself; near-zero cost when off).
    # ------------------------------------------------------------------
    def slot_decision(
        self,
        ready: Tuple[int, ...],
        chosen: Tuple[int, ...],
        solar_power: float,
        load_power: float,
        run_fraction: float,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("slots_simulated_total").inc()
        self.emit(
            SlotDecisionEvent(
                day=self.day,
                period=self.period,
                slot=self.slot,
                ready=tuple(ready),
                chosen=tuple(chosen),
                solar_power=float(solar_power),
                load_power=float(load_power),
                run_fraction=float(run_fraction),
            )
        )

    def deadline_miss(
        self, tasks: Tuple[int, ...], final: bool = False
    ) -> None:
        if not self.enabled or not tasks:
            return
        self.metrics.counter("deadline_misses_total").inc(len(tasks))
        self.emit(
            DeadlineMissEvent(
                day=self.day,
                period=self.period,
                slot=self.slot,
                tasks=tuple(int(t) for t in tasks),
                final=final,
            )
        )

    def brownout(
        self,
        run_fraction: float,
        needed_energy: float,
        delivered_energy: float,
        active_index: int,
        active_voltage: float,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("brownout_slots_total").inc()
        self.emit(
            BrownoutEvent(
                day=self.day,
                period=self.period,
                slot=self.slot,
                run_fraction=float(run_fraction),
                needed_energy=float(needed_energy),
                delivered_energy=float(delivered_energy),
                active_index=int(active_index),
                active_voltage=float(active_voltage),
            )
        )

    def capacitor_switch(
        self,
        previous: int,
        requested: int,
        accepted: bool,
        forced: bool,
        active_usable_energy: float,
        threshold: float,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("capacitor_switch_attempts_total").inc()
        if accepted:
            self.metrics.counter("capacitor_switches_accepted_total").inc()
        self.emit(
            CapacitorSwitchEvent(
                day=self.day,
                period=self.period,
                slot=self.slot,
                previous=int(previous),
                requested=int(requested),
                accepted=bool(accepted),
                forced=bool(forced),
                active_usable_energy=float(active_usable_energy),
                threshold=float(threshold),
            )
        )

    def coarse_decision(
        self,
        cap_index: int,
        alpha: float,
        intra_mode: bool,
        task_subset: Sequence[int],
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("coarse_decisions_total").inc()
        self.emit(
            CoarseDecisionEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                cap_index=int(cap_index),
                alpha=float(alpha),
                intra_mode=bool(intra_mode),
                task_subset=tuple(int(t) for t in task_subset),
            )
        )

    def delta_fallback(self, alpha: float, delta: float) -> None:
        if not self.enabled:
            return
        self.metrics.counter("delta_fallbacks_total").inc()
        self.emit(
            DeltaFallbackEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                alpha=float(alpha),
                delta=float(delta),
            )
        )

    def fault_injected(
        self,
        fault: str,
        phase: str,
        severity: float,
        target: int,
        duration_slots: int,
    ) -> None:
        if not self.enabled:
            return
        if phase == "start":
            self.metrics.counter("faults_injected_total").inc()
        self.emit(
            FaultInjectionEvent(
                day=self.day,
                period=self.period,
                slot=self.slot,
                fault=str(fault),
                phase=str(phase),
                severity=float(severity),
                target=int(target),
                duration_slots=int(duration_slots),
            )
        )

    def policy_fallback(
        self, stage: str, reason: str, failure_streak: int
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("policy_fallbacks_total").inc()
        self.emit(
            PolicyFallbackEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                stage=str(stage),
                reason=str(reason),
                failure_streak=int(failure_streak),
            )
        )

    def fault_scenario(
        self,
        scenario: str,
        faults: Sequence[str],
        lost_energy_fraction: float,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("fault_scenarios_applied_total").inc()
        self.emit(
            FaultScenarioEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                scenario=str(scenario),
                faults=tuple(str(f) for f in faults),
                lost_energy_fraction=float(lost_energy_fraction),
            )
        )

    def invariant_violation(
        self, check: str, message: str, severity: str = "error"
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("invariant_violations_total").inc()
        self.emit(
            InvariantViolationEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                check=check,
                message=message,
                severity=severity,
            )
        )

    def checkpoint_saved(self, path: str, flat_period: int) -> None:
        if not self.enabled:
            return
        self.metrics.counter("checkpoints_written_total").inc()
        self.emit(
            CheckpointEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                path=str(path),
                flat_period=int(flat_period),
            )
        )
        # A checkpoint marks durable progress: push buffered events to
        # disk too, so the trace never trails the resumable state.
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def period_end(
        self,
        dmr: float,
        miss_count: int,
        brownout_slots: int,
        solar_energy: float,
        load_energy: float,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("periods_simulated_total").inc()
        self.emit(
            PeriodEndEvent(
                day=self.day,
                period=self.period,
                slot=-1,
                dmr=float(dmr),
                miss_count=int(miss_count),
                brownout_slots=int(brownout_slots),
                solar_energy=float(solar_energy),
                load_energy=float(load_energy),
            )
        )

    def fleet_shard(
        self,
        shard_index: int,
        num_shards: int,
        node_ids: Sequence[int],
        cached: bool,
        seconds: float,
        p50_dmr_est: float = -1.0,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("fleet_shards_total").inc()
        if cached:
            self.metrics.counter("fleet_shard_cache_hits_total").inc()
        self.metrics.counter("fleet_nodes_total").inc(len(node_ids))
        self.emit(
            FleetShardEvent(
                day=-1,
                period=-1,
                slot=-1,
                shard_index=int(shard_index),
                num_shards=int(num_shards),
                node_ids=tuple(int(i) for i in node_ids),
                cached=bool(cached),
                seconds=float(seconds),
                p50_dmr_est=float(p50_dmr_est),
            )
        )

    def pool_decision(
        self,
        requested: int,
        cpu_count: int,
        items: int,
        workers: int,
        mode: str,
        reason: str,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("pool_decisions_total").inc()
        self.emit(
            PoolDecisionEvent(
                day=-1,
                period=-1,
                slot=-1,
                requested=int(requested),
                cpu_count=int(cpu_count),
                items=int(items),
                workers=int(workers),
                mode=str(mode),
                reason=str(reason),
            )
        )

    def task_retry(
        self,
        label: str,
        index: int,
        attempt: int,
        reason: str,
        error_type: str = "",
        backoff_s: float = 0.0,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("task_retries_total").inc()
        self.emit(
            TaskRetryEvent(
                day=-1,
                period=-1,
                slot=-1,
                label=str(label),
                index=int(index),
                attempt=int(attempt),
                reason=str(reason),
                error_type=str(error_type),
                backoff_s=float(backoff_s),
            )
        )

    def worker_lost(
        self, label: str, inflight: int, rebuilds: int, reason: str
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("workers_lost_total").inc()
        self.metrics.counter("pool_rebuilds_total").inc()
        self.emit(
            WorkerLostEvent(
                day=-1,
                period=-1,
                slot=-1,
                label=str(label),
                inflight=int(inflight),
                rebuilds=int(rebuilds),
                reason=str(reason),
            )
        )

    def shard_timeout(
        self,
        label: str,
        index: int,
        attempt: int,
        timeout_s: float,
        reason: str,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("shard_timeouts_total").inc()
        self.emit(
            ShardTimeoutEvent(
                day=-1,
                period=-1,
                slot=-1,
                label=str(label),
                index=int(index),
                attempt=int(attempt),
                timeout_s=float(timeout_s),
                reason=str(reason),
            )
        )

    def node_quarantined(
        self,
        node_id: int,
        node_policy: str,
        error_type: str,
        spec_digest: str,
        retries: int,
        reason: str,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("nodes_quarantined_total").inc()
        self.emit(
            NodeQuarantinedEvent(
                day=-1,
                period=-1,
                slot=-1,
                node_id=int(node_id),
                node_policy=str(node_policy),
                error_type=str(error_type),
                spec_digest=str(spec_digest),
                retries=int(retries),
                reason=str(reason),
            )
        )

    def cache_write_failed(
        self, artifact_kind: str, digest: str, reason: str
    ) -> None:
        if not self.enabled:
            return
        self.metrics.counter("cache_write_failures_total").inc()
        self.emit(
            CacheWriteFailedEvent(
                day=-1,
                period=-1,
                slot=-1,
                artifact_kind=str(artifact_kind),
                digest=str(digest),
                reason=str(reason),
            )
        )

    # ------------------------------------------------------------------
    def finish(
        self,
        result_summary: Optional[Dict[str, float]] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        """Write the ``run_summary`` trailer record and flush sinks.

        The trailer carries the metrics snapshot, the per-phase timing
        snapshot, and the run's headline numbers — this is what
        ``repro obs summarize`` renders without re-running anything.
        """
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "kind": "run_summary",
            "scheduler": scheduler,
            "result": _json_safe(result_summary) if result_summary else {},
            "metrics": self.metrics.snapshot(),
            "profile": self.profiler.snapshot() if self.profiler else {},
        }
        for sink in self.sinks:
            sink.write(record)
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        """Close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


#: Disabled singleton: the engine's default when no observer is given.
NULL_OBSERVER = Observer(sinks=(), enabled=False)

#: Every record kind this build can emit: the typed events above plus
#: the ``run_summary`` trailer and ``span`` trace records.  The
#: summarize surface skips-and-counts anything outside this set, so
#: traces from newer builds degrade gracefully instead of failing.
KNOWN_RECORD_KINDS = frozenset(
    cls.kind
    for cls in (
        SlotDecisionEvent,
        DeadlineMissEvent,
        BrownoutEvent,
        CapacitorSwitchEvent,
        CoarseDecisionEvent,
        DeltaFallbackEvent,
        PeriodEndEvent,
        FaultInjectionEvent,
        PolicyFallbackEvent,
        FaultScenarioEvent,
        CheckpointEvent,
        InvariantViolationEvent,
        FleetShardEvent,
        PoolDecisionEvent,
        TaskRetryEvent,
        WorkerLostEvent,
        ShardTimeoutEvent,
        NodeQuarantinedEvent,
        CacheWriteFailedEvent,
    )
) | {"run_summary", "span"}
