"""Composable run-level invariant checkers.

Each checker consumes a finished :class:`~repro.sim.recorder.
SimulationResult` (and, where available, the run's observability event
stream) and returns a :class:`~repro.verify.report.CheckOutcome`.  The
checks encode what the paper's physics guarantees for *any* legal
scheduler:

``energy-conservation``
    Per-period accounting closes (load = direct + storage), no flow is
    negative, the load never consumes more than the harvest, storage
    never delivers more than was ever charged into it (global energy
    migration only time-shifts, with losses).
``voltage-bounds``
    Every observed capacitor voltage lies in ``[0, V_max]`` and every
    run fraction in ``[0, 1]``; load power never exceeds the
    workload's physical maximum.
``nvp-charge``
    Brownout bookkeeping is non-negative and self-consistent: the NVP
    backup path never delivers more energy than the slot needed, never
    a negative amount, and per-period brownout counts agree with the
    emitted brownout events.
``dmr-accounting``
    Per-period DMR is ``miss_count / |tasks|`` in ``[0, 1]`` and the
    accumulated DMR follows the Eq. (19) running-mean recurrence.
``brownout-discipline``
    No scheduled work during a full power failure: slots that chose no
    task draw no load power and see no brownout; every partial slot
    (run fraction < 1) has a matching brownout event and vice versa.
``slot-legality``
    Every emitted slot decision respects readiness (Eq. 7) and the
    one-task-per-NVP rule (Eq. 9), and the recorded load power equals
    the sum of the chosen tasks' powers (no-DVFS runs).

:class:`InvariantMonitor` is the online sibling: attached through the
engine's ``monitors`` hook it re-checks the per-period accounting as
records are produced, so a long run fails at the first bad period
instead of at the end.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..sim.recorder import PeriodRecord, SimulationResult
from ..tasks.graph import TaskGraph
from .report import CheckOutcome, Violation

__all__ = [
    "RunContext",
    "InvariantMonitor",
    "InvariantViolationError",
    "INVARIANT_CHECKS",
    "check_energy_conservation",
    "check_voltage_bounds",
    "check_nvp_charge",
    "check_dmr_accounting",
    "check_brownout_discipline",
    "check_slot_legality",
    "verify_run",
]


class InvariantViolationError(RuntimeError):
    """Raised by a fail-fast :class:`InvariantMonitor`."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(f"{violation.check}: {violation.message}")
        self.violation = violation


@dataclasses.dataclass
class RunContext:
    """Everything a checker may consult about one finished run.

    ``events`` is the run's observability record stream (for example a
    :class:`~repro.obs.sinks.RingBufferSink`'s ``records``); checkers
    that need events degrade to a skipped outcome when it is empty.
    ``initial_usable_energy`` is the bank's usable energy at t=0
    (zero for the default cut-off start) — the storage-delivery bound
    allows it.  ``check_load_power`` should be False for DVFS runs,
    where load power is legitimately below the sum of task powers.
    """

    result: SimulationResult
    graph: TaskGraph
    events: Sequence[dict] = ()
    v_max: Optional[float] = None
    label: str = ""
    initial_usable_energy: float = 0.0
    check_load_power: bool = True
    abs_tol: float = 1e-9
    energy_tol: float = 1e-6


def _outcome(name: str, ctx: RunContext) -> CheckOutcome:
    return CheckOutcome(name=name, subject=ctx.label)


def _events_of(ctx: RunContext, kind: str) -> List[dict]:
    return [e for e in ctx.events if e.get("kind") == kind]


# ----------------------------------------------------------------------
def check_energy_conservation(ctx: RunContext) -> CheckOutcome:
    out = _outcome("energy-conservation", ctx)
    solar_sum = load_sum = charged_sum = storage_sum = 0.0
    for p in ctx.result.periods:
        out.checked += 1
        if abs(p.load_energy - (p.direct_energy + p.storage_energy)) > (
            ctx.abs_tol
        ):
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"load {p.load_energy!r} J != direct "
                        f"{p.direct_energy!r} + storage "
                        f"{p.storage_energy!r} J"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
        for field in (
            "solar_energy",
            "load_energy",
            "direct_energy",
            "storage_energy",
            "charged_energy",
            "offered_surplus",
            "leakage_energy",
        ):
            value = getattr(p, field)
            if value < -ctx.abs_tol:
                out.violations.append(
                    Violation(
                        check=out.name,
                        message=f"negative {field}: {value!r} J",
                        day=p.day,
                        period=p.period,
                    )
                )
        if p.charged_energy > p.offered_surplus + ctx.energy_tol:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"charged {p.charged_energy!r} J exceeds the "
                        f"offered surplus {p.offered_surplus!r} J"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
        solar_sum += p.solar_energy
        load_sum += p.load_energy
        charged_sum += p.charged_energy
        storage_sum += p.storage_energy
        if load_sum > solar_sum + ctx.energy_tol:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"cumulative load {load_sum!r} J exceeds "
                        f"cumulative harvest {solar_sum!r} J"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
        if storage_sum > (
            charged_sum + ctx.initial_usable_energy + ctx.energy_tol
        ):
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"storage delivered {storage_sum!r} J but only "
                        f"{charged_sum!r} J was ever charged "
                        f"(+{ctx.initial_usable_energy!r} J initial)"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
    return out


def check_voltage_bounds(ctx: RunContext) -> CheckOutcome:
    out = _outcome("voltage-bounds", ctx)
    v_max = ctx.v_max
    for p in ctx.result.periods:
        out.checked += 1
        sv = np.asarray(p.start_voltages)
        if np.any(sv < -1e-9):
            out.violations.append(
                Violation(
                    check=out.name,
                    message=f"negative start voltage {sv.min()!r} V",
                    day=p.day,
                    period=p.period,
                )
            )
        if v_max is not None and np.any(sv > v_max + 1e-6):
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"start voltage {sv.max()!r} V above V_max "
                        f"{v_max!r} V"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
    slots = ctx.result.slots
    if slots is None:
        out.notes = "no per-slot arrays recorded; period-level only"
        return out
    tl = ctx.result.timeline
    max_load = ctx.graph.max_power()

    def _flag(mask: np.ndarray, message_of: Callable[[int], str]) -> None:
        for flat in np.flatnonzero(mask)[:10]:
            flat_p, slot = divmod(int(flat), tl.slots_per_period)
            day, period = tl.unflatten_period(flat_p)
            out.violations.append(
                Violation(
                    check=out.name,
                    message=message_of(int(flat)),
                    day=day,
                    period=period,
                    slot=slot,
                )
            )

    out.checked += len(slots.active_voltage)
    _flag(
        slots.active_voltage < -1e-9,
        lambda i: f"active voltage {slots.active_voltage[i]!r} V < 0",
    )
    if v_max is not None:
        _flag(
            slots.active_voltage > v_max + 1e-6,
            lambda i: (
                f"active voltage {slots.active_voltage[i]!r} V above "
                f"V_max {v_max!r} V"
            ),
        )
    _flag(
        (slots.run_fraction < -1e-12) | (slots.run_fraction > 1.0 + 1e-9),
        lambda i: f"run fraction {slots.run_fraction[i]!r} outside [0, 1]",
    )
    if ctx.check_load_power:
        _flag(
            slots.load_power > max_load + 1e-9,
            lambda i: (
                f"load power {slots.load_power[i]!r} W above the "
                f"workload maximum {max_load!r} W"
            ),
        )
    _flag(
        slots.solar_power < -1e-12,
        lambda i: f"negative solar power {slots.solar_power[i]!r} W",
    )
    return out


def check_nvp_charge(ctx: RunContext) -> CheckOutcome:
    out = _outcome("nvp-charge", ctx)
    tl = ctx.result.timeline
    for p in ctx.result.periods:
        out.checked += 1
        if not 0 <= p.brownout_slots <= tl.slots_per_period:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"brownout_slots {p.brownout_slots} outside "
                        f"[0, {tl.slots_per_period}]"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
    events = _events_of(ctx, "brownout")
    if not ctx.events:
        out.notes = "no event stream; record-level only"
        return out
    per_period: Dict[tuple, int] = {}
    for e in events:
        out.checked += 1
        per_period[(e["day"], e["period"])] = (
            per_period.get((e["day"], e["period"]), 0) + 1
        )
        delivered = e["delivered_energy"]
        needed = e["needed_energy"]
        if delivered < -ctx.abs_tol:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=f"negative brownout delivery {delivered!r} J",
                    day=e["day"],
                    period=e["period"],
                    slot=e["slot"],
                )
            )
        if delivered > needed + ctx.abs_tol:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"brownout delivered {delivered!r} J, more than "
                        f"the {needed!r} J the slot needed"
                    ),
                    day=e["day"],
                    period=e["period"],
                    slot=e["slot"],
                )
            )
    for p in ctx.result.periods:
        observed = per_period.get((p.day, p.period), 0)
        if observed != p.brownout_slots:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"{observed} brownout event(s) but the record "
                        f"counts {p.brownout_slots}"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
    return out


def check_dmr_accounting(ctx: RunContext) -> CheckOutcome:
    out = _outcome("dmr-accounting", ctx)
    n = len(ctx.graph)
    for p in ctx.result.periods:
        out.checked += 1
        if not 0 <= p.miss_count <= n:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=f"miss_count {p.miss_count} outside [0, {n}]",
                    day=p.day,
                    period=p.period,
                )
            )
        if abs(p.dmr - p.miss_count / n) > 1e-12:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"dmr {p.dmr!r} != miss_count/{n} = "
                        f"{p.miss_count / n!r}"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
    # Eq. (19): the accumulated DMR is the running mean of the series,
    # so it must obey acc_t = (t*acc_{t-1} + dmr_t) / (t+1) exactly.
    acc = ctx.result.accumulated_dmr()
    series = ctx.result.dmr_series()
    out.checked += len(acc)
    prev = 0.0
    for t, (a, d) in enumerate(zip(acc, series)):
        expected = (prev * t + d) / (t + 1)
        if not 0.0 <= a <= 1.0 or abs(a - expected) > 1e-9:
            p = ctx.result.periods[t]
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"accumulated DMR {a!r} breaks the Eq. 19 "
                        f"recurrence (expected {expected!r})"
                    ),
                    day=p.day,
                    period=p.period,
                )
            )
        prev = a
    return out


def check_brownout_discipline(ctx: RunContext) -> CheckOutcome:
    out = _outcome("brownout-discipline", ctx)
    if not ctx.events:
        out.notes = "no event stream; skipped"
        return out
    brownout_at = {
        (e["day"], e["period"], e["slot"])
        for e in _events_of(ctx, "brownout")
    }
    seen_partial = set()
    for e in _events_of(ctx, "slot_decision"):
        out.checked += 1
        key = (e["day"], e["period"], e["slot"])
        idle = not e["chosen"]
        if idle and ctx.check_load_power and e["load_power"] > ctx.abs_tol:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"no task chosen but load power is "
                        f"{e['load_power']!r} W"
                    ),
                    day=e["day"],
                    period=e["period"],
                    slot=e["slot"],
                )
            )
        if idle and key in brownout_at:
            out.violations.append(
                Violation(
                    check=out.name,
                    message="brownout recorded in a slot with no work "
                    "scheduled",
                    day=e["day"],
                    period=e["period"],
                    slot=e["slot"],
                )
            )
        if e["run_fraction"] < 1.0 - 1e-9:
            seen_partial.add(key)
            if not idle and key not in brownout_at:
                out.violations.append(
                    Violation(
                        check=out.name,
                        message=(
                            f"run fraction {e['run_fraction']!r} < 1 "
                            "but no brownout event was emitted"
                        ),
                        day=e["day"],
                        period=e["period"],
                        slot=e["slot"],
                    )
                )
    for day, period, slot in sorted(brownout_at - seen_partial):
        out.violations.append(
            Violation(
                check=out.name,
                message="brownout event without a partial slot decision",
                day=day,
                period=period,
                slot=slot,
            )
        )
    return out


def check_slot_legality(ctx: RunContext) -> CheckOutcome:
    out = _outcome("slot-legality", ctx)
    if not ctx.events:
        out.notes = "no event stream; skipped"
        return out
    graph = ctx.graph
    powers = [t.power for t in graph.tasks]
    for e in _events_of(ctx, "slot_decision"):
        out.checked += 1
        chosen = list(e["chosen"])
        ready = set(e["ready"])
        illegal = [t for t in chosen if t not in ready]
        if illegal:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=f"chosen tasks {illegal} were not ready (Eq. 7)",
                    day=e["day"],
                    period=e["period"],
                    slot=e["slot"],
                )
            )
        nvps = [graph.nvp_of(t) for t in chosen]
        if len(set(nvps)) != len(nvps):
            out.violations.append(
                Violation(
                    check=out.name,
                    message=f"two tasks share an NVP in {chosen} (Eq. 9)",
                    day=e["day"],
                    period=e["period"],
                    slot=e["slot"],
                )
            )
        if ctx.check_load_power:
            expected = float(sum(powers[t] for t in chosen))
            if abs(e["load_power"] - expected) > 1e-9:
                out.violations.append(
                    Violation(
                        check=out.name,
                        message=(
                            f"load power {e['load_power']!r} W != sum of "
                            f"chosen task powers {expected!r} W"
                        ),
                        day=e["day"],
                        period=e["period"],
                        slot=e["slot"],
                    )
                )
    return out


#: Registry used by :func:`verify_run` and the CLI runner.
INVARIANT_CHECKS: Dict[str, Callable[[RunContext], CheckOutcome]] = {
    "energy-conservation": check_energy_conservation,
    "voltage-bounds": check_voltage_bounds,
    "nvp-charge": check_nvp_charge,
    "dmr-accounting": check_dmr_accounting,
    "brownout-discipline": check_brownout_discipline,
    "slot-legality": check_slot_legality,
}


def verify_run(ctx: RunContext) -> List[CheckOutcome]:
    """Run every registered invariant checker over one finished run."""
    return [check(ctx) for check in INVARIANT_CHECKS.values()]


# ----------------------------------------------------------------------
class InvariantMonitor:
    """Online per-period invariant checks for the engine's ``monitors``
    hook.

    The engine calls :meth:`on_period` after each period record; any
    violations returned are emitted as ``invariant_violation`` events
    through the run's observer.  With ``fail_fast=True`` the first
    violation raises :class:`InvariantViolationError` instead, killing
    a long run at the first bad period.
    """

    def __init__(
        self, graph: TaskGraph, fail_fast: bool = False, abs_tol: float = 1e-9
    ) -> None:
        self.graph = graph
        self.fail_fast = fail_fast
        self.abs_tol = abs_tol
        self.violations: List[Violation] = []
        self.periods_checked = 0
        self._solar_sum = 0.0
        self._load_sum = 0.0

    def _record(self, violation: Violation) -> Violation:
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantViolationError(violation)
        return violation

    def on_period(self, record: PeriodRecord) -> List[Violation]:
        self.periods_checked += 1
        found: List[Violation] = []
        n = len(self.graph)
        if abs(
            record.load_energy
            - (record.direct_energy + record.storage_energy)
        ) > self.abs_tol:
            found.append(
                Violation(
                    check="online/energy-conservation",
                    message=(
                        f"load {record.load_energy!r} J != direct + "
                        "storage"
                    ),
                    day=record.day,
                    period=record.period,
                )
            )
        self._solar_sum += record.solar_energy
        self._load_sum += record.load_energy
        if self._load_sum > self._solar_sum + 1e-6:
            found.append(
                Violation(
                    check="online/energy-conservation",
                    message=(
                        f"cumulative load {self._load_sum!r} J exceeds "
                        f"cumulative harvest {self._solar_sum!r} J"
                    ),
                    day=record.day,
                    period=record.period,
                )
            )
        if not (
            0 <= record.miss_count <= n
            and abs(record.dmr - record.miss_count / n) <= 1e-12
        ):
            found.append(
                Violation(
                    check="online/dmr-accounting",
                    message=(
                        f"dmr {record.dmr!r} inconsistent with "
                        f"miss_count {record.miss_count}/{n}"
                    ),
                    day=record.day,
                    period=record.period,
                )
            )
        for violation in found:
            self._record(violation)
        return found

    def on_finish(self, result: SimulationResult) -> List[Violation]:
        found: List[Violation] = []
        if not 0.0 <= result.dmr <= 1.0:
            found.append(
                Violation(
                    check="online/dmr-accounting",
                    message=f"long-term DMR {result.dmr!r} outside [0, 1]",
                )
            )
        for violation in found:
            self._record(violation)
        return found

    def outcome(self, subject: str = "") -> CheckOutcome:
        return CheckOutcome(
            name="online-invariants",
            subject=subject,
            violations=list(self.violations),
            checked=self.periods_checked,
        )
