"""Metamorphic relations: how outputs must move when inputs move.

No oracle knows the *correct* DMR for an arbitrary day, but physics
pins down the *direction* of change:

``more-sun-never-hurts``
    Scaling irradiance up (here: raising a constant trace) never
    increases the deadline miss rate under a work-conserving greedy
    policy (more energy in, no new constraints).
``capacity-never-hurts``
    Adding a capacitor to the bank never worsens the best-achievable
    DMR found by the long-term DP — the old single-capacitor policy is
    still in the enlarged feasible set (paper Fig. 9 direction).
``permutation-invariance``
    Permuting the declaration order of identical, equal-priority tasks
    on distinct NVPs preserves the per-period miss count (schedulers
    may pick different-but-isomorphic task subsets; the objective may
    not change).
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional, Sequence

from .. import quick_node
from ..core import DPConfig, LongTermOptimizer
from ..energy.capacitor import SuperCapacitor
from ..schedulers import GreedyEDFScheduler
from ..sim.engine import simulate
from ..tasks import TaskGraph, ecg
from ..timeline import Timeline
from .report import CheckOutcome, Violation
from .strategies import constant_trace, identical_task_graph, solar_matrix

__all__ = [
    "relation_irradiance_monotonicity",
    "relation_capacity_monotonicity",
    "relation_task_permutation",
    "METAMORPHIC_RELATIONS",
    "verify_metamorphic",
]


def relation_irradiance_monotonicity(
    graph: Optional[TaskGraph] = None,
    base_powers: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    boost: float = 0.3,
    periods_per_day: int = 3,
) -> CheckOutcome:
    """Raising a constant irradiance level must never increase DMR."""
    out = CheckOutcome(name="metamorphic/more-sun-never-hurts")
    graph = graph if graph is not None else ecg()
    tl = Timeline(1, periods_per_day, 20, 30.0)
    for power in base_powers:
        dim = simulate(
            quick_node(graph), graph, constant_trace(tl, power),
            GreedyEDFScheduler(), strict=False,
        ).dmr
        bright = simulate(
            quick_node(graph), graph, constant_trace(tl, power + boost),
            GreedyEDFScheduler(), strict=False,
        ).dmr
        out.checked += 1
        if bright > dim + 1e-9:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"raising constant irradiance {power} -> "
                        f"{power + boost} increased DMR {dim!r} -> "
                        f"{bright!r}"
                    ),
                    details={"power": power, "dim": dim, "bright": bright},
                )
            )
    return out


def relation_capacity_monotonicity(
    graph: Optional[TaskGraph] = None,
    tolerance: float = 0.02,
    energy_buckets: int = 61,
) -> CheckOutcome:
    """A superset bank's DP optimum can't be (materially) worse.

    The DP discretizes storage onto ``energy_buckets`` levels, so the
    containment argument holds only up to one bucket of slack —
    ``tolerance`` mirrors the documented grid-resolution bound.
    """
    out = CheckOutcome(name="metamorphic/capacity-never-hurts")
    graph = graph if graph is not None else ecg()
    tl = Timeline(2, 12, 20, 30.0)
    matrix = solar_matrix(tl, "diurnal")

    def best_dmr(farads: Sequence[float]) -> float:
        caps = [SuperCapacitor(capacitance=c) for c in farads]
        opt = LongTermOptimizer(
            graph, tl, caps, config=DPConfig(energy_buckets=energy_buckets)
        )
        return opt.optimize(matrix).expected_dmr

    small = best_dmr([10.0])
    large = best_dmr([10.0, 1.0])
    out.checked = 1
    if large > small + tolerance:
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    f"adding a capacitor worsened the DP optimum "
                    f"{small!r} -> {large!r} beyond the grid tolerance "
                    f"{tolerance}"
                ),
                details={"small": small, "large": large},
            )
        )
    return out


def relation_task_permutation(
    num_tasks: int = 3,
    periods_per_day: int = 2,
    solar_power: float = 0.04,
    max_orders: int = 6,
) -> CheckOutcome:
    """Reordering identical equal-priority tasks preserves miss counts."""
    out = CheckOutcome(name="metamorphic/permutation-invariance")
    base = identical_task_graph(num_tasks=num_tasks)
    tl = Timeline(1, periods_per_day, 20, 30.0)
    trace = constant_trace(tl, solar_power)

    reference = None
    for count, order in enumerate(permutations(range(num_tasks))):
        if count >= max_orders:
            break
        graph = TaskGraph([base.tasks[i] for i in order])
        result = simulate(
            quick_node(graph), graph, trace, GreedyEDFScheduler(),
            strict=False,
        )
        misses = tuple(int(r.miss_count) for r in result.periods)
        out.checked += 1
        if reference is None:
            reference = misses
        elif misses != reference:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"task order {order} changed per-period miss "
                        f"counts {reference} -> {misses}"
                    ),
                    details={"order": list(order)},
                )
            )
    return out


METAMORPHIC_RELATIONS = {
    "more-sun-never-hurts": relation_irradiance_monotonicity,
    "capacity-never-hurts": relation_capacity_monotonicity,
    "permutation-invariance": relation_task_permutation,
}


def verify_metamorphic() -> list:
    """Run every relation with default arguments."""
    return [fn() for fn in METAMORPHIC_RELATIONS.values()]
