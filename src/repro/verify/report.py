"""Structured verification results.

Every checker in :mod:`repro.verify` — invariants, differential
oracles, metamorphic relations — reports through the same two shapes:
a :class:`Violation` pinpoints one broken expectation (with the
simulation clock when known), and a :class:`CheckOutcome` aggregates
one check's violations over however many periods/cases it inspected.
A :class:`VerificationReport` collects outcomes across a whole
``repro verify`` run and renders the summary the CLI prints (and the
JSON it can write).

Severity semantics: ``error`` violations fail the run (CLI exit
code 6); ``warning`` violations are surfaced but do not flip
:attr:`VerificationReport.ok` — used for soft expectations such as
DP optimality on randomly generated instances.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping

__all__ = ["Violation", "CheckOutcome", "VerificationReport"]


@dataclasses.dataclass(frozen=True)
class Violation:
    """One broken expectation, located as precisely as possible."""

    check: str
    message: str
    severity: str = "error"
    day: int = -1
    period: int = -1
    slot: int = -1
    details: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in ("error", "warning"):
            raise ValueError(
                f"severity must be 'error' or 'warning', got "
                f"{self.severity!r}"
            )

    def location(self) -> str:
        """``d0 p12 s5``-style clock stamp (empty for run-level)."""
        parts = []
        if self.day >= 0:
            parts.append(f"d{self.day}")
        if self.period >= 0:
            parts.append(f"p{self.period}")
        if self.slot >= 0:
            parts.append(f"s{self.slot}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        rec = dataclasses.asdict(self)
        rec["details"] = dict(self.details)
        return rec


@dataclasses.dataclass
class CheckOutcome:
    """One check's verdict over one subject (a run, a table, a case)."""

    name: str
    subject: str = ""
    violations: List[Violation] = dataclasses.field(default_factory=list)
    checked: int = 0  # units inspected: periods, slots, queries, cases
    notes: str = ""

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def passed(self) -> bool:
        return not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "subject": self.subject,
            "passed": self.passed,
            "checked": self.checked,
            "notes": self.notes,
            "violations": [v.to_dict() for v in self.violations],
        }


class VerificationReport:
    """All outcomes of one verification run, renderable and JSON-able."""

    def __init__(self, level: str = "", seed: int = 0) -> None:
        self.level = level
        self.seed = seed
        self.outcomes: List[CheckOutcome] = []

    def add(self, outcome: CheckOutcome) -> None:
        self.outcomes.append(outcome)

    def extend(self, outcomes: Iterable[CheckOutcome]) -> None:
        for outcome in outcomes:
            self.add(outcome)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when no check produced an ``error`` violation."""
        return all(o.passed for o in self.outcomes)

    @property
    def violations(self) -> List[Violation]:
        return [v for o in self.outcomes for v in o.violations]

    @property
    def error_count(self) -> int:
        return sum(len(o.errors) for o in self.outcomes)

    def failed_outcomes(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if not o.passed]

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "seed": self.seed,
            "ok": self.ok,
            "checks": len(self.outcomes),
            "checks_failed": len(self.failed_outcomes()),
            "violations": self.error_count,
            "warnings": sum(
                1 for v in self.violations if v.severity == "warning"
            ),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    # ------------------------------------------------------------------
    def render(self, max_violations: int = 20) -> str:
        """Human-readable summary (what ``repro verify`` prints)."""
        lines = [f"verification: level={self.level} seed={self.seed}"]
        for o in self.outcomes:
            status = "PASS" if o.passed else "FAIL"
            subject = f" [{o.subject}]" if o.subject else ""
            tail = f" ({o.checked} checked)" if o.checked else ""
            if o.notes:
                tail += f" — {o.notes}"
            lines.append(f"  {status} {o.name}{subject}{tail}")
        shown = 0
        for v in self.violations:
            if shown >= max_violations:
                lines.append(
                    f"  ... {len(self.violations) - shown} further "
                    "violation(s) suppressed"
                )
                break
            where = v.location()
            where = f" @ {where}" if where else ""
            lines.append(f"  {v.severity.upper()} {v.check}{where}: {v.message}")
            shown += 1
        passed = sum(1 for o in self.outcomes if o.passed)
        verdict = "OK" if self.ok else "FAILED"
        lines.append(
            f"{verdict}: {passed}/{len(self.outcomes)} checks passed, "
            f"{self.error_count} violation(s)"
        )
        return "\n".join(lines)
