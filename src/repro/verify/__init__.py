"""Conformance subsystem: invariants, differential oracles, relations.

Three independent lines of defence against a silently wrong engine:

* :mod:`repro.verify.invariants` — what physics guarantees for *any*
  run (energy conservation, voltage bounds, NVP charge accounting,
  DMR bookkeeping, brownout discipline, slot legality);
* :mod:`repro.verify.oracles` — two implementations, one answer
  (scalar vs vectorized bank, LUT lookup vs exhaustive scan, DP plan
  vs brute force, checkpoint-resume vs straight-through, committed
  reference fingerprints);
* :mod:`repro.verify.metamorphic` — how outputs must move when inputs
  move (more sun never hurts, more capacity never hurts, permuting
  equal-priority tasks changes nothing).

:mod:`repro.verify.strategies` is the shared generator library the
property-based tests draw from, and :func:`run_verification` is the
``repro verify`` entry point (levels ``smoke`` / ``quick`` / ``deep``).
"""

from .invariants import (
    INVARIANT_CHECKS,
    InvariantMonitor,
    InvariantViolationError,
    RunContext,
    verify_run,
)
from .metamorphic import METAMORPHIC_RELATIONS, verify_metamorphic
from .oracles import (
    BRUTEFORCE_INSTANCES,
    ScalarReferenceBank,
    brute_force_best_dmr,
    capture_reference_fingerprints,
    default_fingerprint_path,
    load_reference_fingerprints,
    oracle_checkpoint_resume,
    oracle_lut_vs_scan,
    oracle_plan_vs_bruteforce,
    oracle_reference_fingerprints,
    oracle_scalar_vs_vectorized,
    reference_run_specs,
    scalar_reference_node,
    write_reference_fingerprints,
)
from .report import CheckOutcome, VerificationReport, Violation
from .runner import LEVELS, run_verification, verified_simulation

__all__ = [
    "Violation",
    "CheckOutcome",
    "VerificationReport",
    "RunContext",
    "InvariantMonitor",
    "InvariantViolationError",
    "INVARIANT_CHECKS",
    "verify_run",
    "ScalarReferenceBank",
    "scalar_reference_node",
    "oracle_scalar_vs_vectorized",
    "oracle_lut_vs_scan",
    "brute_force_best_dmr",
    "oracle_plan_vs_bruteforce",
    "oracle_checkpoint_resume",
    "oracle_reference_fingerprints",
    "BRUTEFORCE_INSTANCES",
    "reference_run_specs",
    "capture_reference_fingerprints",
    "write_reference_fingerprints",
    "load_reference_fingerprints",
    "default_fingerprint_path",
    "METAMORPHIC_RELATIONS",
    "verify_metamorphic",
    "LEVELS",
    "run_verification",
    "verified_simulation",
]
