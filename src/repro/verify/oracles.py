"""Differential oracles: two independent routes to the same answer.

Five oracles, each pitting the production implementation against a
slower but obviously-correct reference:

``scalar-vs-vectorized``
    The engine's hot loop vectorizes the capacitor-bank update
    (:meth:`~repro.energy.bank.CapacitorBank.leak_all` /
    ``view_arrays``).  :class:`ScalarReferenceBank` re-implements both
    as plain per-capacitor Python loops with the identical IEEE
    operation order; a run on each must produce bit-identical results.
``lut-vs-scan``
    The vectorized :meth:`~repro.core.lut.LookupTable.query` and
    ``best_for_budget`` against the exhaustive linear scans
    (``query_scan`` / ``best_for_budget_scan``) on random off-grid
    inputs — same entry object, by identity.
``plan-vs-bruteforce``
    On single-task instances small enough to enumerate every per-slot
    schedule, the long-term DP's replayed plan must match the
    brute-force engine optimum (the Eq. 14-18 pipeline against ground
    truth).
``checkpoint-resume``
    A run interrupted at a period boundary and resumed must be
    bit-identical to the uninterrupted run (meta-level NVP semantics).
``batch-vs-per-node``
    A heterogeneous fleet shard through the node-major batched engine
    (:mod:`repro.sim.batch`) and through one scalar engine per node;
    every :class:`~repro.fleet.result.NodeSummary` — fingerprint
    included — must match bit for bit.

The module also owns the *reference fingerprint* capture: the 4
canonical solar days and 7 seeded runtime fault scenarios whose result
digests are committed in ``tests/data/engine_fingerprints.json``
(regenerate with ``repro verify --update-fingerprints``).
"""

from __future__ import annotations

import itertools
import json
import math
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import quick_node
from ..core import DPConfig, LongTermOptimizer, StaticOptimalScheduler
from ..core.lut import LookupTable
from ..energy.bank import CapacitorBank
from ..energy.capacitor import SuperCapacitor
from ..node.node import SensorNode
from ..reliability import RUNTIME_SCENARIOS, FaultInjector, runtime_scenario
from ..schedulers import (
    GreedyEDFScheduler,
    IntraTaskScheduler,
    PlanScheduler,
    SchedulePlan,
)
from ..sim import (
    CheckpointConfig,
    SimulationInterrupted,
    latest_checkpoint,
    result_fingerprint,
)
from ..sim.engine import simulate
from ..solar import four_day_trace, synthetic_trace
from ..solar.trace import SolarTrace
from ..tasks import Task, TaskGraph, paper_benchmarks
from ..timeline import Timeline
from .report import CheckOutcome, Violation

__all__ = [
    "ScalarReferenceBank",
    "scalar_reference_node",
    "oracle_scalar_vs_vectorized",
    "oracle_lut_vs_scan",
    "brute_force_best_dmr",
    "oracle_plan_vs_bruteforce",
    "oracle_checkpoint_resume",
    "oracle_batch_vs_per_node",
    "reference_run_specs",
    "capture_reference_fingerprints",
    "write_reference_fingerprints",
    "oracle_reference_fingerprints",
    "load_reference_fingerprints",
    "default_fingerprint_path",
]


# ----------------------------------------------------------------------
# Scalar-vs-vectorized engine replay
# ----------------------------------------------------------------------
class ScalarReferenceBank(CapacitorBank):
    """Per-capacitor reference for the bank's two vectorized paths.

    Replicates the pre-vectorization update exactly — same formulas,
    same operation order, plain Python floats — so that a run on this
    bank is the independent route to the vectorized hot loop's bits.
    """

    def leak_all(self, duration: float) -> float:
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        lost = 0.0
        for i, state in enumerate(self.states):
            cap = state.capacitor
            v = state.voltage
            leak_power = (
                cap.leak_coeff * cap.capacitance * v**cap.leak_exponent
                + cap.parasitic_power
            )
            before = 0.5 * cap.capacitance * v * v
            if i == self._active:
                # Full drain, clamped to [0, E_full] the way
                # CapacitorState._set_energy does.
                energy = before - leak_power * duration
                full = 0.5 * cap.capacitance * cap.v_full * cap.v_full
                energy = min(max(energy, 0.0), full)
            else:
                # Idle: the parasitic term is subtracted back out.
                idle_power = max(leak_power - cap.parasitic_power, 0.0)
                energy = max(before - idle_power * duration, 0.0)
            new_v = math.sqrt(2.0 * energy / cap.capacitance)
            after = 0.5 * cap.capacitance * new_v * new_v
            state.voltage = float(new_v)
            lost += before - after
        return float(lost)

    def view_arrays(self) -> tuple:
        capacitances = []
        voltages = []
        usable = []
        for state in self.states:
            cap = state.capacitor
            v = state.voltage
            stored = 0.5 * cap.capacitance * v * v
            cutoff = 0.5 * cap.capacitance * cap.v_cutoff * cap.v_cutoff
            capacitances.append(cap.capacitance)
            voltages.append(v)
            usable.append(max(stored - cutoff, 0.0))
        return (
            np.array(capacitances),
            np.array(voltages),
            np.array(usable),
        )


def scalar_reference_node(graph: TaskGraph, **node_kwargs) -> SensorNode:
    """A :func:`~repro.quick_node` whose bank is the scalar reference."""
    node = quick_node(graph, **node_kwargs)
    bank = ScalarReferenceBank([s.capacitor for s in node.bank.states])
    node.bank = bank
    node.pmu.bank = bank
    return node


def oracle_scalar_vs_vectorized(
    graph: TaskGraph,
    trace: SolarTrace,
    scheduler_factory: Callable,
    label: str = "",
    injector_factory: Optional[Callable] = None,
) -> CheckOutcome:
    """Run vectorized and scalar-reference engines; demand bit-identity."""
    out = CheckOutcome(name="oracle/scalar-vs-vectorized", subject=label)
    inj = injector_factory or (lambda: None)
    vectorized = simulate(
        quick_node(graph), graph, trace, scheduler_factory(),
        strict=False, record_slots=True, fault_injector=inj(),
    )
    scalar = simulate(
        scalar_reference_node(graph), graph, trace, scheduler_factory(),
        strict=False, record_slots=True, fault_injector=inj(),
    )
    out.checked = trace.timeline.total_slots
    if result_fingerprint(vectorized) != result_fingerprint(scalar):
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    "vectorized engine diverged from the scalar "
                    "reference bank"
                ),
                details={
                    "vectorized": vectorized.summary(),
                    "scalar": scalar.summary(),
                },
            )
        )
    return out


# ----------------------------------------------------------------------
# LUT vectorized lookup vs exhaustive scan
# ----------------------------------------------------------------------
def oracle_lut_vs_scan(
    table: LookupTable,
    cases: int = 60,
    seed: int = 0,
    label: str = "",
) -> CheckOutcome:
    """Random off-grid queries: vectorized vs linear-scan, by identity."""
    out = CheckOutcome(name="oracle/lut-vs-scan", subject=label)
    rng = np.random.default_rng(seed)
    slots = table.timeline.slots_per_period
    for case in range(cases):
        solar = rng.uniform(0.0, 0.2, size=slots)
        cap = int(rng.integers(len(table.capacitors)))
        volt = float(rng.uniform(0.0, 6.0))
        dmr = float(rng.uniform(0.0, 1.0))
        feasible_only = bool(rng.integers(2))
        budget = float(rng.uniform(0.0, 50.0))
        out.checked += 2
        fast = table.query(dmr, solar, cap, volt, feasible_only)
        slow = table.query_scan(dmr, solar, cap, volt, feasible_only)
        if fast is not slow:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"query() case {case} picked a different entry "
                        "than the exhaustive scan"
                    ),
                    details={"dmr": dmr, "cap": cap, "voltage": volt},
                )
            )
        fast_b = table.best_for_budget(solar, cap, volt, budget)
        slow_b = table.best_for_budget_scan(solar, cap, volt, budget)
        if fast_b is not slow_b:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"best_for_budget() case {case} picked a "
                        "different entry than the exhaustive scan"
                    ),
                    details={"budget": budget, "cap": cap, "voltage": volt},
                )
            )
    return out


# ----------------------------------------------------------------------
# Fine-grained plan vs brute-force enumeration
# ----------------------------------------------------------------------
def brute_force_best_dmr(
    node_factory: Callable, graph: TaskGraph, trace: SolarTrace
) -> float:
    """Enumerate every per-slot schedule of a single-task workload and
    return the best DMR achievable under the real engine physics."""
    tl = trace.timeline
    slots = tl.slots_per_period
    periods = tl.total_periods
    if len(graph) != 1:
        raise ValueError("exhaustive search supports exactly one task")
    best = 1.1
    per_period_options = list(
        itertools.product([False, True], repeat=slots)
    )
    for combo in itertools.product(per_period_options, repeat=periods):
        plan = SchedulePlan()
        for t, slot_choices in enumerate(combo):
            day, period = tl.unflatten_period(t)
            matrix = np.array(slot_choices, dtype=bool)[:, None]
            plan.set_period(day, period, matrix)
        result = simulate(
            node_factory(), graph, trace,
            PlanScheduler(plan, force_capacitor=False),
            strict=False,
        )
        best = min(best, result.dmr)
        if best == 0.0:
            break
    return best


def _single_task_env(
    solar_rows: Sequence[Sequence[float]],
    exec_s: float = 60.0,
    deadline: float = 120.0,
    power: float = 0.05,
    cap_f: float = 2.0,
):
    graph = TaskGraph([Task("t", exec_s, deadline, power, nvp=0)])
    tl = Timeline(1, len(solar_rows), len(solar_rows[0]), 30.0)
    trace = SolarTrace(
        tl, np.asarray(solar_rows, dtype=float)[None, :, :]
    )

    def node_factory():
        return SensorNode([SuperCapacitor(capacitance=cap_f)], num_nvps=1)

    return graph, tl, trace, node_factory


#: Curated tiny instances where the DP must match the brute-force
#: optimum exactly (the golden-test scenarios: migration, famine,
#: abundance, marginal supply).
BRUTEFORCE_INSTANCES: Dict[str, List[List[float]]] = {
    "bright-then-dark": [
        [0.30, 0.30, 0.30, 0.30],
        [0.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
    ],
    "all-dark": [[0.0] * 4] * 3,
    "all-bright": [[0.2] * 4] * 3,
    "marginal": [
        [0.0, 0.06, 0.06, 0.0],
        [0.0, 0.0, 0.06, 0.06],
    ],
}


def oracle_plan_vs_bruteforce(
    solar_rows: Sequence[Sequence[float]],
    label: str = "",
    strict_optimality: bool = True,
) -> CheckOutcome:
    """DP plan replayed through the engine vs exhaustive enumeration.

    The physics bound (DP can never beat the exhaustive optimum) is
    always an error.  Matching the optimum is an error on the curated
    instances (``strict_optimality=True``) and a warning on random
    ones, where coarse energy buckets may legitimately cost a period.
    """
    out = CheckOutcome(name="oracle/plan-vs-bruteforce", subject=label)
    graph, tl, trace, node_factory = _single_task_env(solar_rows)
    opt = LongTermOptimizer(
        graph, tl, [SuperCapacitor(capacitance=2.0)],
        config=DPConfig(energy_buckets=241),
    )
    matrix = trace.power.reshape(tl.total_periods, tl.slots_per_period)
    plan = opt.optimize(matrix)
    dp = simulate(
        node_factory(), graph, trace, StaticOptimalScheduler(plan),
        strict=False,
    ).dmr
    best = brute_force_best_dmr(node_factory, graph, trace)
    out.checked = 1
    if dp < best - 1e-9:
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    f"DP replay DMR {dp!r} beats the exhaustive optimum "
                    f"{best!r} — the brute-force oracle itself is broken"
                ),
            )
        )
    if dp > best + 1e-9:
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    f"DP replay DMR {dp!r} missed the exhaustive "
                    f"optimum {best!r}"
                ),
                severity="error" if strict_optimality else "warning",
                details={"dp": dp, "best": best},
            )
        )
    return out


# ----------------------------------------------------------------------
# Checkpoint-resume vs straight-through
# ----------------------------------------------------------------------
def oracle_checkpoint_resume(
    graph: TaskGraph,
    trace: SolarTrace,
    scheduler_factory: Callable,
    stop_after_periods: int = 3,
    every_periods: int = 2,
    label: str = "",
    injector_factory: Optional[Callable] = None,
    directory: Optional[Path] = None,
) -> CheckOutcome:
    """Interrupt at a boundary, resume, compare fingerprints."""
    out = CheckOutcome(name="oracle/checkpoint-resume", subject=label)
    inj = injector_factory or (lambda: None)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(directory) if directory is not None else Path(tmp)
        full = simulate(
            quick_node(graph), graph, trace, scheduler_factory(),
            strict=False, record_slots=True, fault_injector=inj(),
        )
        ck = CheckpointConfig(root / "crash", every_periods=every_periods)
        try:
            simulate(
                quick_node(graph), graph, trace, scheduler_factory(),
                strict=False, record_slots=True, fault_injector=inj(),
                checkpoint=ck, stop_after_periods=stop_after_periods,
            )
        except SimulationInterrupted:
            pass
        else:
            out.violations.append(
                Violation(
                    check=out.name,
                    message=(
                        f"stop_after_periods={stop_after_periods} did "
                        "not interrupt the run"
                    ),
                )
            )
            return out
        resumed = simulate(
            quick_node(graph), graph, trace, scheduler_factory(),
            strict=False, record_slots=True, fault_injector=inj(),
            checkpoint=ck, resume_from=latest_checkpoint(ck.path),
        )
    out.checked = trace.timeline.total_periods
    if result_fingerprint(resumed) != result_fingerprint(full):
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    "resumed run is not bit-identical to the "
                    "straight-through run"
                ),
                details={
                    "full": full.summary(),
                    "resumed": resumed.summary(),
                },
            )
        )
    return out


# ----------------------------------------------------------------------
# Reference fingerprints: canonical days + fault scenarios
# ----------------------------------------------------------------------
def _canonical_timeline(days: int) -> Timeline:
    return Timeline(
        num_days=days, periods_per_day=144, slots_per_period=20,
        slot_seconds=30.0,
    )


def reference_run_specs(
    graph: Optional[TaskGraph] = None,
) -> List[Tuple[str, Callable[[], dict]]]:
    """The canonical verification matrix: 4 canonical solar days under
    the intra-task scheduler plus all 7 runtime fault scenarios under
    the greedy baseline.  Each entry is ``(key, build)`` where
    ``build()`` returns keyword arguments for
    :func:`repro.sim.engine.simulate` (node, graph, trace, scheduler,
    fault_injector)."""
    graph = graph if graph is not None else paper_benchmarks()["WAM"]
    specs: List[Tuple[str, Callable[[], dict]]] = []

    four = four_day_trace(_canonical_timeline(4))
    for day in range(4):
        def build(day=day):
            return {
                "node": quick_node(graph),
                "graph": graph,
                "trace": four.day_slice(day),
                "scheduler": IntraTaskScheduler(),
                "fault_injector": None,
            }

        specs.append((f"canonical-day{day + 1}/intra-task", build))

    chaos_trace = synthetic_trace(_canonical_timeline(1), seed=3)
    for scenario in sorted(RUNTIME_SCENARIOS):
        def build(scenario=scenario):
            plan = runtime_scenario(
                scenario, chaos_trace.timeline, seed=0
            )
            return {
                "node": quick_node(graph),
                "graph": graph,
                "trace": chaos_trace,
                "scheduler": GreedyEDFScheduler(),
                "fault_injector": FaultInjector(plan, chaos_trace.timeline),
            }

        specs.append((f"fault-{scenario}/asap", build))
    return specs


def capture_reference_fingerprints(
    graph: Optional[TaskGraph] = None,
) -> Dict[str, str]:
    """Replay the reference matrix and digest every result."""
    fingerprints = {}
    for key, build in reference_run_specs(graph):
        kwargs = build()
        result = simulate(
            kwargs["node"], kwargs["graph"], kwargs["trace"],
            kwargs["scheduler"], strict=False,
            fault_injector=kwargs["fault_injector"],
        )
        fingerprints[key] = result_fingerprint(result)
    return fingerprints


def default_fingerprint_path() -> Path:
    """Committed reference JSON (best effort from a source checkout)."""
    candidate = (
        Path(__file__).resolve().parents[3]
        / "tests" / "data" / "engine_fingerprints.json"
    )
    if candidate.is_file():
        return candidate
    return Path("tests") / "data" / "engine_fingerprints.json"


def write_reference_fingerprints(
    path: Optional[Path] = None,
    graph: Optional[TaskGraph] = None,
) -> Tuple[Path, Dict[str, str]]:
    """Regenerate the committed reference (the ``--update-fingerprints``
    path)."""
    path = Path(path) if path is not None else default_fingerprint_path()
    fingerprints = capture_reference_fingerprints(graph)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(fingerprints, indent=2, sort_keys=True) + "\n"
    )
    return path, fingerprints


def load_reference_fingerprints(
    path: Optional[Path] = None,
) -> Optional[Dict[str, str]]:
    """The committed reference digests, or None when unavailable."""
    path = Path(path) if path is not None else default_fingerprint_path()
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def oracle_reference_fingerprints(
    key: str, fingerprint: str, reference: Dict[str, str]
) -> CheckOutcome:
    """Compare one run's digest against the committed reference."""
    out = CheckOutcome(
        name="oracle/reference-fingerprint", subject=key, checked=1
    )
    expected = reference.get(key)
    if expected is None:
        out.notes = "no committed reference for this key"
        return out
    if fingerprint != expected:
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    "engine drifted from the committed reference; if "
                    "the change is an intentional semantic fix, "
                    "regenerate with `repro verify --update-fingerprints`"
                ),
                details={"expected": expected, "got": fingerprint},
            )
        )
    return out


# ----------------------------------------------------------------------
# Batched node-major engine vs per-node scalar engine
# ----------------------------------------------------------------------
def oracle_batch_vs_per_node(
    n_nodes: int = 8,
    seed: int = 0,
    label: str = "",
) -> CheckOutcome:
    """One fleet shard through both executors; demand bit-identity.

    Simulates ``n_nodes`` heterogeneous fleet nodes (mixed policies,
    bank sizes, panel scales — the standard ``fleet_variations``
    population of the seed) once through the node-major batched engine
    (:func:`~repro.fleet.runner.simulate_shard_batch`) and once
    through the scalar per-node engine, then compares the complete
    :class:`~repro.fleet.result.NodeSummary` of every node — the
    fingerprint and each derived metric.  Any mismatch is reported as
    one Violation per offending node, naming its index and config.
    """
    from ..fleet.runner import simulate_node, simulate_shard_batch
    from ..fleet.spec import FleetSpec

    out = CheckOutcome(name="oracle/batch-vs-per-node", subject=label)
    fleet = FleetSpec(n_nodes=n_nodes, seed=seed)
    base = fleet.base_trace()
    specs = [fleet.node_spec(i) for i in range(n_nodes)]
    batched = simulate_shard_batch(fleet, base, specs)
    out.checked = n_nodes
    for spec, got in zip(specs, batched):
        want = simulate_node(fleet, base, spec)
        if got == want:
            continue
        fields = [
            f for f in want.__dataclass_fields__
            if getattr(got, f) != getattr(want, f)
        ]
        out.violations.append(
            Violation(
                check=out.name,
                message=(
                    f"batched engine diverged from per-node engine "
                    f"on node {spec.node_id}"
                ),
                details={
                    "node_id": spec.node_id,
                    "policy": spec.policy,
                    "graph_kind": spec.graph_kind,
                    "bank_farads": list(spec.bank_farads),
                    "differing_fields": fields,
                    "batched": {
                        f: getattr(got, f) for f in fields
                    },
                    "per_node": {
                        f: getattr(want, f) for f in fields
                    },
                },
            )
        )
    return out
