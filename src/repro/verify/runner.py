"""The ``repro verify`` driver: invariants + oracles at three depths.

``smoke``
    Seconds.  One observed micro-run through the full invariant suite
    plus one cheap instance of every differential oracle.  This is the
    level the test suite itself exercises end-to-end.
``quick``
    A couple of minutes.  The full reference matrix — 4 canonical
    solar days and all 7 runtime fault scenarios — each run under
    observation with online monitors, the complete invariant suite,
    and a digest comparison against the committed reference
    fingerprints; plus all curated oracle instances and the
    metamorphic relations.  This is the CI gate.
``deep``
    Everything in ``quick`` plus seeded randomized sweeps: extra
    scalar-vs-vectorized replays under random weather and fault plans,
    a larger LUT query sample, and random brute-force instances
    (where DP suboptimality is reported as a warning, not a failure).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .. import quick_node
from ..core.lut import LookupTable
from ..energy.capacitor import SuperCapacitor
from ..obs import Observer
from ..obs.sinks import RingBufferSink
from ..reliability import FaultInjector, runtime_scenario
from ..schedulers import GreedyEDFScheduler, IntraTaskScheduler
from ..sim import result_fingerprint
from ..sim.engine import simulate
from ..solar import synthetic_trace
from ..tasks import paper_benchmarks
from .invariants import InvariantMonitor, RunContext, verify_run
from .metamorphic import (
    relation_capacity_monotonicity,
    relation_irradiance_monotonicity,
    relation_task_permutation,
)
from .oracles import (
    BRUTEFORCE_INSTANCES,
    load_reference_fingerprints,
    oracle_batch_vs_per_node,
    oracle_checkpoint_resume,
    oracle_lut_vs_scan,
    oracle_plan_vs_bruteforce,
    oracle_reference_fingerprints,
    oracle_scalar_vs_vectorized,
    reference_run_specs,
)
from .report import CheckOutcome, VerificationReport
from .strategies import random_trace, tiny_env, tiny_timeline

__all__ = ["LEVELS", "run_verification", "verified_simulation"]

LEVELS = ("smoke", "quick", "deep")


def _null_log(message: str) -> None:  # pragma: no cover - trivial
    return None


def verified_simulation(
    key: str,
    kwargs: dict,
    reference: Optional[dict] = None,
) -> List[CheckOutcome]:
    """Run one spec under full observation and check everything.

    ``kwargs`` is a :func:`~repro.verify.oracles.reference_run_specs`
    build product: node / graph / trace / scheduler / fault_injector.
    The run gets a ring-buffer event stream, per-slot arrays and an
    online :class:`InvariantMonitor`; afterwards the whole invariant
    suite replays over the result and — when a committed reference is
    supplied — the period-level fingerprint is compared against it.
    """
    node = kwargs["node"]
    graph = kwargs["graph"]
    sink = RingBufferSink()
    observer = Observer(sinks=[sink])
    injector = kwargs.get("fault_injector")
    if injector is not None:
        injector.observer = observer
    monitor = InvariantMonitor(graph)
    v_max = max(s.capacitor.v_full for s in node.bank.states)
    initial = float(sum(s.usable_energy for s in node.bank.states))
    result = simulate(
        node, graph, kwargs["trace"], kwargs["scheduler"],
        strict=False, record_slots=True, observer=observer,
        fault_injector=injector, monitors=(monitor,),
    )
    ctx = RunContext(
        result=result,
        graph=graph,
        events=list(sink.records),
        v_max=v_max,
        label=key,
        initial_usable_energy=initial,
    )
    outcomes = verify_run(ctx)
    outcomes.append(monitor.outcome(subject=key))
    if reference is not None:
        fingerprint = result_fingerprint(result, include_slots=False)
        outcomes.append(
            oracle_reference_fingerprints(key, fingerprint, reference)
        )
    return outcomes


# ----------------------------------------------------------------------
def _tiny_spec(seed: int = 3) -> tuple:
    graph, tl, trace = tiny_env(seed=seed)
    return graph, tl, trace


def _small_lut() -> LookupTable:
    graph = paper_benchmarks()["WAM"]
    tl = tiny_timeline(periods_per_day=8)
    trace = synthetic_trace(tl, seed=11)
    periods = trace.power.reshape(-1, tl.slots_per_period)
    caps = [SuperCapacitor(capacitance=2.0), SuperCapacitor(capacitance=10.0)]
    return LookupTable(graph, tl, caps, num_solar_classes=4).build(periods)


def run_verification(
    level: str = "quick",
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
    fingerprint_path=None,
) -> VerificationReport:
    """Run the invariant + oracle suite at ``level``; see module doc.

    ``seed`` steers only the randomized extras (LUT query sample and
    the deep-level sweeps); the canonical matrix is deterministic.
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown level {level!r}; expected one of {LEVELS}"
        )
    log = log or _null_log
    report = VerificationReport(level=level, seed=seed)

    from ..obs.trace import current_tracer

    tracer = current_tracer()
    with tracer.span(
        "verify", key=level, attrs={"level": level, "seed": seed}
    ):
        graph, tl, trace = _tiny_spec()
        reference = load_reference_fingerprints(fingerprint_path)

        # ---- observed runs through the full invariant suite ----
        with tracer.span("verify_invariants"):
            if level == "smoke":
                log("invariants: micro run")
                report.extend(
                    verified_simulation(
                        "smoke/tiny/greedy-edf",
                        {
                            "node": quick_node(graph),
                            "graph": graph,
                            "trace": trace,
                            "scheduler": GreedyEDFScheduler(),
                            "fault_injector": None,
                        },
                    )
                )
            else:
                specs = reference_run_specs()
                for key, build in specs:
                    log(f"invariants: {key}")
                    report.extend(
                        verified_simulation(key, build(), reference)
                    )
                if reference is None:
                    report.add(
                        CheckOutcome(
                            name="oracle/reference-fingerprint",
                            notes=(
                                "no committed reference found; "
                                "comparison skipped"
                            ),
                        )
                    )

        # ---- differential oracles ----
        with tracer.span("verify_oracles"):
            log("oracle: scalar vs vectorized")
            report.add(
                oracle_scalar_vs_vectorized(
                    graph, trace, GreedyEDFScheduler, label="tiny/greedy-edf"
                )
            )
            if level != "smoke":
                report.add(
                    oracle_scalar_vs_vectorized(
                        graph, trace, IntraTaskScheduler,
                        label="tiny/intra-task",
                        injector_factory=lambda: FaultInjector(
                            runtime_scenario("chaos", tl, seed=0), tl
                        ),
                    )
                )

            log("oracle: LUT query vs exhaustive scan")
            table = _small_lut()
            cases = {"smoke": 20, "quick": 60, "deep": 200}[level]
            report.add(
                oracle_lut_vs_scan(
                    table, cases=cases, seed=seed, label="small-lut"
                )
            )

            log("oracle: DP plan vs brute force")
            if level == "smoke":
                curated = ["marginal"]
            else:
                curated = sorted(BRUTEFORCE_INSTANCES)
            for name in curated:
                report.add(
                    oracle_plan_vs_bruteforce(
                        BRUTEFORCE_INSTANCES[name], label=name
                    )
                )

            log("oracle: checkpoint resume vs straight through")
            report.add(
                oracle_checkpoint_resume(
                    graph, trace, GreedyEDFScheduler, label="tiny/greedy-edf"
                )
            )

            log("oracle: batched engine vs per-node engine")
            fleet_nodes = 4 if level == "smoke" else 16
            report.add(
                oracle_batch_vs_per_node(
                    n_nodes=fleet_nodes, seed=0,
                    label=f"fleet-{fleet_nodes}",
                )
            )

        # ---- metamorphic relations ----
        with tracer.span("verify_metamorphic"):
            log("metamorphic relations")
            report.add(relation_task_permutation())
            if level != "smoke":
                report.add(relation_irradiance_monotonicity())
                report.add(relation_capacity_monotonicity())

        # ---- deep-only randomized sweeps ----
        if level == "deep":
            with tracer.span("verify_deep_sweeps"):
                rng = np.random.default_rng(seed)
                for i in range(4):
                    sweep_tl = tiny_timeline(
                        periods_per_day=int(rng.integers(2, 5))
                    )
                    sweep_trace = random_trace(
                        sweep_tl, int(rng.integers(0, 10_000))
                    )
                    log(f"deep sweep {i}: scalar vs vectorized, random weather")
                    report.add(
                        oracle_scalar_vs_vectorized(
                            graph, sweep_trace, GreedyEDFScheduler,
                            label=f"sweep-{i}/random-weather",
                        )
                    )
                for i in range(3):
                    rows = (
                        rng.uniform(0.0, 0.12, size=(2, 4)).round(3).tolist()
                    )
                    log(f"deep sweep {i}: DP vs brute force, random instance")
                    report.add(
                        oracle_plan_vs_bruteforce(
                            rows, label=f"sweep-{i}/random",
                            strict_optimality=False,
                        )
                    )
    return report
