"""Shared workload/weather/fault generators for tests and verification.

This module is the single source of the task-graph, solar-day,
capacitor-bank and fault-plan generators that used to be copy-pasted
across ``tests/test_dp_properties.py``, ``tests/test_property_engine.py``
and ``tests/test_runtime_faults.py``.  The deterministic helpers at the
top need only numpy; the ``hypothesis`` strategies below import
hypothesis lazily so the production package never hard-depends on the
test toolchain.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..reliability.runtime import FaultPlan
from ..solar.days import FOUR_DAYS, archetype_trace
from ..solar.trace import SolarTrace
from ..tasks.benchmarks import random_benchmark
from ..tasks.graph import Task, TaskGraph
from ..timeline import Timeline

__all__ = [
    "tiny_timeline",
    "tiny_env",
    "solar_matrix",
    "random_trace",
    "constant_trace",
    "identical_task_graph",
    "node_rng",
    "build_graph",
    "fleet_variation",
    "fleet_variations",
    "FLEET_TASK_MIX",
    "FLEET_BANK_CHOICES",
    "task_graphs",
    "solar_days",
    "capacitor_banks",
    "fault_plans",
    "engine_setups",
]


# ----------------------------------------------------------------------
# Deterministic generators
# ----------------------------------------------------------------------
def tiny_timeline(
    periods_per_day: int = 6,
    num_days: int = 1,
    slots_per_period: int = 20,
    slot_seconds: float = 30.0,
) -> Timeline:
    """A short timeline for fast soak/roundtrip tests."""
    return Timeline(
        num_days=num_days,
        periods_per_day=periods_per_day,
        slots_per_period=slots_per_period,
        slot_seconds=slot_seconds,
    )


def tiny_env(
    seed: int = 3,
    periods_per_day: int = 6,
    graph: Optional[TaskGraph] = None,
    archetype_index: int = 0,
) -> Tuple[TaskGraph, Timeline, SolarTrace]:
    """``(graph, timeline, trace)`` for a one-day micro run.

    The default reproduces the fault-suite fixture: the ECG benchmark
    over one canonical sunny-day archetype.
    """
    from ..tasks.benchmarks import ecg

    graph = graph if graph is not None else ecg()
    tl = tiny_timeline(periods_per_day=periods_per_day)
    trace = archetype_trace(tl, [FOUR_DAYS[archetype_index]], seed=seed)
    return graph, tl, trace


def solar_matrix(
    tl: Timeline, pattern: str = "diurnal", scale: float = 0.12
) -> np.ndarray:
    """Per-period solar matrix for the long-term DP (``diurnal`` or
    ``flat``)."""
    periods = tl.total_periods
    if pattern == "diurnal":
        shape = np.maximum(
            np.sin(
                np.linspace(
                    0, 2 * np.pi * tl.num_days, periods, endpoint=False
                )
                - np.pi / 2
            ),
            0.0,
        )
    else:
        shape = np.full(periods, 0.5)
    return np.repeat((scale * shape)[:, None], tl.slots_per_period, axis=1)


def random_trace(tl: Timeline, seed: int) -> SolarTrace:
    """Uniform noise scaled by a randomly drawn overall brightness."""
    rng = np.random.default_rng(seed)
    power = rng.random(
        (tl.num_days, tl.periods_per_day, tl.slots_per_period)
    ) * rng.choice([0.0, 0.05, 0.15])
    return SolarTrace(tl, power)


def constant_trace(tl: Timeline, power: float) -> SolarTrace:
    """Flat irradiance everywhere (metamorphic baselines)."""
    return SolarTrace(
        tl,
        np.full(
            (tl.num_days, tl.periods_per_day, tl.slots_per_period), power
        ),
    )


def identical_task_graph(
    num_tasks: int = 3,
    execution_time: float = 120.0,
    deadline: float = 360.0,
    power: float = 0.03,
) -> TaskGraph:
    """``num_tasks`` identical, independent tasks on distinct NVPs —
    the equal-priority workload of the permutation relation."""
    return TaskGraph(
        [
            Task(f"t{i}", execution_time, deadline, power, nvp=i)
            for i in range(num_tasks)
        ]
    )


# ----------------------------------------------------------------------
# Fleet heterogeneity (n-node variation)
# ----------------------------------------------------------------------
#: Workload kinds a fleet node may draw; named entries resolve to the
#: paper benchmarks, ``random`` to a seeded :func:`random_benchmark`.
FLEET_TASK_MIX: Tuple[str, ...] = ("wam", "ecg", "shm", "random")

#: Capacitances a heterogeneous bank draws from (same candidate set as
#: :func:`capacitor_banks`).
FLEET_BANK_CHOICES: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.7, 10.0, 47.0)


def node_rng(seed: int, node_index: int) -> np.random.Generator:
    """Independent per-node RNG derived only from ``(seed, node_index)``.

    This is the determinism anchor of every n-node generator: a node's
    variation never depends on worker identity, shard boundaries or
    draw order across nodes, so fleet results are bit-identical for any
    worker count or shard size.
    """
    return np.random.default_rng([int(seed), int(node_index)])


def build_graph(kind: str) -> TaskGraph:
    """Resolve a task-mix kind to a concrete graph.

    ``kind`` is a :data:`FLEET_TASK_MIX` name or ``"random:<seed>"``
    (the reified form of a ``random`` draw), so a node's workload can
    be reconstructed from a short picklable string in any process.
    """
    from ..tasks.benchmarks import ecg, shm, wam

    named = {"wam": wam, "ecg": ecg, "shm": shm}
    if kind in named:
        return named[kind]()
    if kind.startswith("random:"):
        return random_benchmark(int(kind.split(":", 1)[1]))
    raise ValueError(
        f"unknown task kind {kind!r}; expected one of {sorted(named)} "
        f"or 'random:<seed>'"
    )


def fleet_variation(
    seed: int,
    node_index: int,
    task_mix: Sequence[str] = FLEET_TASK_MIX,
    policies: Sequence[str] = ("asap",),
    bank_choices: Sequence[float] = FLEET_BANK_CHOICES,
    bank_size: Tuple[int, int] = (2, 4),
    panel_scale: Tuple[float, float] = (0.6, 1.4),
    cloud_jitter: Tuple[float, float] = (0.0, 0.25),
) -> dict:
    """Seeded per-node variation for heterogeneous multi-node setups.

    One deterministic dict per ``(seed, node_index)``: workload kind,
    scheduler/policy assignment, capacitor-bank sizes, panel scale and
    cloud-jitter parameters.  The draw order is part of the contract —
    changing it changes every downstream fleet fingerprint.
    """
    rng = node_rng(seed, node_index)
    kind = str(task_mix[int(rng.integers(len(task_mix)))])
    if kind == "random":
        kind = f"random:{int(rng.integers(100_000))}"
    n_caps = int(rng.integers(bank_size[0], bank_size[1] + 1))
    farads = tuple(
        float(bank_choices[int(k)])
        for k in rng.integers(len(bank_choices), size=n_caps)
    )
    return {
        "node_id": int(node_index),
        "graph_kind": kind,
        "policy": str(policies[int(rng.integers(len(policies)))]),
        "bank_farads": farads,
        "panel_scale": float(rng.uniform(*panel_scale)),
        "jitter_sigma": float(rng.uniform(*cloud_jitter)),
        "jitter_seed": int(rng.integers(2**31)),
        "scheduler_seed": int(rng.integers(2**31)),
    }


def fleet_variations(seed: int, n_nodes: int, **kwargs) -> list:
    """``n_nodes`` independent :func:`fleet_variation` dicts."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return [fleet_variation(seed, i, **kwargs) for i in range(n_nodes)]


# ----------------------------------------------------------------------
# hypothesis strategies (lazy import)
# ----------------------------------------------------------------------
def _st():
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - test-only dep
        raise ImportError(
            "hypothesis is required for repro.verify.strategies' "
            "strategy builders (pip extra: repro[test])"
        ) from exc
    return st


def task_graphs(max_seed: int = 300):
    """Random benchmark task graphs (4-8 tasks, seeded)."""
    st = _st()
    return st.builds(random_benchmark, st.integers(0, max_seed))


def solar_days(max_seed: int = 300, periods: Tuple[int, int] = (1, 3)):
    """Random one-day traces on a tiny timeline."""
    st = _st()

    @st.composite
    def _solar_days(draw):
        n_periods = draw(st.integers(*periods))
        tl = Timeline(1, n_periods, 20, 30.0)
        return random_trace(tl, draw(st.integers(0, max_seed)))

    return _solar_days()


def capacitor_banks(max_size: int = 4):
    """Banks of 1-``max_size`` supercapacitors with varied farads."""
    st = _st()
    from ..energy.capacitor import SuperCapacitor

    return st.lists(
        st.sampled_from([0.5, 1.0, 2.0, 4.7, 10.0, 47.0]),
        min_size=1,
        max_size=max_size,
    ).map(lambda farads: tuple(SuperCapacitor(capacitance=c) for c in farads))


def fault_plans(timeline: Optional[Timeline] = None, max_seed: int = 300):
    """Seeded random fault plans over ``timeline`` (default tiny)."""
    st = _st()
    tl = timeline if timeline is not None else tiny_timeline()

    @st.composite
    def _fault_plans(draw):
        return FaultPlan.generate(
            tl,
            seed=draw(st.integers(0, max_seed)),
            dropouts_per_day=draw(st.floats(0.0, 30.0)),
            leak_spikes_per_day=draw(st.floats(0.0, 15.0)),
        )

    return _fault_plans()


def engine_setups(max_seed: int = 300):
    """``(graph, timeline, trace, scheduler)`` tuples: random workload,
    random weather and a legal-but-arbitrary random scheduler."""
    st = _st()
    from ..schedulers import RandomScheduler

    @st.composite
    def _engine_setups(draw):
        graph_seed = draw(st.integers(0, max_seed))
        trace_seed = draw(st.integers(0, max_seed))
        sched_seed = draw(st.integers(0, max_seed))
        periods = draw(st.integers(1, 3))
        graph = random_benchmark(graph_seed)
        tl = Timeline(1, periods, 20, 30.0)
        return (
            graph,
            tl,
            random_trace(tl, trace_seed),
            RandomScheduler(sched_seed),
        )

    return _engine_setups()
