"""Energy substrate: regulators, super capacitors, migration, sizing."""

from .regulator import (
    RegulatorCurve,
    default_input_regulator,
    default_output_regulator,
)
from .capacitor import CapacitorState, SuperCapacitor
from .migration import (
    MigrationPattern,
    MigrationResult,
    NonidealParams,
    migration_efficiency,
    optimal_capacity,
    simulate_migration,
)
from .sizing import (
    DEFAULT_CANDIDATES,
    DayMigrationResult,
    cluster_capacities,
    migration_series,
    optimal_daily_capacity,
    simulate_day_migration,
    size_bank,
)
from .bank import CapacitorBank

__all__ = [
    "RegulatorCurve",
    "default_input_regulator",
    "default_output_regulator",
    "SuperCapacitor",
    "CapacitorState",
    "MigrationPattern",
    "MigrationResult",
    "NonidealParams",
    "simulate_migration",
    "migration_efficiency",
    "optimal_capacity",
    "migration_series",
    "DayMigrationResult",
    "simulate_day_migration",
    "optimal_daily_capacity",
    "cluster_capacities",
    "size_bank",
    "DEFAULT_CANDIDATES",
    "CapacitorBank",
]
