"""Distributed super capacitor bank with the paper's switching rule.

The node carries ``H`` super capacitors of different sizes; the PMU
connects one of them to the "store and use" channel at a time.  The
online scheduler asks for the capacitor the DBN recommends, but
switching away from a capacitor that still holds significant energy is
wasteful — the remaining charge would strand or need a lossy transfer.
Eq. (22) therefore only honours a switch request when the *active*
capacitor's usable energy has dropped below a threshold ``E_th``.

All capacitors self-discharge all the time; only the active one pays
the parasitic drain of the connected monitoring/switch circuitry.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .capacitor import CapacitorState, SuperCapacitor

__all__ = ["CapacitorBank"]


class _DeviceConstants:
    """Per-device constant arrays derived from a bank's device models.

    Everything here is a pure function of the immutable
    :class:`SuperCapacitor` devices, so a bank can compute it once and
    reuse it every slot; :meth:`CapacitorBank._constants` revalidates by
    device identity so fault-injection swaps rebuild it automatically.
    """

    def __init__(self, devices: tuple) -> None:
        self.devices = devices
        self.capacitance = np.array([d.capacitance for d in devices])
        readonly = self.capacitance.copy()
        readonly.setflags(write=False)
        self.capacitance_readonly = readonly
        # leakage_power(V) = leak_coeff * C * V**exp + parasitic; the
        # leading product is constant per device.
        self.leak_coeff_cap = np.array(
            [d.leak_coeff * d.capacitance for d in devices]
        )
        self.parasitic = np.array([d.parasitic_power for d in devices])
        self.leak_exponents = [d.leak_exponent for d in devices]
        self.cutoff_energy = np.array(
            [0.5 * d.capacitance * d.v_cutoff * d.v_cutoff for d in devices]
        )
        self.full_energy = np.array(
            [0.5 * d.capacitance * d.v_full * d.v_full for d in devices]
        )


class CapacitorBank:
    """``H`` distributed super capacitors, one active at a time.

    Parameters
    ----------
    capacitors:
        The bank, ordered; sizes are typically produced by
        :func:`repro.energy.sizing.size_bank`.
    initial_voltages:
        Per-capacitor starting voltage; defaults to each cut-off
        voltage (empty usable store).
    active_index:
        The capacitor connected at t=0.
    """

    def __init__(
        self,
        capacitors: Sequence[SuperCapacitor],
        initial_voltages: Sequence[float] | None = None,
        active_index: int = 0,
    ) -> None:
        if not capacitors:
            raise ValueError("a capacitor bank needs at least one capacitor")
        if initial_voltages is not None and len(initial_voltages) != len(
            capacitors
        ):
            raise ValueError(
                f"{len(initial_voltages)} initial voltages for "
                f"{len(capacitors)} capacitors"
            )
        self.states: List[CapacitorState] = [
            cap.fresh_state(
                None if initial_voltages is None else initial_voltages[i]
            )
            for i, cap in enumerate(capacitors)
        ]
        if not 0 <= active_index < len(capacitors):
            raise IndexError(
                f"active_index {active_index} out of range "
                f"[0, {len(capacitors)})"
            )
        self._active = active_index
        self.switch_count = 0
        # Per-device constant arrays for the vectorized slot update;
        # rebuilt lazily whenever a device model changes (swap_device,
        # including direct CapacitorState.swap_device calls).
        self._device_cache: _DeviceConstants | None = None

    # ------------------------------------------------------------------
    def _constants(self) -> "_DeviceConstants":
        """Cached per-device constants, revalidated by identity."""
        cache = self._device_cache
        if cache is not None:
            devices = cache.devices
            for i, state in enumerate(self.states):
                if state.capacitor is not devices[i]:
                    cache = None
                    break
        if cache is None:
            cache = self._device_cache = _DeviceConstants(
                tuple(s.capacitor for s in self.states)
            )
        return cache

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.states)

    @property
    def active_index(self) -> int:
        """Index of the capacitor wired to the store-and-use channel."""
        return self._active

    @property
    def active(self) -> CapacitorState:
        """The capacitor currently wired to the store-and-use channel."""
        return self.states[self._active]

    def voltages(self) -> np.ndarray:
        """Terminal voltage of every capacitor, bank order."""
        return np.array([s.voltage for s in self.states])

    def usable_energies(self) -> np.ndarray:
        """Usable (above cut-off) energy of every capacitor, joules."""
        return np.array([s.usable_energy for s in self.states])

    def total_stored(self) -> float:
        """Sum of stored energy across the bank, joules."""
        return float(sum(s.stored_energy for s in self.states))

    def total_usable(self) -> float:
        """Sum of usable energy across the bank, joules."""
        return float(sum(s.usable_energy for s in self.states))

    def capacitances(self) -> np.ndarray:
        """Capacitance of every bank member, farads."""
        return np.array([s.capacitor.capacitance for s in self.states])

    def view_arrays(self) -> tuple:
        """``(capacitances, voltages, usable_energies)`` for a BankView.

        The hot-loop variant of the three array helpers above: the
        capacitance array is a shared read-only constant and the usable
        energies are derived from the voltage vector in one vectorized
        pass instead of one property chain per capacitor.
        """
        consts = self._constants()
        voltages = np.array([s.voltage for s in self.states])
        stored = 0.5 * consts.capacitance * voltages * voltages
        usable = np.maximum(stored - consts.cutoff_energy, 0.0)
        return consts.capacitance_readonly, voltages, usable

    # ------------------------------------------------------------------
    def select(self, index: int) -> None:
        """Unconditionally connect capacitor ``index``."""
        if not 0 <= index < len(self.states):
            raise IndexError(
                f"index {index} out of range [0, {len(self.states)})"
            )
        if index != self._active:
            self.switch_count += 1
        self._active = index

    def request_switch(self, index: int, energy_threshold: float) -> bool:
        """Eq. (22): switch to ``index`` only if the active capacitor's
        usable energy is below ``energy_threshold``.

        Returns True when the switch happened (or was a no-op because
        the requested capacitor is already active).
        """
        if energy_threshold < 0:
            raise ValueError(
                f"energy_threshold must be >= 0, got {energy_threshold}"
            )
        if index == self._active:
            return True
        if self.active.usable_energy < energy_threshold:
            self.select(index)
            return True
        return False

    def swap_device(self, index: int, capacitor: SuperCapacitor) -> SuperCapacitor:
        """Replace the device model of capacitor ``index`` in place.

        Fault-injection hook: lets transient leakage/ESR spikes be
        imposed (and later reverted) on one bank member while its
        terminal voltage — the mutable state — is preserved.  Returns
        the previous device.
        """
        if not 0 <= index < len(self.states):
            raise IndexError(
                f"index {index} out of range [0, {len(self.states)})"
            )
        return self.states[index].swap_device(capacitor)

    def richest_index(self) -> int:
        """Capacitor with the most usable energy (ties → smaller C)."""
        energies = self.usable_energies()
        return int(np.argmax(energies))

    # ------------------------------------------------------------------
    def leak_all(self, duration: float) -> float:
        """Self-discharge every capacitor for ``duration`` seconds.

        The parasitic (connected-circuitry) drain only applies to the
        active capacitor; idle capacitors see pure self-leakage.
        Returns the total energy lost.

        The update runs vectorized over the whole bank.  The voltage
        power term keeps per-element Python ``**`` (numpy's pow ufunc
        is not bit-identical to libm's), so results match the original
        per-capacitor update exactly; everything else is elementwise
        IEEE arithmetic with the same operation order as
        :meth:`~repro.energy.capacitor.CapacitorState.leak`.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        consts = self._constants()
        states = self.states
        volts = [s.voltage for s in states]
        powv = np.array(
            [v**e for v, e in zip(volts, consts.leak_exponents)]
        )
        v_arr = np.array(volts)
        # P_leak(V) = (k·C)·V**exp + p0, as in SuperCapacitor.leakage_power.
        leak_power = consts.leak_coeff_cap * powv + consts.parasitic
        before = 0.5 * consts.capacitance * v_arr * v_arr
        # Idle capacitors: the parasitic term is subtracted back out
        # (not omitted — (x + p0) - p0 is not x in floating point).
        idle_power = np.maximum(leak_power - consts.parasitic, 0.0)
        new_energy = np.maximum(before - idle_power * duration, 0.0)
        # The active capacitor pays the full drain and clamps the way
        # CapacitorState._set_energy does ([0, E_full]).
        a = self._active
        e_a = before[a] - leak_power[a] * duration
        e_a = min(max(e_a, 0.0), consts.full_energy[a])
        new_energy[a] = e_a
        new_volts = np.sqrt(2.0 * new_energy / consts.capacitance)
        after = 0.5 * consts.capacitance * new_volts * new_volts
        diffs = before - after
        lost = 0.0
        for i, state in enumerate(states):
            state.voltage = float(new_volts[i])
            lost += diffs[i]
        return float(lost)

    def __repr__(self) -> str:
        caps = ", ".join(
            f"{'*' if i == self._active else ''}{s.capacitor.capacitance:g}F@"
            f"{s.voltage:.2f}V"
            for i, s in enumerate(self.states)
        )
        return f"CapacitorBank([{caps}])"
