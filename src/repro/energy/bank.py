"""Distributed super capacitor bank with the paper's switching rule.

The node carries ``H`` super capacitors of different sizes; the PMU
connects one of them to the "store and use" channel at a time.  The
online scheduler asks for the capacitor the DBN recommends, but
switching away from a capacitor that still holds significant energy is
wasteful — the remaining charge would strand or need a lossy transfer.
Eq. (22) therefore only honours a switch request when the *active*
capacitor's usable energy has dropped below a threshold ``E_th``.

All capacitors self-discharge all the time; only the active one pays
the parasitic drain of the connected monitoring/switch circuitry.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .capacitor import CapacitorState, SuperCapacitor

__all__ = ["CapacitorBank"]


class CapacitorBank:
    """``H`` distributed super capacitors, one active at a time.

    Parameters
    ----------
    capacitors:
        The bank, ordered; sizes are typically produced by
        :func:`repro.energy.sizing.size_bank`.
    initial_voltages:
        Per-capacitor starting voltage; defaults to each cut-off
        voltage (empty usable store).
    active_index:
        The capacitor connected at t=0.
    """

    def __init__(
        self,
        capacitors: Sequence[SuperCapacitor],
        initial_voltages: Sequence[float] | None = None,
        active_index: int = 0,
    ) -> None:
        if not capacitors:
            raise ValueError("a capacitor bank needs at least one capacitor")
        if initial_voltages is not None and len(initial_voltages) != len(
            capacitors
        ):
            raise ValueError(
                f"{len(initial_voltages)} initial voltages for "
                f"{len(capacitors)} capacitors"
            )
        self.states: List[CapacitorState] = [
            cap.fresh_state(
                None if initial_voltages is None else initial_voltages[i]
            )
            for i, cap in enumerate(capacitors)
        ]
        if not 0 <= active_index < len(capacitors):
            raise IndexError(
                f"active_index {active_index} out of range "
                f"[0, {len(capacitors)})"
            )
        self._active = active_index
        self.switch_count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.states)

    @property
    def active_index(self) -> int:
        """Index of the capacitor wired to the store-and-use channel."""
        return self._active

    @property
    def active(self) -> CapacitorState:
        """The capacitor currently wired to the store-and-use channel."""
        return self.states[self._active]

    def voltages(self) -> np.ndarray:
        """Terminal voltage of every capacitor, bank order."""
        return np.array([s.voltage for s in self.states])

    def usable_energies(self) -> np.ndarray:
        """Usable (above cut-off) energy of every capacitor, joules."""
        return np.array([s.usable_energy for s in self.states])

    def total_stored(self) -> float:
        """Sum of stored energy across the bank, joules."""
        return float(sum(s.stored_energy for s in self.states))

    def total_usable(self) -> float:
        """Sum of usable energy across the bank, joules."""
        return float(sum(s.usable_energy for s in self.states))

    def capacitances(self) -> np.ndarray:
        """Capacitance of every bank member, farads."""
        return np.array([s.capacitor.capacitance for s in self.states])

    # ------------------------------------------------------------------
    def select(self, index: int) -> None:
        """Unconditionally connect capacitor ``index``."""
        if not 0 <= index < len(self.states):
            raise IndexError(
                f"index {index} out of range [0, {len(self.states)})"
            )
        if index != self._active:
            self.switch_count += 1
        self._active = index

    def request_switch(self, index: int, energy_threshold: float) -> bool:
        """Eq. (22): switch to ``index`` only if the active capacitor's
        usable energy is below ``energy_threshold``.

        Returns True when the switch happened (or was a no-op because
        the requested capacitor is already active).
        """
        if energy_threshold < 0:
            raise ValueError(
                f"energy_threshold must be >= 0, got {energy_threshold}"
            )
        if index == self._active:
            return True
        if self.active.usable_energy < energy_threshold:
            self.select(index)
            return True
        return False

    def swap_device(self, index: int, capacitor: SuperCapacitor) -> SuperCapacitor:
        """Replace the device model of capacitor ``index`` in place.

        Fault-injection hook: lets transient leakage/ESR spikes be
        imposed (and later reverted) on one bank member while its
        terminal voltage — the mutable state — is preserved.  Returns
        the previous device.
        """
        if not 0 <= index < len(self.states):
            raise IndexError(
                f"index {index} out of range [0, {len(self.states)})"
            )
        return self.states[index].swap_device(capacitor)

    def richest_index(self) -> int:
        """Capacitor with the most usable energy (ties → smaller C)."""
        energies = self.usable_energies()
        return int(np.argmax(energies))

    # ------------------------------------------------------------------
    def leak_all(self, duration: float) -> float:
        """Self-discharge every capacitor for ``duration`` seconds.

        The parasitic (connected-circuitry) drain only applies to the
        active capacitor; idle capacitors see pure self-leakage.
        Returns the total energy lost.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        lost = 0.0
        for i, state in enumerate(self.states):
            before = state.stored_energy
            if i == self._active:
                state.leak(duration)
            else:
                # Idle capacitor: leakage without the parasitic term.
                cap = state.capacitor
                power = cap.leakage_power(state.voltage) - cap.parasitic_power
                new_energy = max(before - max(power, 0.0) * duration, 0.0)
                state.voltage = cap.voltage_at(new_energy)
            lost += before - state.stored_energy
        return lost

    def __repr__(self) -> str:
        caps = ", ".join(
            f"{'*' if i == self._active else ''}{s.capacitor.capacitance:g}F@"
            f"{s.voltage:.2f}V"
            for i, s in enumerate(self.states)
        )
        return f"CapacitorBank([{caps}])"
