"""Input/output regulator efficiency models (Figure 5 of the paper).

The "store and use" channel charges the selected super capacitor
through an input regulator and discharges it through an output
regulator.  The paper fits both efficiency curves to bench measurements
(its Figure 5): efficiency collapses at low capacitor voltage and
saturates towards a peak at the full-charge voltage.  We reproduce that
shape with a Hill (saturating rational) curve

``eta(V) = eta_max * V**p / (V**p + V_half**p)``

whose three parameters are exposed so alternative regulators can be
modelled.  The defaults are tuned so that the end-to-end migration
efficiencies of Table 2 land in the paper's range (peak round-trip in
the 40% region, collapsing below ~1.5 V).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "RegulatorCurve",
    "default_input_regulator",
    "default_output_regulator",
]


@dataclasses.dataclass(frozen=True)
class RegulatorCurve:
    """Saturating efficiency-vs-voltage curve.

    Parameters
    ----------
    eta_max:
        Asymptotic efficiency at high capacitor voltage.
    v_half:
        Voltage at which efficiency reaches half of ``eta_max``.
    exponent:
        Steepness of the rise.
    """

    eta_max: float = 0.85
    v_half: float = 1.2
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.eta_max <= 1.0:
            raise ValueError(f"eta_max must be in (0, 1], got {self.eta_max}")
        if not self.v_half > 0:
            raise ValueError(f"v_half must be > 0, got {self.v_half}")
        if not self.exponent > 0:
            raise ValueError(f"exponent must be > 0, got {self.exponent}")
        # Constant denominator term, hoisted out of efficiency(); the
        # dataclass is frozen so bypass the normal setattr.
        object.__setattr__(self, "_vhalf_pow", self.v_half**self.exponent)

    def efficiency(self, voltage: np.ndarray | float) -> np.ndarray | float:
        """Conversion efficiency at the given capacitor voltage(s)."""
        if isinstance(voltage, (float, int)):
            # Scalar fast path for the per-slot charge/discharge loop.
            # np.power is the same ufunc the array path runs through,
            # so scalar and array calls stay bit-identical.
            if voltage < 0:
                raise ValueError("voltage must be >= 0")
            vp = np.power(voltage, self.exponent)
            return float(self.eta_max * vp / (vp + self._vhalf_pow))
        v = np.asarray(voltage, dtype=float)
        if np.any(v < 0):
            raise ValueError("voltage must be >= 0")
        vp = v**self.exponent
        eta = self.eta_max * vp / (vp + self._vhalf_pow)
        return float(eta) if np.isscalar(voltage) else eta

    def __call__(self, voltage: np.ndarray | float) -> np.ndarray | float:
        return self.efficiency(voltage)


def default_input_regulator() -> RegulatorCurve:
    """η_chr: the charging (input) regulator of the tested node."""
    return RegulatorCurve(eta_max=0.87, v_half=0.72, exponent=1.7)


def default_output_regulator() -> RegulatorCurve:
    """η_dis: the discharging (output) regulator of the tested node."""
    return RegulatorCurve(eta_max=0.84, v_half=0.80, exponent=1.6)
