"""Super capacitor sizing (Section 4.1 of the paper).

Design-time procedure with three steps:

1. compute the daily migration-energy profile ``ΔE_{i,j,m}`` from the
   solar trace and an ASAP load profile (:func:`migration_series`);
2. per day, find the capacitance minimising the total migration loss —
   conversion, cycle and leakage losses, Eq. (10)–(11) — via
   :func:`optimal_daily_capacity`;
3. cluster the per-day optima ``{C_i^opt}`` into ``H`` values, weighted
   by the day's solar energy, and use cluster means as the capacities
   of the distributed bank (:func:`cluster_capacities`).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .capacitor import SuperCapacitor

__all__ = [
    "migration_series",
    "DayMigrationResult",
    "simulate_day_migration",
    "optimal_daily_capacity",
    "cluster_capacities",
    "size_bank",
    "DEFAULT_CANDIDATES",
]

#: Default capacitance candidates for the sizing search, farads (the
#: E-series values a designer would actually order).  Capped at 47 F:
#: the node's volume/price constraints rule out larger parts
#: (Section 1 of the paper), which also keeps storage scarce relative
#: to the night workload — the regime all of the paper's experiments
#: operate in.
DEFAULT_CANDIDATES: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.3, 4.7, 6.8, 10.0, 15.0, 22.0, 33.0, 47.0,
)


def migration_series(
    solar_power: np.ndarray, load_power: np.ndarray, slot_seconds: float
) -> np.ndarray:
    """Per-slot migrated energy ``ΔE`` (Eq. 2), joules.

    Positive entries are surplus pushed into the capacitor; negative
    entries are deficits drawn from it.
    """
    solar = np.asarray(solar_power, dtype=float)
    load = np.asarray(load_power, dtype=float)
    if solar.shape != load.shape:
        raise ValueError(
            f"solar {solar.shape} and load {load.shape} shapes differ"
        )
    if not slot_seconds > 0:
        raise ValueError(f"slot_seconds must be > 0, got {slot_seconds}")
    return (solar - load) * slot_seconds


@dataclasses.dataclass(frozen=True)
class DayMigrationResult:
    """Losses and service of one day's migration through one capacitor."""

    total_loss: float
    conversion_loss: float
    leakage_loss: float
    overflow_loss: float
    served: float
    unserved: float
    final_voltage: float

    @property
    def service_ratio(self) -> float:
        """Fraction of the deficit demand actually served."""
        demand = self.served + self.unserved
        return self.served / demand if demand > 0 else 1.0


def simulate_day_migration(
    capacitor: SuperCapacitor,
    delta_e: np.ndarray,
    slot_seconds: float,
    initial_voltage: Optional[float] = None,
) -> DayMigrationResult:
    """Run one day's ``ΔE`` series through a capacitor (Eq. 1, 10, 11).

    Surplus slots charge, deficit slots discharge, every slot leaks.
    Losses follow Eq. (10): energy that entered or was requested but
    did not reach the load, split by mechanism.
    """
    delta_e = np.asarray(delta_e, dtype=float)
    state = capacitor.fresh_state(initial_voltage)
    leakage = overflow = served = unserved = 0.0
    baseline = state.stored_energy
    for de in delta_e:
        if de > 0:
            eta_before = capacitor.charge_efficiency(state.voltage)
            stored = state.charge(de)
            # Input that the full capacitor rejected (approximately:
            # what an unconstrained charge at the slot-start efficiency
            # would have consumed beyond what was actually consumed).
            consumed = stored / max(eta_before, 1e-9)
            overflow += max(de - consumed, 0.0)
        elif de < 0:
            need = -de
            got = state.discharge(need)
            served += got
            unserved += max(need - got, 0.0)
        before = state.stored_energy
        state.leak(slot_seconds)
        leakage += before - state.stored_energy

    # Conversion loss from the exact energy balance: surplus input is
    # either rejected (overflow), leaked, delivered to deficit slots,
    # still stored, or lost in conversion.
    total_in = float(delta_e[delta_e > 0].sum())
    residual = state.stored_energy - baseline
    conversion = max(
        total_in - overflow - leakage - served - residual, 0.0
    )
    total_loss = conversion + leakage + overflow
    return DayMigrationResult(
        total_loss=total_loss,
        conversion_loss=conversion,
        leakage_loss=leakage,
        overflow_loss=overflow,
        served=served,
        unserved=unserved,
        final_voltage=state.voltage,
    )


def optimal_daily_capacity(
    delta_e: np.ndarray,
    slot_seconds: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
    **capacitor_kwargs,
) -> Tuple[float, DayMigrationResult]:
    """Capacitance with the smallest migration loss for one day (Eq. 10).

    Candidates with worse *service* (energy actually delivered to
    deficit slots) are only preferred if no candidate serves more, so
    a tiny capacitor cannot win simply by storing (and thus losing)
    nothing.
    """
    if not candidates:
        raise ValueError("need at least one candidate capacitance")
    results = []
    for c in candidates:
        cap = SuperCapacitor(capacitance=c, **capacitor_kwargs)
        results.append((c, simulate_day_migration(cap, delta_e, slot_seconds)))
    best_served = max(r.served for _, r in results)
    tolerance = 0.05 * best_served if best_served > 0 else 0.0
    viable = [
        (c, r) for c, r in results if r.served >= best_served - tolerance
    ]
    return min(viable, key=lambda item: item[1].total_loss)


def cluster_capacities(
    optima: Sequence[float],
    weights: Optional[Sequence[float]] = None,
    num_clusters: int = 4,
    max_iterations: int = 100,
) -> List[float]:
    """Cluster per-day optimal capacities into ``H`` bank values.

    Weighted 1-D k-means on log-capacitance (the paper clusters the
    per-day optima "based on the corresponding solar power", hence the
    solar-energy weights).  Returns the cluster means in ascending
    order; fewer clusters are returned when the optima take fewer
    distinct values.
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    values = np.asarray(optima, dtype=float)
    if len(values) == 0:
        raise ValueError("need at least one per-day optimum")
    if np.any(values <= 0):
        raise ValueError("capacities must be > 0")
    w = (
        np.ones_like(values)
        if weights is None
        else np.asarray(weights, dtype=float)
    )
    if w.shape != values.shape:
        raise ValueError("weights must match optima in length")
    if np.any(w < 0) or w.sum() <= 0:
        raise ValueError("weights must be >= 0 with a positive sum")

    unique = np.unique(values)
    k = min(num_clusters, len(unique))
    log_v = np.log10(values)
    centres = np.quantile(log_v, np.linspace(0.0, 1.0, k))
    centres = np.unique(centres)
    k = len(centres)

    for _ in range(max_iterations):
        assign = np.argmin(np.abs(log_v[:, None] - centres[None, :]), axis=1)
        new_centres = centres.copy()
        for j in range(k):
            mask = assign == j
            if mask.any():
                new_centres[j] = np.average(log_v[mask], weights=w[mask])
        if np.allclose(new_centres, centres):
            break
        centres = new_centres

    assign = np.argmin(np.abs(log_v[:, None] - centres[None, :]), axis=1)
    means = []
    for j in range(k):
        mask = assign == j
        if mask.any():
            means.append(float(np.average(values[mask], weights=w[mask])))
    return sorted(means)


def size_bank(
    daily_delta_e: Sequence[np.ndarray],
    slot_seconds: float,
    num_capacitors: int = 4,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
    daily_weights: Optional[Sequence[float]] = None,
    **capacitor_kwargs,
) -> List[SuperCapacitor]:
    """Full Section 4.1 pipeline: per-day optima → clustered bank."""
    optima = [
        optimal_daily_capacity(
            de, slot_seconds, candidates, **capacitor_kwargs
        )[0]
        for de in daily_delta_e
    ]
    weights = daily_weights
    if weights is None:
        weights = [float(np.abs(de).sum()) for de in daily_delta_e]
        if sum(weights) <= 0:
            weights = None
    capacities = cluster_capacities(
        optima, weights=weights, num_clusters=num_capacitors
    )
    return [
        SuperCapacitor(capacitance=c, **capacitor_kwargs) for c in capacities
    ]
