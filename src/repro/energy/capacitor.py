"""Super capacitor model: storage, leakage, cycle losses.

Implements the storage element of the paper's Eq. (1)–(3): energy is
``½CV²``; charging multiplies the incoming energy by
``η_chr(V)·η_cycle(C)`` and is only possible below the full-charge
voltage ``V_H``; discharging divides the delivered energy by
``η_dis(V)·η_cycle(C)`` and is only possible above the cut-off voltage
``V_L``; a voltage-dependent leakage power ``P_leak(V)`` drains the
capacitor continuously.  Leakage follows the standard super-capacitor
self-discharge model (Brunelli et al. [12]): the leakage current scales
with both capacitance and terminal voltage, so ``P_leak = k·C·V²``,
plus a small fixed parasitic term.

:class:`SuperCapacitor` is the immutable device; :class:`CapacitorState`
carries the mutable terminal voltage and implements the slot update.
"""

from __future__ import annotations

import dataclasses
import math

from .regulator import (
    RegulatorCurve,
    default_input_regulator,
    default_output_regulator,
)

__all__ = ["SuperCapacitor", "CapacitorState"]

#: Leakage coefficient ``k`` in ``P_leak = k·C·V**exp``; together with
#: the default exponent this gives ~0.5 mW/F at the 5 V full-charge
#: voltage but only ~20 µW/F at 2.4 V, matching the strongly
#: voltage-dependent self-discharge of commodity super capacitors near
#: their rated voltage [12] and calibrated so the migration
#: efficiencies of the paper's Table 2 keep their shape (see
#: benchmarks/bench_table2_migration.py).
DEFAULT_LEAK_COEFF = 5.0e-7
#: Voltage exponent of the leakage law; > 2 because the leakage
#: *current* itself grows super-linearly near the rated voltage.
DEFAULT_LEAK_EXPONENT = 4.3
#: Fixed parasitic drain of the storage path when a capacitor is
#: connected (monitor + switch leakage), watts.
DEFAULT_PARASITIC_W = 2.0e-6


@dataclasses.dataclass(frozen=True)
class SuperCapacitor:
    """One physical super capacitor plus its conversion chain.

    Parameters
    ----------
    capacitance:
        ``C_h`` in farads.
    v_full:
        ``V_H``: full-charge voltage.
    v_cutoff:
        ``V_L``: cut-off voltage below which the output regulator
        cannot operate.
    cycle_efficiency:
        ``η_cycle(C)``: average charge/discharge cycle efficiency of
        the capacitor itself (ESR losses) [12].
    leak_coeff:
        Leakage coefficient ``k`` in ``P_leak = k·C·V**leak_exponent + p0``.
    leak_exponent:
        Voltage exponent of the leakage law.
    parasitic_power:
        Fixed drain ``p0`` while the capacitor is in circuit, watts.
    input_regulator / output_regulator:
        η_chr / η_dis efficiency curves (Figure 5).
    """

    capacitance: float
    v_full: float = 5.0
    v_cutoff: float = 1.0
    cycle_efficiency: float = 0.85
    leak_coeff: float = DEFAULT_LEAK_COEFF
    leak_exponent: float = DEFAULT_LEAK_EXPONENT
    parasitic_power: float = DEFAULT_PARASITIC_W
    input_regulator: RegulatorCurve = dataclasses.field(
        default_factory=default_input_regulator
    )
    output_regulator: RegulatorCurve = dataclasses.field(
        default_factory=default_output_regulator
    )

    def __post_init__(self) -> None:
        if not self.capacitance > 0:
            raise ValueError(f"capacitance must be > 0, got {self.capacitance}")
        if not 0.0 <= self.v_cutoff < self.v_full:
            raise ValueError(
                f"need 0 <= v_cutoff < v_full, got "
                f"[{self.v_cutoff}, {self.v_full}]"
            )
        if not 0.0 < self.cycle_efficiency <= 1.0:
            raise ValueError(
                f"cycle_efficiency must be in (0, 1], got "
                f"{self.cycle_efficiency}"
            )
        if self.leak_coeff < 0:
            raise ValueError(f"leak_coeff must be >= 0, got {self.leak_coeff}")
        if not self.leak_exponent > 0:
            raise ValueError(
                f"leak_exponent must be > 0, got {self.leak_exponent}"
            )
        if self.parasitic_power < 0:
            raise ValueError(
                f"parasitic_power must be >= 0, got {self.parasitic_power}"
            )

    # ------------------------------------------------------------------
    def energy_at(self, voltage: float) -> float:
        """Stored energy ``½CV²`` at a terminal voltage, joules."""
        return 0.5 * self.capacitance * voltage * voltage

    def voltage_at(self, energy: float) -> float:
        """Terminal voltage holding the given stored energy."""
        if energy < 0:
            raise ValueError(f"energy must be >= 0, got {energy}")
        return math.sqrt(2.0 * energy / self.capacitance)

    @property
    def usable_capacity(self) -> float:
        """Max energy deliverable between ``V_H`` and ``V_L``, joules."""
        return self.energy_at(self.v_full) - self.energy_at(self.v_cutoff)

    def leakage_power(self, voltage: float) -> float:
        """``P_leak(V)`` in watts."""
        if voltage < 0:
            raise ValueError(f"voltage must be >= 0, got {voltage}")
        return (
            self.leak_coeff * self.capacitance * voltage**self.leak_exponent
            + self.parasitic_power
        )

    def charge_efficiency(self, voltage: float) -> float:
        """``η_chr(V)·η_cycle(C)``: fraction of input energy stored."""
        return self.input_regulator.efficiency(voltage) * self.cycle_efficiency

    def discharge_efficiency(self, voltage: float) -> float:
        """``η_dis(V)·η_cycle(C)``: delivered energy per stored energy."""
        return self.output_regulator.efficiency(voltage) * self.cycle_efficiency

    def fresh_state(self, voltage: float | None = None) -> "CapacitorState":
        """A mutable state at the given (default: cut-off) voltage."""
        v = self.v_cutoff if voltage is None else voltage
        return CapacitorState(self, v)

    def __repr__(self) -> str:
        return (
            f"SuperCapacitor({self.capacitance:g} F, "
            f"V=[{self.v_cutoff:g}, {self.v_full:g}] V)"
        )


class CapacitorState:
    """Mutable terminal state of one super capacitor.

    All mutators work in energy terms and keep the voltage inside
    ``[0, V_H]``.  Charge/discharge are applied in ``substeps``
    sub-increments so the voltage-dependent efficiencies track the
    voltage trajectory within a slot rather than the slot-start value;
    ``substeps=1`` reproduces the paper's coarse slot update Eq. (1).
    """

    def __init__(self, capacitor: SuperCapacitor, voltage: float) -> None:
        if not 0.0 <= voltage <= capacitor.v_full + 1e-9:
            raise ValueError(
                f"initial voltage {voltage} outside [0, {capacitor.v_full}]"
            )
        self.capacitor = capacitor
        self.voltage = float(min(voltage, capacitor.v_full))

    # ------------------------------------------------------------------
    @property
    def stored_energy(self) -> float:
        """``½CV²``, joules."""
        return self.capacitor.energy_at(self.voltage)

    @property
    def usable_energy(self) -> float:
        """Energy above the cut-off voltage, joules (>= 0)."""
        return max(
            self.stored_energy - self.capacitor.energy_at(self.capacitor.v_cutoff),
            0.0,
        )

    @property
    def headroom(self) -> float:
        """Storable energy before reaching ``V_H``, joules."""
        return max(
            self.capacitor.energy_at(self.capacitor.v_full) - self.stored_energy,
            0.0,
        )

    def _set_energy(self, energy: float) -> None:
        energy = min(
            max(energy, 0.0), self.capacitor.energy_at(self.capacitor.v_full)
        )
        self.voltage = self.capacitor.voltage_at(energy)

    # ------------------------------------------------------------------
    def charge(self, energy_in: float, substeps: int = 4) -> float:
        """Push ``energy_in`` joules of surplus into the capacitor.

        Returns the energy actually *stored* (input × efficiency,
        truncated at ``V_H``).  Input energy that cannot be stored
        because the capacitor is full is lost (the direct channel has
        nowhere else to put it).
        """
        if energy_in < 0:
            raise ValueError(f"energy_in must be >= 0, got {energy_in}")
        if substeps < 1:
            raise ValueError(f"substeps must be >= 1, got {substeps}")
        # Hot path of PMU.supply_slot: the substep recurrence is kept in
        # locals and written back once.  Operation order matches the
        # original property-based loop exactly (bit-identical results).
        cap = self.capacitor
        c = cap.capacitance
        v_full = cap.v_full
        e_full = 0.5 * c * v_full * v_full
        regulator = cap.input_regulator
        cycle_eta = cap.cycle_efficiency
        v = self.voltage
        energy = 0.5 * c * v * v
        v_stop = v_full - 1e-12
        stored_total = 0.0
        chunk = energy_in / substeps
        for _ in range(substeps):
            if v >= v_stop:
                break
            eta = regulator.efficiency(v) * cycle_eta
            headroom = e_full - energy
            if headroom < 0.0:
                headroom = 0.0
            stored = chunk * eta
            if stored > headroom:
                stored = headroom
            new_energy = energy + stored
            if new_energy < 0.0:
                new_energy = 0.0
            elif new_energy > e_full:
                new_energy = e_full
            v = math.sqrt(2.0 * new_energy / c)
            energy = 0.5 * c * v * v
            stored_total += stored
        self.voltage = v
        return stored_total

    def discharge(self, energy_needed: float, substeps: int = 4) -> float:
        """Draw energy to deliver ``energy_needed`` joules to the load.

        Returns the energy actually *delivered* (≤ ``energy_needed``);
        the capacitor loses ``delivered / (η_dis·η_cycle)``.  Delivery
        stops at the cut-off voltage.
        """
        if energy_needed < 0:
            raise ValueError(f"energy_needed must be >= 0, got {energy_needed}")
        if substeps < 1:
            raise ValueError(f"substeps must be >= 1, got {substeps}")
        cap = self.capacitor
        c = cap.capacitance
        e_full = 0.5 * c * cap.v_full * cap.v_full
        e_cutoff = 0.5 * c * cap.v_cutoff * cap.v_cutoff
        regulator = cap.output_regulator
        cycle_eta = cap.cycle_efficiency
        v = self.voltage
        energy = 0.5 * c * v * v
        v_stop = cap.v_cutoff + 1e-12
        delivered_total = 0.0
        chunk = energy_needed / substeps
        for _ in range(substeps):
            if v <= v_stop:
                break
            eta = regulator.efficiency(v) * cycle_eta
            if eta <= 0:
                break
            usable = energy - e_cutoff
            if usable < 0.0:
                usable = 0.0
            drawn = chunk / eta
            if drawn > usable:
                drawn = usable
            delivered = drawn * eta
            new_energy = energy - drawn
            if new_energy < 0.0:
                new_energy = 0.0
            elif new_energy > e_full:
                new_energy = e_full
            v = math.sqrt(2.0 * new_energy / c)
            energy = 0.5 * c * v * v
            delivered_total += delivered
        self.voltage = v
        return delivered_total

    def swap_device(self, capacitor: SuperCapacitor) -> SuperCapacitor:
        """Replace the device model under this state, keeping the charge.

        Used by runtime fault injection to impose transient leakage or
        ESR (cycle-efficiency) spikes without touching the stored
        energy: the replacement must have the same capacitance so the
        voltage↔energy mapping is unchanged.  Returns the previous
        device so callers can restore it when the fault clears.
        """
        if capacitor.capacitance != self.capacitor.capacitance:
            raise ValueError(
                "swap_device requires equal capacitance "
                f"({capacitor.capacitance} != {self.capacitor.capacitance})"
            )
        previous = self.capacitor
        self.capacitor = capacitor
        return previous

    def leak(self, duration: float) -> float:
        """Apply leakage for ``duration`` seconds; returns energy lost."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        before = self.stored_energy
        lost = self.capacitor.leakage_power(self.voltage) * duration
        self._set_energy(before - lost)
        return before - self.stored_energy

    def __repr__(self) -> str:
        return (
            f"CapacitorState({self.capacitor.capacitance:g} F @ "
            f"{self.voltage:.3f} V, {self.stored_energy:.2f} J)"
        )
