"""Energy migration: moving surplus solar energy through a capacitor.

"Energy migration" in the paper is the act of storing surplus daytime
energy in a super capacitor and releasing it later (e.g. at night).  A
migration *pattern* is characterised by its quantity (joules offered at
the input) and its distance (total duration); Table 2 of the paper
measures migration efficiency for {1, 10, 50, 100} F capacitors under
(7 J, 60 min) and (30 J, 400 min) patterns and validates the analytical
slot model against the physical node.

This module provides both sides of that validation:

* :func:`simulate_migration` — the paper's slot-level model
  (Eq. (1)–(3)): piecewise charge / hold / discharge at Δt resolution
  with voltage-dependent conversion efficiency and leakage;
* :class:`NonidealParams` + the ``nonideal=`` argument — a
  fine-timestep reference simulator standing in for the bench
  measurement: per-device parameter spread, dielectric-absorption
  transient after charging, and ESR-like extra loss at high current,
  so "model vs test" disagrees by a few percent the way the paper's
  Table 2 does (average error 5.38%).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from .capacitor import SuperCapacitor

__all__ = [
    "MigrationPattern",
    "MigrationResult",
    "NonidealParams",
    "simulate_migration",
    "migration_efficiency",
    "optimal_capacity",
]


@dataclasses.dataclass(frozen=True)
class MigrationPattern:
    """A charge / hold / discharge migration episode.

    Parameters
    ----------
    quantity:
        Energy offered at the input over the charge phase, joules.
    distance_seconds:
        Total episode duration ("migration distance" in the paper).
    charge_fraction / hold_fraction:
        Fractions of the distance spent charging and holding; the
        remainder is the discharge window.
    """

    quantity: float
    distance_seconds: float
    charge_fraction: float = 0.4
    hold_fraction: float = 0.3

    def __post_init__(self) -> None:
        if not self.quantity > 0:
            raise ValueError(f"quantity must be > 0, got {self.quantity}")
        if not self.distance_seconds > 0:
            raise ValueError(
                f"distance_seconds must be > 0, got {self.distance_seconds}"
            )
        if not 0.0 < self.charge_fraction < 1.0:
            raise ValueError(
                f"charge_fraction must be in (0, 1), got {self.charge_fraction}"
            )
        if not 0.0 <= self.hold_fraction < 1.0:
            raise ValueError(
                f"hold_fraction must be in [0, 1), got {self.hold_fraction}"
            )
        if self.charge_fraction + self.hold_fraction >= 1.0:
            raise ValueError(
                "charge_fraction + hold_fraction must leave room for the "
                "discharge window"
            )

    @property
    def charge_seconds(self) -> float:
        """Duration of the charge phase, seconds."""
        return self.charge_fraction * self.distance_seconds

    @property
    def hold_seconds(self) -> float:
        """Duration of the hold phase, seconds."""
        return self.hold_fraction * self.distance_seconds

    @property
    def discharge_seconds(self) -> float:
        """Duration of the discharge phase, seconds."""
        return (
            self.distance_seconds - self.charge_seconds - self.hold_seconds
        )

    @classmethod
    def table2(cls, quantity_j: float, distance_min: float) -> "MigrationPattern":
        """Pattern in the paper's Table 2 units (joules, minutes)."""
        return cls(quantity=quantity_j, distance_seconds=distance_min * 60.0)


@dataclasses.dataclass(frozen=True)
class NonidealParams:
    """Second-order effects for the "measurement" reference simulator.

    Parameters are relative perturbations / extra physics applied on
    top of the analytical model; a fixed ``seed`` derives per-device
    biases so the same capacitor always measures the same way.
    """

    seed: int = 42
    efficiency_spread: float = 0.04
    leak_spread: float = 0.10
    #: Dielectric absorption: extra self-discharge right after charge,
    #: as a fraction of the freshly stored energy, decaying with tau.
    dielectric_fraction: float = 0.015
    dielectric_tau_seconds: float = 900.0

    def device_bias(self, capacitor: SuperCapacitor) -> tuple[float, float]:
        """(efficiency multiplier, leakage multiplier) for one device."""
        key = int(capacitor.capacitance * 1000) ^ (self.seed * 0x9E3779B1)
        rng = np.random.default_rng(key & 0x7FFFFFFF)
        eff = 1.0 + rng.uniform(-1.0, 1.0) * self.efficiency_spread
        leak = 1.0 + rng.uniform(-1.0, 1.0) * self.leak_spread
        return eff, leak


@dataclasses.dataclass(frozen=True)
class MigrationResult:
    """Outcome of one migration episode."""

    delivered: float
    offered: float
    stored_peak: float
    conversion_loss: float
    leakage_loss: float
    overflow_loss: float
    stranded: float
    final_voltage: float

    @property
    def efficiency(self) -> float:
        """Delivered / offered energy."""
        return self.delivered / self.offered if self.offered > 0 else 0.0


def simulate_migration(
    capacitor: SuperCapacitor,
    pattern: MigrationPattern,
    time_step: float = 30.0,
    initial_voltage: Optional[float] = None,
    nonideal: Optional[NonidealParams] = None,
) -> MigrationResult:
    """Run one charge / hold / discharge episode.

    With ``nonideal=None`` this is the paper's analytical model at slot
    resolution Δt = ``time_step``; with a :class:`NonidealParams` it
    becomes the fine-grained "measurement" reference (callers should
    then also pass a small ``time_step``).
    """
    if not time_step > 0:
        raise ValueError(f"time_step must be > 0, got {time_step}")

    eff_bias, leak_bias = (1.0, 1.0)
    if nonideal is not None:
        eff_bias, leak_bias = nonideal.device_bias(capacitor)

    state = capacitor.fresh_state(initial_voltage)
    baseline = state.stored_energy

    offered = 0.0
    absorbed = 0.0  # energy actually stored (post conversion)
    delivered = 0.0
    drawn = 0.0  # energy removed from the capacitor for the load
    leakage_loss = 0.0
    overflow_loss = 0.0
    stored_peak = state.stored_energy
    time_since_charge = np.inf

    def leak_step(dt: float) -> None:
        nonlocal leakage_loss, time_since_charge
        before = state.stored_energy
        state.leak(dt)
        extra = 0.0
        if nonideal is not None:
            # Device leakage bias.
            extra = (before - state.stored_energy) * (leak_bias - 1.0)
            # Dielectric absorption transient after recent charging.
            if np.isfinite(time_since_charge):
                freshness = np.exp(
                    -time_since_charge / nonideal.dielectric_tau_seconds
                )
                extra += (
                    nonideal.dielectric_fraction
                    * freshness
                    * state.usable_energy
                    * (dt / nonideal.dielectric_tau_seconds)
                )
            if extra > 0:
                new_energy = max(state.stored_energy - extra, 0.0)
                state.voltage = capacitor.voltage_at(new_energy)
        leakage_loss += before - state.stored_energy + max(extra, 0.0)
        time_since_charge += dt

    # Charge phase: constant input power.
    p_in = pattern.quantity / pattern.charge_seconds
    steps = max(int(round(pattern.charge_seconds / time_step)), 1)
    dt = pattern.charge_seconds / steps
    for _ in range(steps):
        chunk = p_in * dt
        offered += chunk
        stored = state.charge(chunk * eff_bias, substeps=4)
        absorbed += stored
        if stored < chunk * 1e-6 or state.headroom <= 1e-12:
            overflow_loss += max(chunk - stored / max(eff_bias, 1e-9), 0.0)
        time_since_charge = 0.0
        leak_step(dt)
        stored_peak = max(stored_peak, state.stored_energy)

    # Hold phase.
    if pattern.hold_seconds > 0:
        steps = max(int(round(pattern.hold_seconds / time_step)), 1)
        dt = pattern.hold_seconds / steps
        for _ in range(steps):
            leak_step(dt)

    # Discharge phase: drain the usable energy evenly over the window.
    steps = max(int(round(pattern.discharge_seconds / time_step)), 1)
    dt = pattern.discharge_seconds / steps
    for step in range(steps):
        remaining_steps = steps - step
        want = state.usable_energy / remaining_steps
        before = state.stored_energy
        got = state.discharge(want, substeps=4) * eff_bias
        delivered += got
        drawn += before - state.stored_energy
        leak_step(dt)

    stranded = state.usable_energy
    conversion_loss = max(
        (offered - overflow_loss) - absorbed, 0.0
    ) + max(drawn - delivered, 0.0)
    return MigrationResult(
        delivered=delivered,
        offered=offered,
        stored_peak=stored_peak - baseline,
        conversion_loss=conversion_loss,
        leakage_loss=leakage_loss,
        overflow_loss=overflow_loss,
        stranded=stranded,
        final_voltage=state.voltage,
    )


def migration_efficiency(
    capacitor: SuperCapacitor,
    pattern: MigrationPattern,
    time_step: float = 30.0,
    nonideal: Optional[NonidealParams] = None,
) -> float:
    """Delivered / offered energy for one episode."""
    return simulate_migration(
        capacitor, pattern, time_step=time_step, nonideal=nonideal
    ).efficiency


def optimal_capacity(
    pattern: MigrationPattern,
    candidates: Sequence[float],
    time_step: float = 30.0,
    **capacitor_kwargs,
) -> tuple[float, float]:
    """Best capacitance (and its efficiency) for a migration pattern.

    Used by the Figure 2 motivation experiment: small capacitors win
    short/small migrations, large ones win long/large migrations.
    """
    if not candidates:
        raise ValueError("need at least one candidate capacitance")
    best_c, best_eff = None, -1.0
    for c in candidates:
        eff = migration_efficiency(
            SuperCapacitor(capacitance=c, **capacitor_kwargs),
            pattern,
            time_step=time_step,
        )
        if eff > best_eff:
            best_c, best_eff = c, eff
    assert best_c is not None
    return best_c, best_eff
