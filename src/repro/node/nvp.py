"""Nonvolatile processor (NVP) model.

The node executes tasks on ferroelectric-flip-flop based nonvolatile
processors [13, 14]: when supply power fails, an NVP backs up its
architectural state in-place and resumes later without re-execution.
For scheduling this means task progress is *retained* across brownouts
— the defining property the simulator relies on — at the price of a
small backup/restore energy per power cycle, which we model so that
frequent brownouts are not entirely free.
"""

from __future__ import annotations

import dataclasses

__all__ = ["NVP"]


@dataclasses.dataclass
class NVP:
    """One nonvolatile processor core.

    Parameters
    ----------
    index:
        Core id; tasks bind to cores by this index (``A_k``).
    backup_energy:
        Energy to checkpoint state into FeFF on power failure, joules.
        The paper's 3 µs wake-up NVP [13] makes this tiny but nonzero.
    restore_energy:
        Energy to restore state on power-up, joules.
    """

    index: int
    backup_energy: float = 3.0e-6
    restore_energy: float = 3.0e-6
    powered: bool = True
    brownout_count: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if self.backup_energy < 0 or self.restore_energy < 0:
            raise ValueError("backup/restore energies must be >= 0")

    def power_fail(self) -> float:
        """Transition to off; returns the backup energy spent."""
        if not self.powered:
            return 0.0
        self.powered = False
        self.brownout_count += 1
        return self.backup_energy

    def power_up(self) -> float:
        """Transition to on; returns the restore energy spent."""
        if self.powered:
            return 0.0
        self.powered = True
        return self.restore_energy

    def cycle_energy(self) -> float:
        """Energy of one full backup+restore cycle, joules."""
        return self.backup_energy + self.restore_energy
