"""The dual-channel solar-powered nonvolatile sensor node.

:class:`SensorNode` assembles the architecture of the paper's Figure 3:
a solar panel feeding a direct supply channel and a "store and use"
channel with a bank of distributed super capacitors, a PMU that routes
energy and selects capacitors, and one NVP per core of the task set.
It is the hardware-side counterpart of the simulator: schedulers make
decisions, the node realises their energy consequences.
"""

from __future__ import annotations

from typing import List, Sequence

from typing import Optional

from ..energy.bank import CapacitorBank
from ..energy.capacitor import SuperCapacitor
from ..solar.panel import SolarPanel
from .dvfs import DVFSModel
from .nvp import NVP
from .pmu import PMU

__all__ = ["SensorNode"]


class SensorNode:
    """Panel + capacitor bank + PMU + NVPs.

    Parameters
    ----------
    capacitors:
        The distributed super capacitors (sizes from the offline sizing
        step).
    num_nvps:
        Number of nonvolatile processor cores (``N_k``).
    panel:
        The PV panel; defaults to the paper's 15.75 cm² / 6% panel.
    direct_efficiency:
        Efficiency of the direct supply channel.
    switch_threshold:
        ``E_th`` for the capacitor switching rule, joules.
    initial_voltages:
        Optional per-capacitor starting voltages.
    dvfs:
        Optional DVFS capability of the NVPs; when present, schedulers
        may run tasks at reduced frequency levels.
    """

    def __init__(
        self,
        capacitors: Sequence[SuperCapacitor],
        num_nvps: int,
        panel: SolarPanel | None = None,
        direct_efficiency: float = 0.98,
        switch_threshold: float = 2.0,
        initial_voltages: Sequence[float] | None = None,
        dvfs: Optional[DVFSModel] = None,
    ) -> None:
        if num_nvps < 1:
            raise ValueError(f"num_nvps must be >= 1, got {num_nvps}")
        self.panel = panel or SolarPanel()
        self.bank = CapacitorBank(capacitors, initial_voltages=initial_voltages)
        self.pmu = PMU(
            bank=self.bank,
            direct_efficiency=direct_efficiency,
            switch_threshold=switch_threshold,
        )
        self.nvps: List[NVP] = [NVP(index=i) for i in range(num_nvps)]
        self.dvfs = dvfs

    @property
    def num_nvps(self) -> int:
        return len(self.nvps)

    @property
    def num_capacitors(self) -> int:
        return len(self.bank)

    def brownout_overhead(self) -> float:
        """Energy per brownout across all cores (backup + restore)."""
        return float(sum(nvp.cycle_energy() for nvp in self.nvps))

    def __repr__(self) -> str:
        return (
            f"SensorNode(nvps={self.num_nvps}, "
            f"capacitors={[s.capacitor.capacitance for s in self.bank.states]})"
        )
