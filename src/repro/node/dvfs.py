"""Dynamic voltage and frequency scaling (DVFS) model.

The paper's related work integrates DVFS into load matching ([5], [6]:
"load-matching adaptive task scheduling ... with DVFS for better
DMR").  We reproduce that capability as an optional node feature: an
NVP may run each task at a reduced frequency level, trading speed for
power.

Scaling laws (classic CMOS): running at normalised frequency ``f``
(with the supply voltage tracking frequency) scales dynamic power
roughly with ``f³`` while static power stays; execution *rate* scales
with ``f``.  Energy per unit of work therefore falls as ``f`` drops
until static power dominates — the sweet spot the energy-optimal level
picks.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

__all__ = ["DVFSModel"]


@dataclasses.dataclass(frozen=True)
class DVFSModel:
    """Discrete frequency levels with cubic dynamic-power scaling.

    Parameters
    ----------
    levels:
        Available normalised frequencies, ascending, ending at 1.0.
    static_fraction:
        Fraction of a task's nominal power that does not scale with
        frequency (leakage, always-on peripherals).
    """

    levels: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    static_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("need at least one frequency level")
        if list(self.levels) != sorted(self.levels):
            raise ValueError(f"levels must be ascending, got {self.levels}")
        if not 0.0 < self.levels[0] or self.levels[-1] != 1.0:
            raise ValueError(
                f"levels must be in (0, 1] and include 1.0, got {self.levels}"
            )
        if not 0.0 <= self.static_fraction < 1.0:
            raise ValueError(
                f"static_fraction must be in [0, 1), got "
                f"{self.static_fraction}"
            )

    # ------------------------------------------------------------------
    def rate(self, level: float) -> float:
        """Execution progress per wall-clock second at ``level``."""
        self._check(level)
        return level

    def power_factor(self, level: float) -> float:
        """Power at ``level`` relative to nominal (level 1.0)."""
        self._check(level)
        dynamic = 1.0 - self.static_fraction
        return self.static_fraction + dynamic * level**3

    def energy_factor(self, level: float) -> float:
        """Energy per unit of work relative to nominal."""
        return self.power_factor(level) / self.rate(level)

    # ------------------------------------------------------------------
    def slowest_meeting(self, required_rate: float) -> Optional[float]:
        """Slowest level with ``rate >= required_rate`` (None if > 1)."""
        if required_rate < 0:
            raise ValueError(
                f"required_rate must be >= 0, got {required_rate}"
            )
        for level in self.levels:
            if self.rate(level) >= required_rate - 1e-12:
                return level
        return None

    def most_efficient(self) -> float:
        """Level with the lowest energy per unit of work."""
        return min(self.levels, key=self.energy_factor)

    def _check(self, level: float) -> None:
        if not any(abs(level - l) < 1e-9 for l in self.levels):
            raise ValueError(
                f"level {level} is not one of {self.levels}"
            )

    def is_valid_level(self, level: float) -> bool:
        return any(abs(level - l) < 1e-9 for l in self.levels)
