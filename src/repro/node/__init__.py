"""Node architecture substrate: NVPs, PMU and the assembled node."""

from .nvp import NVP
from .pmu import PMU, SlotEnergyFlow
from .dvfs import DVFSModel
from .node import SensorNode

__all__ = ["NVP", "PMU", "SlotEnergyFlow", "DVFSModel", "SensorNode"]
