"""Power management unit (PMU).

The PMU of the dual-channel architecture (Figure 3 of the paper) does
three things based on the scheduling results: it switches between the
direct supply channel and the "store and use" channel, selects which
distributed super capacitor is connected, and gates power to the NVPs.

Channel semantics implemented here:

* the **direct channel** feeds the load straight from the panel at
  efficiency ``direct_efficiency`` (close to 1 — its whole point);
* when solar exceeds the load, the surplus is routed into the active
  super capacitor (through the input regulator, handled by the
  capacitor model);
* when the load exceeds solar, the deficit is drawn from the active
  super capacitor (through the output regulator).

Capacitor switching honours the Eq. (22) threshold rule via
:meth:`request_capacitor`.
"""

from __future__ import annotations

import dataclasses

from ..energy.bank import CapacitorBank
from ..obs.events import NULL_OBSERVER

__all__ = ["PMU"]


@dataclasses.dataclass
class PMU:
    """Channel router and capacitor selector.

    Parameters
    ----------
    bank:
        The distributed super capacitor bank.
    direct_efficiency:
        Efficiency of the direct solar→load channel.
    switch_threshold:
        ``E_th`` of Eq. (22): a requested capacitor change is honoured
        only once the active capacitor's usable energy drops below
        this, joules.
    """

    bank: CapacitorBank
    direct_efficiency: float = 0.98
    switch_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.direct_efficiency <= 1.0:
            raise ValueError(
                f"direct_efficiency must be in (0, 1], got "
                f"{self.direct_efficiency}"
            )
        if self.switch_threshold < 0:
            raise ValueError(
                f"switch_threshold must be >= 0, got {self.switch_threshold}"
            )
        # Event emitter; the engine attaches its observer at run start.
        # Not a dataclass field: repr/eq stay as before.
        self.observer = NULL_OBSERVER
        # Fault-injection hook: while True, the capacitor-selection
        # switch is stuck and every request is refused (a stuck
        # regulator/mux); the direct and storage channels keep working.
        self.switch_locked = False

    # ------------------------------------------------------------------
    def request_capacitor(self, index: int) -> bool:
        """Apply the Eq. (22) switching rule; True if now active."""
        previous = self.bank.active_index
        usable = self.bank.active.usable_energy
        if self.switch_locked:
            accepted = index == previous
        else:
            accepted = self.bank.request_switch(index, self.switch_threshold)
        self.observer.capacitor_switch(
            previous=previous,
            requested=index,
            accepted=accepted,
            forced=False,
            active_usable_energy=usable,
            threshold=self.switch_threshold,
        )
        return accepted

    def force_capacitor(self, index: int) -> None:
        """Unconditional switch (used by offline/oracle schedulers)."""
        previous = self.bank.active_index
        usable = self.bank.active.usable_energy
        self.bank.select(index)
        self.observer.capacitor_switch(
            previous=previous,
            requested=index,
            accepted=True,
            forced=True,
            active_usable_energy=usable,
            threshold=self.switch_threshold,
        )

    # ------------------------------------------------------------------
    def supply_slot(
        self, solar_power: float, load_power: float, slot_seconds: float
    ) -> "SlotEnergyFlow":
        """Route energy for one slot; returns the realised flow.

        When storage cannot cover the whole deficit the load runs for
        the covered fraction of the slot and the panel charges the
        capacitor for the rest (the NVPs retain progress meanwhile).
        """
        if solar_power < 0 or load_power < 0:
            raise ValueError("powers must be >= 0")
        if not slot_seconds > 0:
            raise ValueError(f"slot_seconds must be > 0, got {slot_seconds}")

        usable_solar = solar_power * self.direct_efficiency
        active = self.bank.active
        if load_power <= 0.0:
            stored = active.charge(usable_solar * slot_seconds)
            return SlotEnergyFlow(
                run_fraction=1.0,
                direct_energy=0.0,
                storage_energy=0.0,
                charged_energy=stored,
                offered_surplus=usable_solar * slot_seconds,
            )

        if usable_solar >= load_power:
            surplus = (usable_solar - load_power) * slot_seconds
            stored = active.charge(surplus)
            return SlotEnergyFlow(
                run_fraction=1.0,
                direct_energy=load_power * slot_seconds,
                storage_energy=0.0,
                charged_energy=stored,
                offered_surplus=surplus,
            )

        deficit_power = load_power - usable_solar
        needed = deficit_power * slot_seconds
        delivered = active.discharge(needed)
        fraction = min(delivered / needed, 1.0) if needed > 0 else 1.0
        # After brownout the panel keeps charging the capacitor.
        idle_seconds = (1.0 - fraction) * slot_seconds
        offered_idle = usable_solar * idle_seconds
        stored = active.charge(offered_idle) if offered_idle > 0 else 0.0
        return SlotEnergyFlow(
            run_fraction=fraction,
            direct_energy=usable_solar * fraction * slot_seconds,
            storage_energy=delivered,
            charged_energy=stored,
            offered_surplus=offered_idle,
        )


@dataclasses.dataclass(frozen=True)
class SlotEnergyFlow:
    """Realised energy routing of one slot.

    Attributes
    ----------
    run_fraction:
        Fraction of the slot the load actually ran (1.0 = no brownout).
    direct_energy:
        Energy delivered to the load via the direct channel, joules.
    storage_energy:
        Energy delivered to the load from the capacitor, joules.
    charged_energy:
        Energy stored into the capacitor this slot (post-efficiency).
    offered_surplus:
        Surplus energy presented to the capacitor (pre-efficiency).
    """

    run_fraction: float
    direct_energy: float
    storage_energy: float
    charged_energy: float
    offered_surplus: float

    @property
    def load_energy(self) -> float:
        """Total energy the load consumed this slot."""
        return self.direct_energy + self.storage_energy


__all__.append("SlotEnergyFlow")
