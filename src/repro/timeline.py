"""Discrete time structure for long-term scheduling.

The paper divides the scheduling horizon into three nested levels
(Table 1 of the paper):

* ``N_d`` days;
* ``N_p`` periods per day, each lasting ``period_seconds`` (ΔT).  A period
  is the hyper-period of the real-time task set: every task releases once
  per period and must finish before its per-period deadline;
* ``N_s`` slots per period, each lasting ``slot_seconds`` (Δt).  A slot is
  the preemption granularity: tasks may be preempted only at slot
  boundaries, and the solar supply is averaged per slot.

:class:`Timeline` provides index arithmetic between the flat slot index
used by the simulator and the hierarchical ``(day, period, slot)`` triple
used by the formulation, plus iteration helpers.  All instants are
expressed in seconds from local midnight of day 0.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Tuple

__all__ = ["Timeline", "SlotIndex"]

_SECONDS_PER_DAY = 86_400.0


@dataclasses.dataclass(frozen=True)
class SlotIndex:
    """Hierarchical address of one time slot.

    Attributes mirror the paper's subscripts: ``day`` is ``i`` (0-based
    here), ``period`` is ``j`` and ``slot`` is ``m``.
    """

    day: int
    period: int
    slot: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.day, self.period, self.slot)


@dataclasses.dataclass(frozen=True)
class Timeline:
    """Nested day/period/slot time structure.

    Parameters
    ----------
    num_days:
        ``N_d``, number of days in the scheduling horizon.
    periods_per_day:
        ``N_p``, number of task periods per day.
    slots_per_period:
        ``N_s``, number of scheduling slots per period.
    slot_seconds:
        ``Δt``, duration of one slot in seconds.

    The period duration ``ΔT`` is derived as
    ``slots_per_period * slot_seconds``; the product
    ``periods_per_day * ΔT`` does not need to equal 86 400 s (the paper
    schedules the task hyper-period back to back), but
    :meth:`slot_time_of_day` maps slots onto the solar day by spreading
    the ``N_p`` periods uniformly over 24 h, which keeps the solar trace
    aligned with wall-clock time even when the hyper-period does not
    divide the day exactly.
    """

    num_days: int
    periods_per_day: int
    slots_per_period: int
    slot_seconds: float

    def __post_init__(self) -> None:
        if self.num_days < 1:
            raise ValueError(f"num_days must be >= 1, got {self.num_days}")
        if self.periods_per_day < 1:
            raise ValueError(
                f"periods_per_day must be >= 1, got {self.periods_per_day}"
            )
        if self.slots_per_period < 1:
            raise ValueError(
                f"slots_per_period must be >= 1, got {self.slots_per_period}"
            )
        if not self.slot_seconds > 0:
            raise ValueError(f"slot_seconds must be > 0, got {self.slot_seconds}")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def period_seconds(self) -> float:
        """``ΔT``: duration of one period in seconds."""
        return self.slots_per_period * self.slot_seconds

    @property
    def slots_per_day(self) -> int:
        return self.periods_per_day * self.slots_per_period

    @property
    def total_periods(self) -> int:
        return self.num_days * self.periods_per_day

    @property
    def total_slots(self) -> int:
        return self.num_days * self.slots_per_day

    @property
    def horizon_seconds(self) -> float:
        """Total scheduled time (task time, not wall-clock days)."""
        return self.total_slots * self.slot_seconds

    # ------------------------------------------------------------------
    # Index arithmetic
    # ------------------------------------------------------------------
    def flat_slot(self, index: SlotIndex) -> int:
        """Map a hierarchical slot address to a flat slot index."""
        self._check(index)
        return (
            index.day * self.slots_per_day
            + index.period * self.slots_per_period
            + index.slot
        )

    def unflatten(self, flat: int) -> SlotIndex:
        """Inverse of :meth:`flat_slot`."""
        if not 0 <= flat < self.total_slots:
            raise IndexError(
                f"flat slot {flat} out of range [0, {self.total_slots})"
            )
        day, rem = divmod(flat, self.slots_per_day)
        period, slot = divmod(rem, self.slots_per_period)
        return SlotIndex(day=day, period=period, slot=slot)

    def flat_period(self, day: int, period: int) -> int:
        """Flat index of a period across the whole horizon."""
        if not 0 <= day < self.num_days:
            raise IndexError(f"day {day} out of range [0, {self.num_days})")
        if not 0 <= period < self.periods_per_day:
            raise IndexError(
                f"period {period} out of range [0, {self.periods_per_day})"
            )
        return day * self.periods_per_day + period

    def unflatten_period(self, flat: int) -> Tuple[int, int]:
        if not 0 <= flat < self.total_periods:
            raise IndexError(
                f"flat period {flat} out of range [0, {self.total_periods})"
            )
        return divmod(flat, self.periods_per_day)

    # ------------------------------------------------------------------
    # Wall-clock mapping
    # ------------------------------------------------------------------
    def slot_time_of_day(self, index: SlotIndex) -> float:
        """Seconds since midnight at the *start* of the given slot.

        Periods are spread uniformly over the 24 h solar day so that a
        task hyper-period that does not divide the day still sees a
        consistent diurnal solar pattern.
        """
        self._check(index)
        period_start = index.period * (_SECONDS_PER_DAY / self.periods_per_day)
        return period_start + index.slot * self.slot_seconds

    def slot_absolute_time(self, index: SlotIndex) -> float:
        """Seconds since midnight of day 0 at the start of the slot."""
        return index.day * _SECONDS_PER_DAY + self.slot_time_of_day(index)

    def deadline_slot(self, deadline_seconds: float) -> int:
        """Slot index (within the period) at which a deadline is checked.

        Per Section 3.2 of the paper, when a deadline ``D_n`` does not
        fall on a slot boundary, the miss test uses the beginning of the
        next slot after ``D_n``.  The returned value is the number of
        whole slots available before the deadline, clamped to
        ``[0, N_s]``: a task checked at slot ``m`` may use slots
        ``0 .. m-1``.
        """
        if deadline_seconds < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline_seconds}")
        slot = int(math.ceil(deadline_seconds / self.slot_seconds - 1e-12))
        return min(slot, self.slots_per_period)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_slots(self) -> Iterator[SlotIndex]:
        """Iterate over every slot in chronological order."""
        for day in range(self.num_days):
            for period in range(self.periods_per_day):
                for slot in range(self.slots_per_period):
                    yield SlotIndex(day, period, slot)

    def iter_periods(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(day, period)`` pairs in chronological order."""
        for day in range(self.num_days):
            for period in range(self.periods_per_day):
                yield day, period

    def period_slots(self, day: int, period: int) -> Iterator[SlotIndex]:
        """Iterate over the slots of a single period."""
        for slot in range(self.slots_per_period):
            yield SlotIndex(day, period, slot)

    # ------------------------------------------------------------------
    def with_days(self, num_days: int) -> "Timeline":
        """A copy of this timeline with a different horizon length."""
        return dataclasses.replace(self, num_days=num_days)

    def _check(self, index: SlotIndex) -> None:
        if not 0 <= index.day < self.num_days:
            raise IndexError(f"day {index.day} out of range [0, {self.num_days})")
        if not 0 <= index.period < self.periods_per_day:
            raise IndexError(
                f"period {index.period} out of range [0, {self.periods_per_day})"
            )
        if not 0 <= index.slot < self.slots_per_period:
            raise IndexError(
                f"slot {index.slot} out of range [0, {self.slots_per_period})"
            )
