"""Statistical analysis helpers for scheduler comparisons.

Simulation DMRs are noisy functions of the weather seed; claiming
"scheduler A beats scheduler B" deserves an uncertainty estimate.
This module provides the small statistics toolbox the experiment
notes use: bootstrap confidence intervals over per-period DMR series,
paired comparisons across benchmarks/days, and seed sweeps.

Implemented from scratch on numpy (the repository's only runtime
dependency); functions accept plain arrays so they also work on any
user-collected series.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from .sim.recorder import SimulationResult

__all__ = [
    "bootstrap_ci",
    "paired_bootstrap_diff",
    "PairedComparison",
    "compare_results",
    "seed_sweep",
]


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile bootstrap CI: ``(estimate, low, high)``."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples < 1:
        raise ValueError(f"num_resamples must be >= 1, got {num_resamples}")
    rng = np.random.default_rng(seed)
    n = len(values)
    stats = np.empty(num_resamples)
    for i in range(num_resamples):
        stats[i] = statistic(values[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(statistic(values)),
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


@dataclasses.dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired A-vs-B comparison.

    ``diff`` is mean(A - B): negative favours A when lower is better
    (DMR).  ``p_value`` is the two-sided bootstrap sign-flip p-value.
    """

    diff: float
    ci_low: float
    ci_high: float
    p_value: float

    @property
    def significant(self) -> bool:
        """CI excludes zero at the chosen confidence."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def paired_bootstrap_diff(
    a: np.ndarray,
    b: np.ndarray,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap on per-item differences ``a - b``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or len(a) == 0:
        raise ValueError("a and b must be equal-length non-empty 1-D arrays")
    diffs = a - b
    estimate, low, high = bootstrap_ci(
        diffs, confidence=confidence, num_resamples=num_resamples, seed=seed
    )
    # Sign-flip permutation p-value (paired, two-sided).
    rng = np.random.default_rng(seed + 1)
    observed = abs(diffs.mean())
    hits = 0
    for _ in range(num_resamples):
        signs = rng.choice([-1.0, 1.0], size=len(diffs))
        if abs((diffs * signs).mean()) >= observed - 1e-15:
            hits += 1
    p = (hits + 1) / (num_resamples + 1)
    return PairedComparison(
        diff=estimate, ci_low=low, ci_high=high, p_value=float(p)
    )


def compare_results(
    a: SimulationResult,
    b: SimulationResult,
    granularity: str = "day",
    **kwargs,
) -> PairedComparison:
    """Paired DMR comparison of two simulation results.

    ``granularity`` pairs per ``"day"`` (robust) or per ``"period"``
    (fine but correlated).  Negative ``diff`` means ``a`` has the
    lower (better) DMR.
    """
    if granularity == "day":
        series_a, series_b = a.dmr_by_day(), b.dmr_by_day()
    elif granularity == "period":
        series_a, series_b = a.dmr_series(), b.dmr_series()
    else:
        raise ValueError(
            f"granularity must be 'day' or 'period', got {granularity!r}"
        )
    return paired_bootstrap_diff(series_a, series_b, **kwargs)


def seed_sweep(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> Dict[str, float]:
    """Evaluate ``run(seed)`` over seeds; mean/std/min/max summary."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = np.array([run(s) for s in seeds], dtype=float)
    return {
        "mean": float(values.mean()),
        "std": float(values.std(ddof=1)) if len(values) > 1 else 0.0,
        "min": float(values.min()),
        "max": float(values.max()),
        "n": float(len(values)),
    }
