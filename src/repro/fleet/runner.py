"""Fleet execution: shard nodes over the process pool, checkpoint shards.

A :class:`FleetRunner` expands a :class:`~repro.fleet.spec.FleetSpec`
into shards of node ids and fans them out over
:func:`repro.perf.parallel.parallel_map`.  Each shard is a tiny
picklable work item ``(spec, node_ids, shard_index, span_context)``;
the worker rebuilds the base trace, derives every node's configuration
from ``(fleet seed, node id)``, simulates it inside ``shard``/``node``
spans and returns one :class:`~repro.fleet.result.NodeSummary` per
node plus its collected span records.

Two layers of reuse ride on the existing artifact cache:

- *shard checkpoints* (kind ``fleet-shard``): every finished shard is
  written under a digest of the fleet spec and its node ids, so a
  killed or re-invoked fleet run only recomputes the missing shards —
  and re-aggregation (``repro fleet report`` from cache, changed
  worker counts) is free;
- *shared offline stages* (kind ``policy``): when the ``proposed``
  policy is in the pool, the DBN pipeline trains once per distinct
  workload and every node with that workload loads the artifact.

Determinism contract: node summaries are pure functions of ``(fleet
seed, node id)``; shards are combined in node-id order; therefore
``FleetResult.fingerprint()`` is bit-identical for any worker count,
shard size or shard executor — the default node-major batched engine
(:mod:`repro.sim.batch`) and the scalar per-node engine produce the
same bytes (guarded by tests, the batched-vs-per-node oracle and the
``repro fleet`` acceptance check).

Execution is *supervised* (:mod:`repro.reliability.supervisor`): a
raising node is retried in its worker and then quarantined into a
:class:`~repro.fleet.result.FailedNode` record instead of aborting the
run (``on_node_error="quarantine"``, the default; ``"fail"`` restores
abort-on-first-error), hung shards are re-dispatched under
``task_timeout``, and dead workers rebuild the pool.  A degraded run
keeps the determinism contract over the *healthy subset*: the
fingerprint equals a fault-free run of the same fleet restricted to
the same healthy node ids (``exclude_nodes``), whatever the worker
count.  The :class:`~repro.reliability.chaos.ChaosSpec` hook injects
worker kills, hangs and poison nodes deterministically to prove it.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..energy.capacitor import SuperCapacitor
from ..node.node import SensorNode
from ..obs.events import NULL_OBSERVER, Observer
from ..obs.sketch import P2Quantile
from ..obs.trace import NULL_TRACER, activate, collecting_tracer
from ..perf.cache import ArtifactCache, cache_enabled, default_cache, hash_key
from ..perf.parallel import resolve_workers
from ..reliability.chaos import ChaosPlan, ChaosSpec
from ..reliability.supervisor import (
    SupervisorError,
    SupervisorPolicy,
    TaskFailure,
    supervised_map,
)
from ..schedulers import (
    DVFSLoadMatchingScheduler,
    GreedyEDFScheduler,
    InterTaskScheduler,
    IntraTaskScheduler,
    RandomScheduler,
)
from ..sim.checkpoint import result_fingerprint
from ..sim.engine import simulate
from ..verify.strategies import build_graph
from .result import FailedNode, FleetAggregate, FleetResult, NodeSummary
from .spec import FleetSpec, NodeSpec, node_trace

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "FleetRunner",
    "node_spec_digest",
    "run_fleet",
    "simulate_node",
    "simulate_shard_batch",
]

#: Shard executors: ``batch`` advances every eligible node of a shard
#: through one node-major :mod:`repro.sim.batch` engine (per-node
#: fallback for ineligible configs); ``per-node`` steps one scalar
#: engine per node.  Bit-identical by contract — guarded by the
#: batched-vs-per-node oracle and the conformance test wall.
ENGINES = ("batch", "per-node")

#: Nodes per work item.  Small enough to load-balance a handful of
#: workers on mid-sized fleets, big enough that the per-item pickle and
#: base-trace rebuild cost stays negligible.
DEFAULT_SHARD_SIZE = 32

#: Artifact-cache namespace of shard checkpoints.
SHARD_KIND = "fleet-shard"


# ----------------------------------------------------------------------
# Per-node simulation (runs inside worker processes)
# ----------------------------------------------------------------------
def _make_scheduler(policy: str, scheduler_seed: int):
    if policy == "asap":
        return GreedyEDFScheduler()
    if policy == "inter-task":
        return InterTaskScheduler()
    if policy == "intra-task":
        return IntraTaskScheduler()
    if policy == "dvfs":
        return DVFSLoadMatchingScheduler()
    if policy == "random":
        return RandomScheduler(scheduler_seed)
    raise ValueError(f"unknown fleet policy {policy!r}")


def _proposed_policy(fleet: FleetSpec, graph_kind: str):
    """Train (or cache-load) the paper's pipeline for one workload.

    The training budget is the fleet's small ``proposed_*`` knobs; the
    artifact is shared through the ``policy`` disk cache, so a fleet
    with 50 ``proposed``/``wam`` nodes trains once, not 50 times.
    """
    from ..core.offline import OfflinePipeline
    from ..solar.days import synthetic_trace
    from ..timeline import Timeline

    graph = build_graph(graph_kind)
    train_tl = Timeline(
        num_days=fleet.proposed_train_days,
        periods_per_day=fleet.periods_per_day,
        slots_per_period=fleet.slots_per_period,
        slot_seconds=fleet.slot_seconds,
    )
    train_trace = synthetic_trace(train_tl, seed=fleet.seed)
    pipeline = OfflinePipeline(
        graph,
        pretrain_epochs=fleet.proposed_epochs,
        finetune_epochs=fleet.proposed_epochs,
        augment_per_period=1,
        seed=fleet.seed,
    )
    cache = default_cache() if cache_enabled() else None
    return pipeline.run(train_trace, cache=cache)


def _summarize(spec: NodeSpec, graph, result) -> NodeSummary:
    """Reduce one node's :class:`SimulationResult` to its summary.

    Shared by the per-node and batched executors so both paths derive
    the fingerprint (and every aggregate input) identically.
    """
    return NodeSummary(
        node_id=spec.node_id,
        graph_kind=spec.graph_kind,
        policy=spec.policy,
        num_tasks=len(graph),
        panel_scale=spec.panel_scale,
        bank_farads=tuple(spec.bank_farads),
        dmr=result.dmr,
        energy_utilization=result.energy_utilization,
        migration_efficiency=result.migration_efficiency,
        brownout_slots=result.total_brownout_slots,
        solar_energy=result.total_solar_energy,
        load_energy=result.total_load_energy,
        fingerprint=result_fingerprint(result),
    )


def simulate_node(fleet: FleetSpec, base_trace, spec: NodeSpec) -> NodeSummary:
    """Simulate one fleet node and reduce it to a :class:`NodeSummary`.

    Pure function of the fleet spec, the shared base trace and the
    node spec — no global state, safe in any worker process.
    """
    graph = build_graph(spec.graph_kind)
    trace = node_trace(base_trace, spec)
    if spec.policy == "proposed":
        policy = _proposed_policy(fleet, spec.graph_kind)
        node = policy.make_node()
        scheduler = policy.make_scheduler()
    else:
        node = SensorNode(
            [SuperCapacitor(capacitance=c) for c in spec.bank_farads],
            num_nvps=graph.num_nvps,
        )
        scheduler = _make_scheduler(spec.policy, spec.scheduler_seed)
    result = simulate(node, graph, trace, scheduler, strict=False)
    return _summarize(spec, graph, result)


def _batch_case(spec: NodeSpec, graph, base_trace):
    """Build the :class:`~repro.sim.batch.BatchCase` for one node."""
    from ..sim.batch import BatchCase

    return BatchCase(
        graph=graph,
        trace=node_trace(base_trace, spec),
        capacitors=tuple(
            SuperCapacitor(capacitance=c) for c in spec.bank_farads
        ),
        policy=spec.policy,
        scheduler_seed=spec.scheduler_seed,
    )


def simulate_shard_batch(
    fleet: FleetSpec, base_trace, specs: Sequence[NodeSpec]
) -> List[NodeSummary]:
    """Batched counterpart of mapping :func:`simulate_node` over specs.

    Eligible nodes (policy in :data:`~repro.sim.batch.BATCH_POLICIES`,
    task count within the batch width) advance together through one
    node-major engine; the rest — ``proposed``/``dvfs`` policies,
    oversized graphs — run through :func:`simulate_node`.  Summaries
    come back in input order and are bit-identical to the per-node
    path (the batched-vs-per-node oracle holds this contract).
    """
    from ..sim.batch import batch_ineligibility, simulate_batch

    specs = list(specs)
    graphs = [build_graph(s.graph_kind) for s in specs]
    eligible = [
        i
        for i, (s, g) in enumerate(zip(specs, graphs))
        if batch_ineligibility(s.policy, g) is None
    ]
    summaries: List[Optional[NodeSummary]] = [None] * len(specs)
    if eligible:
        cases = [
            _batch_case(specs[i], graphs[i], base_trace) for i in eligible
        ]
        for i, result in zip(eligible, simulate_batch(cases)):
            summaries[i] = _summarize(specs[i], graphs[i], result)
    for i, spec in enumerate(specs):
        if summaries[i] is None:
            summaries[i] = simulate_node(fleet, base_trace, spec)
    return [s for s in summaries if s is not None]


def node_spec_digest(spec: NodeSpec) -> str:
    """Content digest of one node's exact configuration.

    Recorded on every :class:`~repro.fleet.result.FailedNode` so a
    quarantined node can be reproduced in isolation from its fleet.
    """
    import dataclasses

    return hash_key(
        {"artifact": "node-spec", **dataclasses.asdict(spec)}
    )


def _run_shard(item):
    """Worker entry point: simulate one shard of node ids, supervised.

    Module-level (picklable) on purpose; rebuilds the shared base trace
    once per shard rather than shipping the power array per item.

    The work item is ``(spec, node_ids, shard_index, ctx_wire,
    chaos_plan, node_retries, on_node_error, engine, attempt)``:
    ``ctx_wire`` is the parent's serialized span context (or ``None``
    when untraced) and ``attempt`` is the supervisor's re-dispatch
    count (chaos keys first-attempt-only faults off it).  The worker
    opens a ``shard`` span keyed by the shard index and one ``node``
    span per per-node-simulated id — explicit keys, so the span ids
    are identical whichever process (or attempt) runs the shard — and
    returns the collected span records with the summaries for the
    parent to re-emit.

    With ``engine="batch"`` (and no chaos plan — chaos faults are
    keyed per node, so chaos runs always step per node) the shard's
    batch-eligible nodes advance together through one
    :mod:`repro.sim.batch` engine under a single ``batch`` child span
    instead of per-node ``node`` spans; ineligible nodes — and, if the
    batched engine itself raises, every node it covered — fall back to
    the per-node loop below, which keeps its retry/quarantine
    semantics.  Summaries are reassembled in ``node_ids`` order either
    way, so the executor never shows through the fingerprint.

    A node whose simulation raises is retried up to ``node_retries``
    times in place (immediately — the engine is deterministic, the
    retries absorb environmental interference) and then either
    quarantined into a :class:`~repro.fleet.result.FailedNode`
    (``on_node_error="quarantine"``) or re-raised to the supervisor
    (``"fail"``).  Returns ``(summaries, failed, seconds, records)``.
    """
    (
        fleet, node_ids, shard_index, ctx_wire,
        chaos, node_retries, on_node_error, engine, attempt,
    ) = item
    if chaos is not None:
        chaos.on_shard_start(shard_index, attempt)
    start = time.perf_counter()
    tracer, records = collecting_tracer(ctx_wire)
    base = fleet.base_trace()
    done: Dict[int, NodeSummary] = {}
    failed: List[FailedNode] = []
    with activate(tracer):
        with tracer.span(
            "shard",
            key=shard_index,
            attrs={
                "shard_index": shard_index,
                "n_nodes": len(node_ids),
                "engine": engine,
            },
        ):
            if engine == "batch" and chaos is None:
                from ..sim.batch import batch_ineligibility, simulate_batch

                eligible = []
                for node_id in node_ids:
                    spec = fleet.node_spec(node_id)
                    graph = build_graph(spec.graph_kind)
                    if batch_ineligibility(spec.policy, graph) is None:
                        eligible.append((node_id, spec, graph))
                if eligible:
                    with tracer.span(
                        "batch",
                        key=shard_index,
                        attrs={
                            "shard_index": shard_index,
                            "n_nodes": len(eligible),
                        },
                    ) as span:
                        try:
                            results = simulate_batch(
                                [
                                    _batch_case(spec, graph, base)
                                    for _, spec, graph in eligible
                                ]
                            )
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:
                            # Whole-batch failure: annotate and let the
                            # per-node loop (with its retry/quarantine
                            # machinery) re-run every covered node.
                            span.annotate(
                                failed=True,
                                error_type=type(exc).__name__,
                            )
                        else:
                            for (node_id, spec, graph), result in zip(
                                eligible, results
                            ):
                                done[node_id] = _summarize(
                                    spec, graph, result
                                )
                            span.annotate(n_batched=len(results))
            for node_id in node_ids:
                if node_id in done:
                    continue
                spec = fleet.node_spec(node_id)
                with tracer.span(
                    "node",
                    key=node_id,
                    attrs={"node_id": node_id, "policy": spec.policy},
                ) as span:
                    retries = 0
                    while True:
                        try:
                            if chaos is not None:
                                chaos.on_node_start(node_id, attempt)
                            summary = simulate_node(fleet, base, spec)
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:
                            if retries < node_retries:
                                retries += 1
                                continue
                            if on_node_error == "fail":
                                raise
                            span.annotate(
                                failed=True,
                                error_type=type(exc).__name__,
                            )
                            failed.append(
                                FailedNode(
                                    node_id=node_id,
                                    policy=spec.policy,
                                    graph_kind=spec.graph_kind,
                                    error_type=type(exc).__name__,
                                    message=str(exc),
                                    spec_digest=node_spec_digest(spec),
                                    retries=retries,
                                )
                            )
                            break
                        else:
                            span.annotate(dmr=summary.dmr)
                            done[node_id] = summary
                            break
    summaries = [done[i] for i in node_ids if i in done]
    return summaries, failed, time.perf_counter() - start, records


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class FleetRunner:
    """Shard a fleet across the process pool and aggregate the results.

    Parameters
    ----------
    spec:
        The fleet to run.
    workers:
        Process count (``None`` → ``$REPRO_WORKERS`` → serial).  Never
        affects results, only wall-clock.
    shard_size:
        Nodes per work item (default :data:`DEFAULT_SHARD_SIZE`).
        Never affects results.
    engine:
        Shard executor (:data:`ENGINES`): ``"batch"`` (default)
        advances every batch-eligible node of a shard through one
        node-major :mod:`repro.sim.batch` engine and steps the rest
        per node; ``"per-node"`` forces the scalar engine everywhere.
        Bit-identical by contract, so it never affects results — only
        nodes/s — and shard checkpoints are shared across engines.
        Chaos runs always execute per node (faults key on node ids).
    cache:
        Shard-checkpoint store.  ``None`` uses the default artifact
        cache when caching is enabled (``REPRO_NO_CACHE`` unset);
        ``False`` disables shard checkpointing outright.
    observer:
        Receives one ``fleet_shard`` event per shard, supervisor
        events (``task_retry``/``worker_lost``/``shard_timeout``/
        ``node_quarantined``) plus the run trailer via
        :meth:`Observer.finish`.
    max_retries:
        Supervisor re-dispatches per shard (and in-worker retries per
        node) beyond the first attempt.
    task_timeout:
        Per-shard wall-clock budget in seconds (``None`` disables).
        Forces pool mode: a hung shard can only be abandoned from
        another process.
    on_node_error:
        ``"quarantine"`` (default) records a raising node as a
        :class:`~repro.fleet.result.FailedNode` and completes the run
        degraded; ``"fail"`` aborts on the first permanent failure
        with :class:`~repro.reliability.supervisor.SupervisorError`.
    chaos:
        Optional :class:`~repro.reliability.chaos.ChaosSpec` injecting
        deterministic worker kills, hangs, and poison nodes.  Forces
        pool mode while active.  The chaos descriptor is mixed into
        shard-checkpoint digests so chaos runs never pollute the
        clean-run cache.
    exclude_nodes:
        Node ids to skip entirely — the tool for reproducing a
        degraded run's healthy subset fault-free.  Never affects the
        summaries of the nodes that do run.
    """

    def __init__(
        self,
        spec: FleetSpec,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        cache=None,
        observer: Optional[Observer] = None,
        max_retries: int = 2,
        task_timeout: Optional[float] = None,
        on_node_error: str = "quarantine",
        chaos: Optional[ChaosSpec] = None,
        exclude_nodes: Optional[Sequence[int]] = None,
        engine: str = "batch",
    ) -> None:
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if on_node_error not in ("quarantine", "fail"):
            raise ValueError(
                "on_node_error must be 'quarantine' or 'fail', got "
                f"{on_node_error!r}"
            )
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.spec = spec
        self.workers = resolve_workers(workers)
        self.shard_size = int(shard_size or DEFAULT_SHARD_SIZE)
        if cache is False:
            self.cache: Optional[ArtifactCache] = None
        elif cache is None:
            self.cache = default_cache() if cache_enabled() else None
        else:
            self.cache = cache
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.max_retries = int(max_retries)
        self.task_timeout = task_timeout
        self.on_node_error = on_node_error
        self.chaos = chaos if chaos is not None and chaos.active else None
        self.exclude_nodes: FrozenSet[int] = frozenset(
            exclude_nodes or ()
        )
        self.engine = engine

    # ------------------------------------------------------------------
    def shards(self) -> List[Tuple[int, ...]]:
        """Node ids partitioned into contiguous shards.

        Excluded nodes are dropped *before* sharding, so an
        ``--exclude-nodes`` re-run packs the surviving ids into a
        different shard layout — which the determinism contract says
        must not matter.
        """
        ids = [
            i for i in range(self.spec.n_nodes)
            if i not in self.exclude_nodes
        ]
        return [
            tuple(ids[lo : lo + self.shard_size])
            for lo in range(0, len(ids), self.shard_size)
        ]

    def _shard_digest(self, node_ids: Sequence[int]) -> str:
        # Deliberately engine-independent: both executors are
        # bit-identical (oracle-guarded), so a checkpoint written by
        # either serves both.
        key = {
            "artifact": SHARD_KIND,
            "fleet": self.spec.describe(),
            "shard": list(node_ids),
        }
        if self.chaos is not None:
            # Chaos mutates outcomes (quarantines, retry counts):
            # never share checkpoints with clean runs.
            key["chaos"] = self.chaos.describe()
        return hash_key(key)

    # ------------------------------------------------------------------
    def _quarantine_shard(
        self, node_ids: Sequence[int], failure: TaskFailure
    ) -> List[FailedNode]:
        """Turn a permanently-failed *shard* into per-node records.

        Reached only under ``on_node_error="quarantine"`` when the
        supervisor gave up on the whole work item (timeout exhausted,
        worker died in isolation): blame cannot be pinned on one node,
        so every node of the shard is quarantined with the shard's
        failure reason.
        """
        return [
            FailedNode(
                node_id=node_id,
                policy=self.spec.node_spec(node_id).policy,
                graph_kind=self.spec.node_spec(node_id).graph_kind,
                error_type=failure.error_type,
                message=f"shard failed: {failure.message}",
                spec_digest=node_spec_digest(self.spec.node_spec(node_id)),
                retries=failure.retries,
            )
            for node_id in node_ids
        ]

    def _emit_quarantines(self, failed: Sequence[FailedNode]) -> None:
        for f in failed:
            self.observer.node_quarantined(
                node_id=f.node_id,
                node_policy=f.policy,
                error_type=f.error_type,
                spec_digest=f.spec_digest,
                retries=f.retries,
                reason=(
                    f"{f.error_type} on every allowed attempt: "
                    f"{f.message}"
                ),
            )

    @staticmethod
    def _load_checkpoint(cached):
        """Tolerant shard-checkpoint read.

        Pre-supervision checkpoints stored a bare summary list; the
        supervised format is ``(summaries, failed)``.  Anything else
        is a corrupt entry — reported as ``None`` (recompute).
        """
        if isinstance(cached, list):
            return cached, []
        if (
            isinstance(cached, tuple)
            and len(cached) == 2
            and isinstance(cached[0], list)
            and isinstance(cached[1], list)
        ):
            return cached
        return None

    def run(self) -> FleetResult:
        """Simulate every node; returns the aggregate.

        Checkpointed shards are loaded instead of recomputed; pending
        shards fan out over the supervised process pool, are
        checkpointed as they land, and emit their ``fleet_shard``
        event *at completion* (in completion order — this is the
        live-progress pulse).  Summaries always combine in node-id
        order, so the aggregate fingerprint is independent of all of
        this — including retries, quarantines and pool rebuilds.

        When the observer is enabled the run is traced: a ``fleet_run``
        root span whose context rides inside each worker payload, so
        shard/node spans from every process reassemble under one root.
        """
        shards = self.shards()
        if not shards:
            raise ValueError(
                "fleet has no nodes to run (everything excluded?)"
            )
        start = time.perf_counter()
        obs = self.observer
        if self.cache is not None:
            # Route this run's cache-write failures through the bus.
            self.cache.observer = obs
        tracer = getattr(obs, "tracer", None)
        if tracer is None:
            tracer = (
                obs.start_trace("fleet", self.spec.seed, self.spec.n_nodes)
                if obs.enabled
                else NULL_TRACER
            )
        plan: Optional[ChaosPlan] = (
            self.chaos.plan(
                [i for ids in shards for i in ids], len(shards)
            )
            if self.chaos is not None
            else None
        )
        ready: Dict[int, List[NodeSummary]] = {}
        failed_by_shard: Dict[int, List[FailedNode]] = {}
        pending: List[int] = []
        shard_aggs: dict = {}
        dmr_stream = P2Quantile(0.5)

        with tracer.span(
            "fleet_run",
            attrs={
                "n_nodes": self.spec.n_nodes,
                "num_shards": len(shards),
                "workers": self.workers,
            },
        ):
            for index, node_ids in enumerate(shards):
                cached = (
                    self._load_checkpoint(
                        self.cache.get(
                            SHARD_KIND, self._shard_digest(node_ids)
                        )
                    )
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    summaries, failed = cached
                    ready[index] = summaries
                    if failed:
                        failed_by_shard[index] = failed
                        self._emit_quarantines(failed)
                    with tracer.span(
                        "shard",
                        key=index,
                        attrs={
                            "shard_index": index,
                            "n_nodes": len(node_ids),
                            "cached": True,
                        },
                    ):
                        pass
                    for summary in summaries:
                        dmr_stream.add(summary.dmr)
                    obs.fleet_shard(
                        index, len(shards), node_ids, cached=True,
                        seconds=0.0,
                        p50_dmr_est=dmr_stream.estimate(-1.0),
                    )
                else:
                    pending.append(index)

            wire = (
                tracer.context().to_wire() if tracer.enabled else None
            )

            def _landed(position: int, out) -> None:
                summaries, failed, seconds, records = out
                index = pending[position]
                ready[index] = summaries
                if failed:
                    failed_by_shard[index] = failed
                    self._emit_quarantines(failed)
                for record in records:
                    obs.emit_record(record)
                if self.cache is not None:
                    self.cache.put(
                        SHARD_KIND,
                        self._shard_digest(shards[index]),
                        (summaries, failed),
                    )
                for summary in summaries:
                    dmr_stream.add(summary.dmr)
                obs.fleet_shard(
                    index, len(shards), shards[index], cached=False,
                    seconds=seconds,
                    p50_dmr_est=dmr_stream.estimate(-1.0),
                )

            policy = SupervisorPolicy(
                max_retries=self.max_retries,
                task_timeout=self.task_timeout,
                backoff_seed=self.spec.seed,
                on_error=(
                    "fail" if self.on_node_error == "fail"
                    else "quarantine"
                ),
            )

            def _payload(item, attempt):
                # The supervisor re-dispatches with a fresh attempt
                # number; chaos keys first-attempt-only faults off it.
                return item[:-1] + (attempt,)

            base_items = [
                (
                    self.spec, shards[i], i, wire,
                    plan, self.max_retries, self.on_node_error,
                    self.engine, 0,
                )
                for i in pending
            ]
            sup = supervised_map(
                _run_shard,
                base_items,
                policy=policy,
                n_workers=self.workers,
                observer=obs,
                on_result=_landed,
                prepare=_payload,
                labels=[f"shard-{i}" for i in pending],
                # Chaos kills call os._exit in the worker: never run
                # them in this process.
                force_pool=plan is not None,
            )
            for failure in sup.failures:
                index = pending[failure.index]
                ready[index] = []
                failed = self._quarantine_shard(shards[index], failure)
                failed_by_shard[index] = failed
                self._emit_quarantines(failed)

        for index in sorted(ready):
            shard_aggs[index] = FleetAggregate.from_nodes(
                ready[index], failed_by_shard.get(index, ())
            )
        aggregate: Optional[FleetAggregate] = None
        for index in sorted(shard_aggs):
            aggregate = (
                shard_aggs[index]
                if aggregate is None
                else aggregate.merge(shard_aggs[index])
            )

        nodes = [s for index in sorted(ready) for s in ready[index]]
        failed_nodes = [
            f for index in sorted(failed_by_shard)
            for f in failed_by_shard[index]
        ]
        if not nodes:
            raise SupervisorError(
                [
                    TaskFailure(
                        index=f.node_id,
                        label=f"node-{f.node_id}",
                        error_type=f.error_type,
                        message=f.message,
                        retries=f.retries,
                    )
                    for f in failed_nodes
                ]
                or [
                    TaskFailure(
                        index=-1, label="fleet",
                        error_type="RuntimeError",
                        message="no healthy nodes", retries=0,
                    )
                ]
            )
        wall = time.perf_counter() - start
        result = FleetResult(
            nodes,
            config={
                **self.spec.describe(),
                "workers": self.workers,
                "shard_size": self.shard_size,
                "engine": self.engine,
                "shards": len(shards),
                "wall_time_s": wall,
                "nodes_per_s": len(nodes) / wall if wall > 0 else 0.0,
                "max_retries": self.max_retries,
                "task_timeout": self.task_timeout,
                "on_node_error": self.on_node_error,
                "supervisor": {
                    "retries": sup.retries,
                    "timeouts": sup.timeouts,
                    "pool_rebuilds": sup.pool_rebuilds,
                },
                **(
                    {"chaos": self.chaos.describe()}
                    if self.chaos is not None
                    else {}
                ),
                **(
                    {"exclude_nodes": sorted(self.exclude_nodes)}
                    if self.exclude_nodes
                    else {}
                ),
            },
            aggregate=aggregate,
            failed_nodes=failed_nodes,
        )
        self.observer.finish(
            result_summary=result.summary(), scheduler="fleet"
        )
        return result


def run_fleet(
    spec: FleetSpec,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    cache=None,
    observer: Optional[Observer] = None,
    max_retries: int = 2,
    task_timeout: Optional[float] = None,
    on_node_error: str = "quarantine",
    chaos: Optional[ChaosSpec] = None,
    exclude_nodes: Optional[Sequence[int]] = None,
    engine: str = "batch",
) -> FleetResult:
    """One-call convenience wrapper around :class:`FleetRunner`."""
    return FleetRunner(
        spec,
        workers=workers,
        shard_size=shard_size,
        cache=cache,
        observer=observer,
        max_retries=max_retries,
        task_timeout=task_timeout,
        on_node_error=on_node_error,
        chaos=chaos,
        exclude_nodes=exclude_nodes,
        engine=engine,
    ).run()
