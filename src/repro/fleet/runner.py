"""Fleet execution: shard nodes over the process pool, checkpoint shards.

A :class:`FleetRunner` expands a :class:`~repro.fleet.spec.FleetSpec`
into shards of node ids and fans them out over
:func:`repro.perf.parallel.parallel_map`.  Each shard is a tiny
picklable work item ``(spec, node_ids, shard_index, span_context)``;
the worker rebuilds the base trace, derives every node's configuration
from ``(fleet seed, node id)``, simulates it inside ``shard``/``node``
spans and returns one :class:`~repro.fleet.result.NodeSummary` per
node plus its collected span records.

Two layers of reuse ride on the existing artifact cache:

- *shard checkpoints* (kind ``fleet-shard``): every finished shard is
  written under a digest of the fleet spec and its node ids, so a
  killed or re-invoked fleet run only recomputes the missing shards —
  and re-aggregation (``repro fleet report`` from cache, changed
  worker counts) is free;
- *shared offline stages* (kind ``policy``): when the ``proposed``
  policy is in the pool, the DBN pipeline trains once per distinct
  workload and every node with that workload loads the artifact.

Determinism contract: node summaries are pure functions of ``(fleet
seed, node id)``; shards are combined in node-id order; therefore
``FleetResult.fingerprint()`` is bit-identical for any worker count or
shard size (guarded by tests and the ``repro fleet`` acceptance check).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..energy.capacitor import SuperCapacitor
from ..node.node import SensorNode
from ..obs.events import NULL_OBSERVER, Observer
from ..obs.sketch import P2Quantile
from ..obs.trace import NULL_TRACER, activate, collecting_tracer
from ..perf.cache import ArtifactCache, cache_enabled, default_cache, hash_key
from ..perf.parallel import parallel_map, resolve_workers
from ..schedulers import (
    DVFSLoadMatchingScheduler,
    GreedyEDFScheduler,
    InterTaskScheduler,
    IntraTaskScheduler,
    RandomScheduler,
)
from ..sim.checkpoint import result_fingerprint
from ..sim.engine import simulate
from ..verify.strategies import build_graph
from .result import FleetAggregate, FleetResult, NodeSummary
from .spec import FleetSpec, NodeSpec, node_trace

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "FleetRunner",
    "run_fleet",
    "simulate_node",
]

#: Nodes per work item.  Small enough to load-balance a handful of
#: workers on mid-sized fleets, big enough that the per-item pickle and
#: base-trace rebuild cost stays negligible.
DEFAULT_SHARD_SIZE = 32

#: Artifact-cache namespace of shard checkpoints.
SHARD_KIND = "fleet-shard"


# ----------------------------------------------------------------------
# Per-node simulation (runs inside worker processes)
# ----------------------------------------------------------------------
def _make_scheduler(policy: str, scheduler_seed: int):
    if policy == "asap":
        return GreedyEDFScheduler()
    if policy == "inter-task":
        return InterTaskScheduler()
    if policy == "intra-task":
        return IntraTaskScheduler()
    if policy == "dvfs":
        return DVFSLoadMatchingScheduler()
    if policy == "random":
        return RandomScheduler(scheduler_seed)
    raise ValueError(f"unknown fleet policy {policy!r}")


def _proposed_policy(fleet: FleetSpec, graph_kind: str):
    """Train (or cache-load) the paper's pipeline for one workload.

    The training budget is the fleet's small ``proposed_*`` knobs; the
    artifact is shared through the ``policy`` disk cache, so a fleet
    with 50 ``proposed``/``wam`` nodes trains once, not 50 times.
    """
    from ..core.offline import OfflinePipeline
    from ..solar.days import synthetic_trace
    from ..timeline import Timeline

    graph = build_graph(graph_kind)
    train_tl = Timeline(
        num_days=fleet.proposed_train_days,
        periods_per_day=fleet.periods_per_day,
        slots_per_period=fleet.slots_per_period,
        slot_seconds=fleet.slot_seconds,
    )
    train_trace = synthetic_trace(train_tl, seed=fleet.seed)
    pipeline = OfflinePipeline(
        graph,
        pretrain_epochs=fleet.proposed_epochs,
        finetune_epochs=fleet.proposed_epochs,
        augment_per_period=1,
        seed=fleet.seed,
    )
    cache = default_cache() if cache_enabled() else None
    return pipeline.run(train_trace, cache=cache)


def simulate_node(fleet: FleetSpec, base_trace, spec: NodeSpec) -> NodeSummary:
    """Simulate one fleet node and reduce it to a :class:`NodeSummary`.

    Pure function of the fleet spec, the shared base trace and the
    node spec — no global state, safe in any worker process.
    """
    graph = build_graph(spec.graph_kind)
    trace = node_trace(base_trace, spec)
    if spec.policy == "proposed":
        policy = _proposed_policy(fleet, spec.graph_kind)
        node = policy.make_node()
        scheduler = policy.make_scheduler()
    else:
        node = SensorNode(
            [SuperCapacitor(capacitance=c) for c in spec.bank_farads],
            num_nvps=graph.num_nvps,
        )
        scheduler = _make_scheduler(spec.policy, spec.scheduler_seed)
    result = simulate(node, graph, trace, scheduler, strict=False)
    return NodeSummary(
        node_id=spec.node_id,
        graph_kind=spec.graph_kind,
        policy=spec.policy,
        num_tasks=len(graph),
        panel_scale=spec.panel_scale,
        bank_farads=tuple(spec.bank_farads),
        dmr=result.dmr,
        energy_utilization=result.energy_utilization,
        migration_efficiency=result.migration_efficiency,
        brownout_slots=result.total_brownout_slots,
        solar_energy=result.total_solar_energy,
        load_energy=result.total_load_energy,
        fingerprint=result_fingerprint(result),
    )


def _run_shard(item):
    """Worker entry point: simulate one shard of node ids.

    Module-level (picklable) on purpose; rebuilds the shared base trace
    once per shard rather than shipping the power array per item.

    The work item is ``(spec, node_ids, shard_index, ctx_wire)``:
    ``ctx_wire`` is the parent's serialized span context (or ``None``
    when untraced).  The worker opens a ``shard`` span keyed by the
    shard index and one ``node`` span per node id — explicit keys, so
    the span ids are identical whichever process runs the shard — and
    returns the collected span records with the summaries for the
    parent to re-emit.
    """
    fleet, node_ids, shard_index, ctx_wire = item
    start = time.perf_counter()
    tracer, records = collecting_tracer(ctx_wire)
    base = fleet.base_trace()
    summaries = []
    with activate(tracer):
        with tracer.span(
            "shard",
            key=shard_index,
            attrs={"shard_index": shard_index, "n_nodes": len(node_ids)},
        ):
            for node_id in node_ids:
                spec = fleet.node_spec(node_id)
                with tracer.span(
                    "node",
                    key=node_id,
                    attrs={"node_id": node_id, "policy": spec.policy},
                ) as span:
                    summary = simulate_node(fleet, base, spec)
                    span.annotate(dmr=summary.dmr)
                summaries.append(summary)
    return summaries, time.perf_counter() - start, records


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class FleetRunner:
    """Shard a fleet across the process pool and aggregate the results.

    Parameters
    ----------
    spec:
        The fleet to run.
    workers:
        Process count (``None`` → ``$REPRO_WORKERS`` → serial).  Never
        affects results, only wall-clock.
    shard_size:
        Nodes per work item (default :data:`DEFAULT_SHARD_SIZE`).
        Never affects results.
    cache:
        Shard-checkpoint store.  ``None`` uses the default artifact
        cache when caching is enabled (``REPRO_NO_CACHE`` unset);
        ``False`` disables shard checkpointing outright.
    observer:
        Receives one ``fleet_shard`` event per shard plus the run
        trailer via :meth:`Observer.finish`.
    """

    def __init__(
        self,
        spec: FleetSpec,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        cache=None,
        observer: Optional[Observer] = None,
    ) -> None:
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.spec = spec
        self.workers = resolve_workers(workers)
        self.shard_size = int(shard_size or DEFAULT_SHARD_SIZE)
        if cache is False:
            self.cache: Optional[ArtifactCache] = None
        elif cache is None:
            self.cache = default_cache() if cache_enabled() else None
        else:
            self.cache = cache
        self.observer = observer if observer is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    def shards(self) -> List[Tuple[int, ...]]:
        """Node ids partitioned into contiguous shards."""
        ids = range(self.spec.n_nodes)
        return [
            tuple(ids[lo : lo + self.shard_size])
            for lo in range(0, self.spec.n_nodes, self.shard_size)
        ]

    def _shard_digest(self, node_ids: Sequence[int]) -> str:
        return hash_key(
            {
                "artifact": SHARD_KIND,
                "fleet": self.spec.describe(),
                "shard": list(node_ids),
            }
        )

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Simulate every node; returns the aggregate.

        Checkpointed shards are loaded instead of recomputed; pending
        shards fan out over the process pool, are checkpointed as they
        land, and emit their ``fleet_shard`` event *at completion* (in
        completion order — this is the live-progress pulse).
        Summaries always combine in node-id order, so the aggregate
        fingerprint is independent of all of this.

        When the observer is enabled the run is traced: a ``fleet_run``
        root span whose context rides inside each worker payload, so
        shard/node spans from every process reassemble under one root.
        """
        shards = self.shards()
        start = time.perf_counter()
        obs = self.observer
        tracer = getattr(obs, "tracer", None)
        if tracer is None:
            tracer = (
                obs.start_trace("fleet", self.spec.seed, self.spec.n_nodes)
                if obs.enabled
                else NULL_TRACER
            )
        ready: dict = {}
        pending: List[int] = []
        shard_aggs: dict = {}
        dmr_stream = P2Quantile(0.5)

        with tracer.span(
            "fleet_run",
            attrs={
                "n_nodes": self.spec.n_nodes,
                "num_shards": len(shards),
                "workers": self.workers,
            },
        ):
            for index, node_ids in enumerate(shards):
                cached = (
                    self.cache.get(SHARD_KIND, self._shard_digest(node_ids))
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    ready[index] = cached
                    with tracer.span(
                        "shard",
                        key=index,
                        attrs={
                            "shard_index": index,
                            "n_nodes": len(node_ids),
                            "cached": True,
                        },
                    ):
                        pass
                    for summary in cached:
                        dmr_stream.add(summary.dmr)
                    obs.fleet_shard(
                        index, len(shards), node_ids, cached=True,
                        seconds=0.0,
                        p50_dmr_est=dmr_stream.estimate(-1.0),
                    )
                else:
                    pending.append(index)

            wire = (
                tracer.context().to_wire() if tracer.enabled else None
            )

            def _landed(position: int, out) -> None:
                summaries, seconds, records = out
                index = pending[position]
                ready[index] = summaries
                for record in records:
                    obs.emit_record(record)
                if self.cache is not None:
                    self.cache.put(
                        SHARD_KIND,
                        self._shard_digest(shards[index]),
                        summaries,
                    )
                for summary in summaries:
                    dmr_stream.add(summary.dmr)
                obs.fleet_shard(
                    index, len(shards), shards[index], cached=False,
                    seconds=seconds,
                    p50_dmr_est=dmr_stream.estimate(-1.0),
                )

            parallel_map(
                _run_shard,
                [(self.spec, shards[i], i, wire) for i in pending],
                n_workers=self.workers,
                observer=obs,
                on_result=_landed,
            )

        for index in sorted(ready):
            shard_aggs[index] = FleetAggregate.from_nodes(ready[index])
        aggregate: Optional[FleetAggregate] = None
        for index in sorted(shard_aggs):
            aggregate = (
                shard_aggs[index]
                if aggregate is None
                else aggregate.merge(shard_aggs[index])
            )

        nodes = [s for index in sorted(ready) for s in ready[index]]
        wall = time.perf_counter() - start
        result = FleetResult(
            nodes,
            config={
                **self.spec.describe(),
                "workers": self.workers,
                "shard_size": self.shard_size,
                "shards": len(shards),
                "wall_time_s": wall,
                "nodes_per_s": len(nodes) / wall if wall > 0 else 0.0,
            },
            aggregate=aggregate,
        )
        self.observer.finish(
            result_summary=result.summary(), scheduler="fleet"
        )
        return result


def run_fleet(
    spec: FleetSpec,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    cache=None,
    observer: Optional[Observer] = None,
) -> FleetResult:
    """One-call convenience wrapper around :class:`FleetRunner`."""
    return FleetRunner(
        spec,
        workers=workers,
        shard_size=shard_size,
        cache=cache,
        observer=observer,
    ).run()
