"""Fleet aggregates: per-node summaries and the population view.

The fleet runner streams one :class:`NodeSummary` per simulated node —
the headline numbers of a :class:`~repro.sim.recorder.SimulationResult`
plus the node's configuration and its full result fingerprint — into a
:class:`FleetResult`.  The aggregate answers the population questions
the single-node experiments cannot: DMR distribution percentiles,
brownout counts, energy-utilization histograms and per-policy
comparisons across heterogeneous hardware and workloads.

``FleetResult.fingerprint()`` digests every node summary in node-id
order, so it is bit-identical for any worker count or shard size and
serves as the determinism contract of a fleet run.

:class:`FleetAggregate` is the memory-bounded companion (the on-ramp
to ROADMAP item 3): per-shard mergeable sketches — DMR and
utilization histograms, counters, per-policy partial sums — that fold
associatively in any grouping, plus per-shard *sub-fingerprints*
whose order-independent combination gives the aggregate its own
determinism witness without holding the node list.  ``FleetResult``
delegates its percentile/histogram fields to the aggregate, so the
population numbers a 100-node run reports are computed exactly the
way a 1M-node streaming run would compute them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.sketch import CounterBag, FixedHistogram

__all__ = ["NodeSummary", "FailedNode", "FleetResult", "FleetAggregate"]

#: Bump when the summary layout changes; saved results are rejected.
FLEET_RESULT_SCHEMA = 1

__all__.append("FLEET_RESULT_SCHEMA")

#: Sketch resolutions: DMR quantiles are read off a 256-bin histogram
#: (error ≤ 1/256), utilization histograms from a 100-bin one so every
#: divisor view (2/4/5/10/20/25/50 bins) downsamples exactly.
DMR_SKETCH_BINS = 256
UTIL_SKETCH_BINS = 100


@dataclasses.dataclass(frozen=True)
class NodeSummary:
    """Headline outcome of one fleet node (picklable, JSON-able)."""

    node_id: int
    graph_kind: str
    policy: str
    num_tasks: int
    panel_scale: float
    bank_farads: Tuple[float, ...]
    dmr: float
    energy_utilization: float
    migration_efficiency: float
    brownout_slots: int
    solar_energy: float
    load_energy: float
    fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        rec = dataclasses.asdict(self)
        rec["bank_farads"] = list(self.bank_farads)
        return rec

    @classmethod
    def from_dict(cls, rec: Dict[str, object]) -> "NodeSummary":
        rec = dict(rec)
        rec["bank_farads"] = tuple(rec["bank_farads"])
        return cls(**rec)


@dataclasses.dataclass(frozen=True)
class FailedNode:
    """A node quarantined by the supervised fleet runner.

    Structured postmortem of one node whose simulation raised on every
    allowed attempt: enough to reproduce it in isolation
    (``spec_digest`` pins the exact :class:`~repro.fleet.spec.NodeSpec`)
    without holding the exception object.  Picklable and JSON-able, so
    failed nodes survive shard checkpoints and saved fleet results.
    """

    node_id: int
    policy: str
    graph_kind: str
    error_type: str
    message: str
    spec_digest: str
    retries: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, rec: Dict[str, object]) -> "FailedNode":
        return cls(**rec)


def _node_digest(node: "NodeSummary") -> int:
    """256-bit content digest of one node summary (fold-able)."""
    h = hashlib.sha256(
        repr(
            (
                node.node_id,
                node.graph_kind,
                node.policy,
                node.num_tasks,
                node.panel_scale,
                tuple(node.bank_farads),
                node.dmr,
                node.energy_utilization,
                node.migration_efficiency,
                node.brownout_slots,
                node.solar_energy,
                node.load_energy,
                node.fingerprint,
            )
        ).encode()
    )
    return int(h.hexdigest(), 16)


class FleetAggregate:
    """Mergeable, memory-bounded population statistics for one fleet.

    Built per shard (:meth:`from_nodes`) and folded with
    :meth:`merge`, which is associative and commutative: any grouping
    of the same shards yields the same aggregate — including
    :meth:`fingerprint`, which combines per-node digests with an
    order-independent XOR fold recorded per shard in
    ``sub_fingerprints``.  The node-sorted
    :meth:`FleetResult.fingerprint` stays the primary determinism
    contract; this one is the streaming-scale witness that never
    needs the node list in memory.
    """

    def __init__(
        self,
        dmr: Optional[FixedHistogram] = None,
        util: Optional[FixedHistogram] = None,
        counters: Optional[CounterBag] = None,
        policies: Optional[Dict[str, Dict[str, float]]] = None,
        sub_fingerprints: Optional[
            Sequence[Dict[str, object]]
        ] = None,
    ) -> None:
        self.dmr = dmr or FixedHistogram.linear(0.0, 1.0, DMR_SKETCH_BINS)
        self.util = util or FixedHistogram.linear(
            0.0, 1.0, UTIL_SKETCH_BINS
        )
        self.counters = counters or CounterBag()
        self.policies: Dict[str, Dict[str, float]] = {
            k: dict(v) for k, v in (policies or {}).items()
        }
        self.sub_fingerprints: List[Dict[str, object]] = [
            dict(s) for s in (sub_fingerprints or [])
        ]

    # ------------------------------------------------------------------
    @classmethod
    def from_nodes(
        cls,
        nodes: Iterable["NodeSummary"],
        failed: Iterable["FailedNode"] = (),
    ) -> "FleetAggregate":
        """Absorb one shard's summaries (and casualties) into a fresh
        aggregate.  Failed nodes only bump the ``nodes_failed``
        counter: they contribute nothing to the healthy-subset
        sketches or sub-fingerprints."""
        agg = cls()
        for _ in failed:
            agg.counters.inc("nodes_failed")
        fold = 0
        ids: List[int] = []
        for node in sorted(nodes, key=lambda n: n.node_id):
            ids.append(node.node_id)
            fold ^= _node_digest(node)
            agg.dmr.add(node.dmr)
            agg.util.add(min(max(node.energy_utilization, 0.0), 1.0))
            agg.counters.inc("nodes")
            agg.counters.inc("brownout_slots", node.brownout_slots)
            if node.brownout_slots > 0:
                agg.counters.inc("nodes_with_brownouts")
            stats = agg.policies.setdefault(
                node.policy,
                {
                    "nodes": 0.0,
                    "dmr_sum": 0.0,
                    "util_sum": 0.0,
                    "brownout_slots": 0.0,
                },
            )
            stats["nodes"] += 1
            stats["dmr_sum"] += node.dmr
            stats["util_sum"] += node.energy_utilization
            stats["brownout_slots"] += node.brownout_slots
        if ids:
            if len(set(ids)) != len(ids):
                raise ValueError("duplicate node ids in shard")
            agg.sub_fingerprints = [
                {
                    "lo": min(ids),
                    "hi": max(ids),
                    "n": len(ids),
                    "digest": f"{fold:064x}",
                }
            ]
        return agg

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.dmr.count

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        """Associative, commutative fold of two disjoint aggregates.

        Shards must cover disjoint node-id *ranges* (fleet shards are
        contiguous), which is how duplicate ingestion is caught
        without remembering individual ids.
        """
        for a in self.sub_fingerprints:
            for b in other.sub_fingerprints:
                if a["lo"] <= b["hi"] and b["lo"] <= a["hi"]:
                    raise ValueError(
                        "cannot merge aggregates with overlapping "
                        f"node-id ranges [{a['lo']}, {a['hi']}] and "
                        f"[{b['lo']}, {b['hi']}]"
                    )
        policies = {k: dict(v) for k, v in self.policies.items()}
        for name, theirs in other.policies.items():
            mine = policies.setdefault(
                name,
                {
                    "nodes": 0.0,
                    "dmr_sum": 0.0,
                    "util_sum": 0.0,
                    "brownout_slots": 0.0,
                },
            )
            for field, value in theirs.items():
                mine[field] = mine.get(field, 0.0) + value
        subs = sorted(
            self.sub_fingerprints + other.sub_fingerprints,
            key=lambda s: (s["lo"], s["hi"]),
        )
        return FleetAggregate(
            dmr=self.dmr.merge(other.dmr),
            util=self.util.merge(other.util),
            counters=self.counters.merge(other.counters),
            policies=policies,
            sub_fingerprints=subs,
        )

    def fingerprint(self) -> str:
        """Order-independent digest over the per-shard sub-digests."""
        fold = 0
        for sub in self.sub_fingerprints:
            fold ^= int(str(sub["digest"]), 16)
        return hashlib.sha256(
            repr(("fleet-aggregate", self.n_nodes, f"{fold:064x}")).encode()
        ).hexdigest()

    # ------------------------------------------------------------------
    @property
    def mean_dmr(self) -> float:
        return self.dmr.mean

    def dmr_percentiles(
        self, percentiles: Sequence[float] = (5, 25, 50, 75, 95, 99)
    ) -> Dict[str, float]:
        return self.dmr.percentiles(percentiles)

    def utilization_histogram(
        self, bins: int = 10
    ) -> Tuple[List[int], List[float]]:
        return self.util.downsample(bins)

    @property
    def nodes_failed(self) -> int:
        return int(self.counters["nodes_failed"])

    @property
    def degraded(self) -> bool:
        """True when any ingested shard quarantined a node."""
        return self.nodes_failed > 0

    @property
    def total_brownout_slots(self) -> int:
        return int(self.counters["brownout_slots"])

    @property
    def brownout_node_fraction(self) -> float:
        n = self.n_nodes
        return self.counters["nodes_with_brownouts"] / n if n else 0.0

    def by_policy(self) -> Dict[str, Dict[str, float]]:
        """Per-policy partial-sum aggregates (means, not percentiles)."""
        out: Dict[str, Dict[str, float]] = {}
        for policy, stats in sorted(self.policies.items()):
            n = max(stats["nodes"], 1.0)
            out[policy] = {
                "nodes": stats["nodes"],
                "mean_dmr": stats["dmr_sum"] / n,
                "mean_utilization": stats["util_sum"] / n,
                "brownout_slots": stats["brownout_slots"],
            }
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": FLEET_RESULT_SCHEMA,
            "n_nodes": self.n_nodes,
            "fingerprint": self.fingerprint(),
            "dmr": self.dmr.to_dict(),
            "util": self.util.to_dict(),
            "counters": self.counters.to_dict(),
            "policies": {k: dict(v) for k, v in self.policies.items()},
            "sub_fingerprints": [dict(s) for s in self.sub_fingerprints],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetAggregate":
        return cls(
            dmr=FixedHistogram.from_dict(data["dmr"]),
            util=FixedHistogram.from_dict(data["util"]),
            counters=CounterBag.from_dict(data["counters"]),
            policies=data.get("policies") or {},
            sub_fingerprints=data.get("sub_fingerprints") or [],
        )


class FleetResult:
    """All node summaries of one fleet run plus derived aggregates."""

    def __init__(
        self,
        nodes: Sequence[NodeSummary],
        config: Optional[Dict[str, object]] = None,
        aggregate: Optional[FleetAggregate] = None,
        failed_nodes: Sequence[FailedNode] = (),
    ) -> None:
        nodes = sorted(nodes, key=lambda n: n.node_id)
        failed = sorted(failed_nodes, key=lambda f: f.node_id)
        ids = [n.node_id for n in nodes] + [f.node_id for f in failed]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in fleet result")
        if not nodes:
            raise ValueError(
                "fleet result needs at least one healthy node"
            )
        self.nodes: List[NodeSummary] = list(nodes)
        self.failed_nodes: List[FailedNode] = list(failed)
        self.config: Dict[str, object] = dict(config or {})
        if aggregate is not None and aggregate.n_nodes != len(nodes):
            raise ValueError(
                f"aggregate covers {aggregate.n_nodes} node(s), result "
                f"has {len(nodes)}"
            )
        self._aggregate = aggregate

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def degraded(self) -> bool:
        """True when any node was quarantined: the population numbers
        and :meth:`fingerprint` then describe the healthy subset."""
        return bool(self.failed_nodes)

    @property
    def aggregate(self) -> FleetAggregate:
        """The mergeable sketch view (built on demand if not supplied)."""
        if self._aggregate is None:
            self._aggregate = FleetAggregate.from_nodes(self.nodes)
        return self._aggregate

    # ------------------------------------------------------------------
    # Distribution metrics
    # ------------------------------------------------------------------
    def dmr_values(self) -> np.ndarray:
        return np.array([n.dmr for n in self.nodes])

    @property
    def mean_dmr(self) -> float:
        return float(self.dmr_values().mean())

    def dmr_percentiles(
        self, percentiles: Sequence[float] = (5, 25, 50, 75, 95, 99)
    ) -> Dict[str, float]:
        """Population DMR quantiles, read off the mergeable sketch.

        Same numbers a streaming fleet would report: within one sketch
        bin (1/:data:`DMR_SKETCH_BINS`) of the nearest-rank sample.
        """
        return self.aggregate.dmr_percentiles(percentiles)

    @property
    def total_brownout_slots(self) -> int:
        return int(sum(n.brownout_slots for n in self.nodes))

    @property
    def brownout_node_fraction(self) -> float:
        """Fraction of nodes that browned out at least once."""
        return float(
            np.mean([n.brownout_slots > 0 for n in self.nodes])
        )

    def utilization_histogram(
        self, bins: int = 10
    ) -> Tuple[List[int], List[float]]:
        """Energy-utilization counts over ``bins`` equal bins on [0, 1].

        Served by downsampling the aggregate's fixed 100-bin sketch
        (bit-identical to ``np.histogram`` for any divisor of 100);
        other bin counts fall back to the exact per-node computation.
        """
        try:
            return self.aggregate.utilization_histogram(bins)
        except ValueError:
            values = np.clip(
                [n.energy_utilization for n in self.nodes], 0.0, 1.0
            )
            counts, edges = np.histogram(
                values, bins=bins, range=(0.0, 1.0)
            )
            return counts.astype(int).tolist(), edges.tolist()

    # ------------------------------------------------------------------
    # Cohort views
    # ------------------------------------------------------------------
    def _cohorts(self, key) -> Dict[str, List[NodeSummary]]:
        groups: Dict[str, List[NodeSummary]] = {}
        for node in self.nodes:
            groups.setdefault(key(node), []).append(node)
        return groups

    def by_policy(self) -> Dict[str, Dict[str, float]]:
        """Per-policy cohort aggregates (the fleet-level comparison)."""
        out: Dict[str, Dict[str, float]] = {}
        for policy, members in sorted(
            self._cohorts(lambda n: n.policy).items()
        ):
            dmrs = np.array([n.dmr for n in members])
            out[policy] = {
                "nodes": float(len(members)),
                "mean_dmr": float(dmrs.mean()),
                "p50_dmr": float(np.percentile(dmrs, 50)),
                "p95_dmr": float(np.percentile(dmrs, 95)),
                "mean_utilization": float(
                    np.mean([n.energy_utilization for n in members])
                ),
                "brownout_slots": float(
                    sum(n.brownout_slots for n in members)
                ),
            }
        return out

    def by_graph(self) -> Dict[str, Dict[str, float]]:
        """Per-workload cohort aggregates (random graphs pooled)."""
        def kind(node: NodeSummary) -> str:
            return node.graph_kind.split(":", 1)[0]

        out: Dict[str, Dict[str, float]] = {}
        for graph, members in sorted(self._cohorts(kind).items()):
            out[graph] = {
                "nodes": float(len(members)),
                "mean_dmr": float(np.mean([n.dmr for n in members])),
                "mean_utilization": float(
                    np.mean([n.energy_utilization for n in members])
                ),
            }
        return out

    # ------------------------------------------------------------------
    # Determinism contract
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Digest of every node summary in node-id order.

        Bit-identical across worker counts and shard sizes: the only
        inputs are the per-node summaries, which are pure functions of
        ``(fleet seed, node id)`` and the fleet configuration.
        """
        h = hashlib.sha256()
        h.update(repr(len(self.nodes)).encode())
        for n in self.nodes:
            h.update(
                repr(
                    (
                        n.node_id,
                        n.graph_kind,
                        n.policy,
                        n.num_tasks,
                        n.panel_scale,
                        tuple(n.bank_farads),
                        n.dmr,
                        n.energy_utilization,
                        n.migration_efficiency,
                        n.brownout_slots,
                        n.solar_energy,
                        n.load_energy,
                        n.fingerprint,
                    )
                ).encode()
            )
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Reporting / persistence
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Headline aggregates as a plain dict (manifest-friendly)."""
        return {
            "nodes": len(self.nodes),
            "failed_nodes": len(self.failed_nodes),
            "degraded": self.degraded,
            "mean_dmr": self.mean_dmr,
            "dmr_percentiles": self.dmr_percentiles(),
            "brownout_slots": self.total_brownout_slots,
            "brownout_node_fraction": self.brownout_node_fraction,
            "mean_utilization": float(
                np.mean([n.energy_utilization for n in self.nodes])
            ),
            "fingerprint": self.fingerprint(),
            "aggregate_fingerprint": self.aggregate.fingerprint(),
        }

    def render(self) -> str:
        """Human-readable fleet report (the ``fleet report`` output)."""
        lines = [f"fleet of {len(self.nodes)} node(s)"]
        if self.degraded:
            ids = ",".join(str(f.node_id) for f in self.failed_nodes)
            lines[0] += (
                f" — DEGRADED: {len(self.failed_nodes)} quarantined "
                f"({ids})"
            )
        pct = self.dmr_percentiles()
        lines.append(
            "DMR:          mean {:.4f}   ".format(self.mean_dmr)
            + "  ".join(f"{k} {v:.3f}" for k, v in pct.items())
        )
        lines.append(
            f"brownouts:    {self.total_brownout_slots} slot(s) across "
            f"{self.brownout_node_fraction * 100:.1f}% of nodes"
        )
        counts, edges = self.utilization_histogram()
        total = max(sum(counts), 1)
        bar_cells = []
        for count, lo in zip(counts, edges[:-1]):
            bar_cells.append(
                f"{lo:.1f}:{'#' * max(1, round(10 * count / total)) if count else '.'}"
            )
        lines.append("utilization:  " + " ".join(bar_cells))
        lines.append("")
        lines.append(
            f"{'policy':12s} {'nodes':>5s} {'mean DMR':>9s} {'p50':>7s} "
            f"{'p95':>7s} {'util':>6s} {'brownouts':>9s}"
        )
        for policy, stats in self.by_policy().items():
            lines.append(
                f"{policy:12s} {int(stats['nodes']):5d} "
                f"{stats['mean_dmr']:9.4f} {stats['p50_dmr']:7.3f} "
                f"{stats['p95_dmr']:7.3f} {stats['mean_utilization']:6.3f} "
                f"{int(stats['brownout_slots']):9d}"
            )
        lines.append("")
        lines.append(
            f"{'workload':12s} {'nodes':>5s} {'mean DMR':>9s} {'util':>6s}"
        )
        for graph, stats in self.by_graph().items():
            lines.append(
                f"{graph:12s} {int(stats['nodes']):5d} "
                f"{stats['mean_dmr']:9.4f} {stats['mean_utilization']:6.3f}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": FLEET_RESULT_SCHEMA,
            "config": self.config,
            "fingerprint": self.fingerprint(),
            "summary": self.summary(),
            "aggregate": self.aggregate.to_dict(),
            "nodes": [n.to_dict() for n in self.nodes],
            "failed_nodes": [f.to_dict() for f in self.failed_nodes],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "FleetResult":
        path = Path(path)
        if not path.is_file():
            raise ValueError(f"no fleet result file at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path} is not a fleet result file ({exc})"
            ) from None
        if not isinstance(data, dict) or "nodes" not in data:
            raise ValueError(f"{path} is not a fleet result file")
        if data.get("schema") != FLEET_RESULT_SCHEMA:
            raise ValueError(
                f"{path} has fleet-result schema {data.get('schema')}; "
                f"this build reads {FLEET_RESULT_SCHEMA}"
            )
        return cls(
            [NodeSummary.from_dict(rec) for rec in data["nodes"]],
            config=data.get("config"),
            failed_nodes=[
                FailedNode.from_dict(rec)
                for rec in data.get("failed_nodes") or []
            ],
        )
