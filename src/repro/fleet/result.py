"""Fleet aggregates: per-node summaries and the population view.

The fleet runner streams one :class:`NodeSummary` per simulated node —
the headline numbers of a :class:`~repro.sim.recorder.SimulationResult`
plus the node's configuration and its full result fingerprint — into a
:class:`FleetResult`.  The aggregate answers the population questions
the single-node experiments cannot: DMR distribution percentiles,
brownout counts, energy-utilization histograms and per-policy
comparisons across heterogeneous hardware and workloads.

``FleetResult.fingerprint()`` digests every node summary in node-id
order, so it is bit-identical for any worker count or shard size and
serves as the determinism contract of a fleet run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["NodeSummary", "FleetResult"]

#: Bump when the summary layout changes; saved results are rejected.
FLEET_RESULT_SCHEMA = 1

__all__.append("FLEET_RESULT_SCHEMA")


@dataclasses.dataclass(frozen=True)
class NodeSummary:
    """Headline outcome of one fleet node (picklable, JSON-able)."""

    node_id: int
    graph_kind: str
    policy: str
    num_tasks: int
    panel_scale: float
    bank_farads: Tuple[float, ...]
    dmr: float
    energy_utilization: float
    migration_efficiency: float
    brownout_slots: int
    solar_energy: float
    load_energy: float
    fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        rec = dataclasses.asdict(self)
        rec["bank_farads"] = list(self.bank_farads)
        return rec

    @classmethod
    def from_dict(cls, rec: Dict[str, object]) -> "NodeSummary":
        rec = dict(rec)
        rec["bank_farads"] = tuple(rec["bank_farads"])
        return cls(**rec)


class FleetResult:
    """All node summaries of one fleet run plus derived aggregates."""

    def __init__(
        self,
        nodes: Sequence[NodeSummary],
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        nodes = sorted(nodes, key=lambda n: n.node_id)
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in fleet result")
        if not nodes:
            raise ValueError("fleet result needs at least one node")
        self.nodes: List[NodeSummary] = list(nodes)
        self.config: Dict[str, object] = dict(config or {})

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Distribution metrics
    # ------------------------------------------------------------------
    def dmr_values(self) -> np.ndarray:
        return np.array([n.dmr for n in self.nodes])

    @property
    def mean_dmr(self) -> float:
        return float(self.dmr_values().mean())

    def dmr_percentiles(
        self, percentiles: Sequence[float] = (5, 25, 50, 75, 95, 99)
    ) -> Dict[str, float]:
        values = self.dmr_values()
        return {
            f"p{p:g}": float(np.percentile(values, p)) for p in percentiles
        }

    @property
    def total_brownout_slots(self) -> int:
        return int(sum(n.brownout_slots for n in self.nodes))

    @property
    def brownout_node_fraction(self) -> float:
        """Fraction of nodes that browned out at least once."""
        return float(
            np.mean([n.brownout_slots > 0 for n in self.nodes])
        )

    def utilization_histogram(
        self, bins: int = 10
    ) -> Tuple[List[int], List[float]]:
        """Energy-utilization counts over ``bins`` equal bins on [0, 1]."""
        values = np.clip(
            [n.energy_utilization for n in self.nodes], 0.0, 1.0
        )
        counts, edges = np.histogram(values, bins=bins, range=(0.0, 1.0))
        return counts.astype(int).tolist(), edges.tolist()

    # ------------------------------------------------------------------
    # Cohort views
    # ------------------------------------------------------------------
    def _cohorts(self, key) -> Dict[str, List[NodeSummary]]:
        groups: Dict[str, List[NodeSummary]] = {}
        for node in self.nodes:
            groups.setdefault(key(node), []).append(node)
        return groups

    def by_policy(self) -> Dict[str, Dict[str, float]]:
        """Per-policy cohort aggregates (the fleet-level comparison)."""
        out: Dict[str, Dict[str, float]] = {}
        for policy, members in sorted(
            self._cohorts(lambda n: n.policy).items()
        ):
            dmrs = np.array([n.dmr for n in members])
            out[policy] = {
                "nodes": float(len(members)),
                "mean_dmr": float(dmrs.mean()),
                "p50_dmr": float(np.percentile(dmrs, 50)),
                "p95_dmr": float(np.percentile(dmrs, 95)),
                "mean_utilization": float(
                    np.mean([n.energy_utilization for n in members])
                ),
                "brownout_slots": float(
                    sum(n.brownout_slots for n in members)
                ),
            }
        return out

    def by_graph(self) -> Dict[str, Dict[str, float]]:
        """Per-workload cohort aggregates (random graphs pooled)."""
        def kind(node: NodeSummary) -> str:
            return node.graph_kind.split(":", 1)[0]

        out: Dict[str, Dict[str, float]] = {}
        for graph, members in sorted(self._cohorts(kind).items()):
            out[graph] = {
                "nodes": float(len(members)),
                "mean_dmr": float(np.mean([n.dmr for n in members])),
                "mean_utilization": float(
                    np.mean([n.energy_utilization for n in members])
                ),
            }
        return out

    # ------------------------------------------------------------------
    # Determinism contract
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Digest of every node summary in node-id order.

        Bit-identical across worker counts and shard sizes: the only
        inputs are the per-node summaries, which are pure functions of
        ``(fleet seed, node id)`` and the fleet configuration.
        """
        h = hashlib.sha256()
        h.update(repr(len(self.nodes)).encode())
        for n in self.nodes:
            h.update(
                repr(
                    (
                        n.node_id,
                        n.graph_kind,
                        n.policy,
                        n.num_tasks,
                        n.panel_scale,
                        tuple(n.bank_farads),
                        n.dmr,
                        n.energy_utilization,
                        n.migration_efficiency,
                        n.brownout_slots,
                        n.solar_energy,
                        n.load_energy,
                        n.fingerprint,
                    )
                ).encode()
            )
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Reporting / persistence
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Headline aggregates as a plain dict (manifest-friendly)."""
        return {
            "nodes": len(self.nodes),
            "mean_dmr": self.mean_dmr,
            "dmr_percentiles": self.dmr_percentiles(),
            "brownout_slots": self.total_brownout_slots,
            "brownout_node_fraction": self.brownout_node_fraction,
            "mean_utilization": float(
                np.mean([n.energy_utilization for n in self.nodes])
            ),
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """Human-readable fleet report (the ``fleet report`` output)."""
        lines = [f"fleet of {len(self.nodes)} node(s)"]
        pct = self.dmr_percentiles()
        lines.append(
            "DMR:          mean {:.4f}   ".format(self.mean_dmr)
            + "  ".join(f"{k} {v:.3f}" for k, v in pct.items())
        )
        lines.append(
            f"brownouts:    {self.total_brownout_slots} slot(s) across "
            f"{self.brownout_node_fraction * 100:.1f}% of nodes"
        )
        counts, edges = self.utilization_histogram()
        total = max(sum(counts), 1)
        bar_cells = []
        for count, lo in zip(counts, edges[:-1]):
            bar_cells.append(
                f"{lo:.1f}:{'#' * max(1, round(10 * count / total)) if count else '.'}"
            )
        lines.append("utilization:  " + " ".join(bar_cells))
        lines.append("")
        lines.append(
            f"{'policy':12s} {'nodes':>5s} {'mean DMR':>9s} {'p50':>7s} "
            f"{'p95':>7s} {'util':>6s} {'brownouts':>9s}"
        )
        for policy, stats in self.by_policy().items():
            lines.append(
                f"{policy:12s} {int(stats['nodes']):5d} "
                f"{stats['mean_dmr']:9.4f} {stats['p50_dmr']:7.3f} "
                f"{stats['p95_dmr']:7.3f} {stats['mean_utilization']:6.3f} "
                f"{int(stats['brownout_slots']):9d}"
            )
        lines.append("")
        lines.append(
            f"{'workload':12s} {'nodes':>5s} {'mean DMR':>9s} {'util':>6s}"
        )
        for graph, stats in self.by_graph().items():
            lines.append(
                f"{graph:12s} {int(stats['nodes']):5d} "
                f"{stats['mean_dmr']:9.4f} {stats['mean_utilization']:6.3f}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": FLEET_RESULT_SCHEMA,
            "config": self.config,
            "fingerprint": self.fingerprint(),
            "summary": self.summary(),
            "nodes": [n.to_dict() for n in self.nodes],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "FleetResult":
        path = Path(path)
        if not path.is_file():
            raise ValueError(f"no fleet result file at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path} is not a fleet result file ({exc})"
            ) from None
        if not isinstance(data, dict) or "nodes" not in data:
            raise ValueError(f"{path} is not a fleet result file")
        if data.get("schema") != FLEET_RESULT_SCHEMA:
            raise ValueError(
                f"{path} has fleet-result schema {data.get('schema')}; "
                f"this build reads {FLEET_RESULT_SCHEMA}"
            )
        return cls(
            [NodeSummary.from_dict(rec) for rec in data["nodes"]],
            config=data.get("config"),
        )
