"""Fleet specification: N heterogeneous nodes over one base solar trace.

A :class:`FleetSpec` pins everything about a multi-node simulation —
node count, fleet seed, timeline shape, the shared weather, and the
per-node variation ranges (workload mix, scheduler/policy assignment,
capacitor-bank heterogeneity, panel scale and cloud jitter).  Each
node's concrete configuration is a :class:`NodeSpec` derived *only*
from ``(fleet seed, node index)`` through the shared generators in
:mod:`repro.verify.strategies`, so the same spec always expands to the
same fleet regardless of how the nodes are later sharded across
workers.

All nodes share one base solar trace (the deployment-site weather);
per-node traces apply a panel scale (different panel areas and tilts)
and multiplicative cloud jitter (micro-climate) on top of it, which is
orders of magnitude cheaper than synthesising per-node weather from
scratch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..solar.days import synthetic_trace
from ..solar.trace import SolarTrace
from ..timeline import Timeline
from ..verify.strategies import (
    FLEET_BANK_CHOICES,
    FLEET_TASK_MIX,
    fleet_variation,
)

__all__ = [
    "FLEET_POLICIES",
    "FleetSpec",
    "NodeSpec",
    "node_trace",
]

#: Scheduler/policy names a fleet node may be assigned.  ``proposed``
#: trains the paper's DBN pipeline per distinct workload (shared
#: through the offline-artifact disk cache); the rest are the cheap
#: baseline schedulers.
FLEET_POLICIES: Tuple[str, ...] = (
    "asap",
    "inter-task",
    "intra-task",
    "dvfs",
    "random",
    "proposed",
)


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """Concrete configuration of one fleet node (picklable, tiny).

    ``graph_kind`` is a workload name resolvable by
    :func:`repro.verify.strategies.build_graph`; storing the name
    instead of the graph keeps shard work items small and lets worker
    processes rebuild the graph deterministically.
    """

    node_id: int
    graph_kind: str
    policy: str
    bank_farads: Tuple[float, ...]
    panel_scale: float
    jitter_sigma: float
    jitter_seed: int
    scheduler_seed: int


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """Deterministic description of a whole fleet run.

    Parameters
    ----------
    n_nodes:
        Fleet size.
    seed:
        Fleet seed: drives the shared base weather and every per-node
        variation draw.
    days, periods_per_day, slots_per_period, slot_seconds:
        Timeline of every node.  The default (24 ten-minute-spread
        periods of 20 x 30 s slots per day) is deliberately lighter
        than the single-node experiments' 144 periods: fleets trade
        per-node resolution for population size.
    policies:
        Scheduler/policy pool nodes are assigned from (see
        :data:`FLEET_POLICIES`).
    task_mix:
        Workload pool (:data:`~repro.verify.strategies.FLEET_TASK_MIX`
        names; ``random`` draws a seeded random benchmark per node).
    bank_choices, bank_size:
        Capacitance candidates and ``(min, max)`` bank cardinality of
        the heterogeneous capacitor banks.
    panel_scale:
        ``(low, high)`` uniform range of the per-node panel scale.
    cloud_jitter:
        ``(low, high)`` uniform range of the per-node multiplicative
        cloud-jitter sigma.
    proposed_train_days, proposed_epochs:
        Offline-stage budget used when ``proposed`` is in the policy
        pool (kept small; artifacts are shared through the disk cache).
    """

    n_nodes: int
    seed: int = 0
    days: int = 1
    periods_per_day: int = 24
    slots_per_period: int = 20
    slot_seconds: float = 30.0
    policies: Tuple[str, ...] = ("asap", "inter-task", "intra-task", "random")
    task_mix: Tuple[str, ...] = FLEET_TASK_MIX
    bank_choices: Tuple[float, ...] = FLEET_BANK_CHOICES
    bank_size: Tuple[int, int] = (2, 4)
    panel_scale: Tuple[float, float] = (0.6, 1.4)
    cloud_jitter: Tuple[float, float] = (0.0, 0.25)
    proposed_train_days: int = 2
    proposed_epochs: int = 5

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not self.policies:
            raise ValueError("policies must not be empty")
        for policy in self.policies:
            if policy not in FLEET_POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r}; expected one of "
                    f"{FLEET_POLICIES}"
                )
        if not self.task_mix:
            raise ValueError("task_mix must not be empty")
        for kind in self.task_mix:
            if kind not in FLEET_TASK_MIX and not kind.startswith("random:"):
                raise ValueError(
                    f"unknown task kind {kind!r}; expected one of "
                    f"{FLEET_TASK_MIX} or 'random:<seed>'"
                )
        if not 1 <= self.bank_size[0] <= self.bank_size[1]:
            raise ValueError(f"bad bank_size range {self.bank_size}")
        if not 0 < self.panel_scale[0] <= self.panel_scale[1]:
            raise ValueError(f"bad panel_scale range {self.panel_scale}")
        if not 0 <= self.cloud_jitter[0] <= self.cloud_jitter[1]:
            raise ValueError(f"bad cloud_jitter range {self.cloud_jitter}")

    # ------------------------------------------------------------------
    def timeline(self) -> Timeline:
        return Timeline(
            num_days=self.days,
            periods_per_day=self.periods_per_day,
            slots_per_period=self.slots_per_period,
            slot_seconds=self.slot_seconds,
        )

    def base_trace(self) -> SolarTrace:
        """The shared deployment-site weather (seeded by the fleet)."""
        return synthetic_trace(self.timeline(), seed=self.seed)

    def describe(self) -> Dict[str, object]:
        """Canonical dict of every field (cache/checkpoint keying)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    # ------------------------------------------------------------------
    def node_spec(self, node_index: int) -> NodeSpec:
        """The concrete configuration of one node.

        Pure function of ``(self.seed, node_index)`` and the variation
        ranges — never of shard layout or worker count.
        """
        if not 0 <= node_index < self.n_nodes:
            raise IndexError(
                f"node {node_index} out of range [0, {self.n_nodes})"
            )
        var = fleet_variation(
            self.seed,
            node_index,
            task_mix=self.task_mix,
            policies=self.policies,
            bank_choices=self.bank_choices,
            bank_size=self.bank_size,
            panel_scale=self.panel_scale,
            cloud_jitter=self.cloud_jitter,
        )
        return NodeSpec(
            node_id=var["node_id"],
            graph_kind=var["graph_kind"],
            policy=var["policy"],
            bank_farads=var["bank_farads"],
            panel_scale=var["panel_scale"],
            jitter_sigma=var["jitter_sigma"],
            jitter_seed=var["jitter_seed"],
            scheduler_seed=var["scheduler_seed"],
        )

    def node_specs(self) -> List[NodeSpec]:
        return [self.node_spec(i) for i in range(self.n_nodes)]


def node_trace(base: SolarTrace, spec: NodeSpec) -> SolarTrace:
    """Per-node weather: base trace x panel scale x cloud jitter.

    The jitter is multiplicative log-free noise seeded by the node
    (clipped at zero so power stays physical); sigma 0 short-circuits
    to a plain scale so homogeneous fleets pay nothing extra.
    """
    power = base.power * spec.panel_scale
    if spec.jitter_sigma > 0:
        rng = np.random.default_rng(spec.jitter_seed)
        factors = 1.0 + rng.normal(0.0, spec.jitter_sigma, size=power.shape)
        power = power * np.clip(factors, 0.0, None)
    return SolarTrace(base.timeline, power)
