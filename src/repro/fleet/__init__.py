"""Fleet-scale simulation: populations of heterogeneous sensor nodes.

The paper evaluates one node; this package runs hundreds to thousands
of them — sharing one base solar trace with seeded per-node variation
(panel scale, cloud jitter, workload mix, scheduler/policy assignment,
heterogeneous capacitor banks) — and aggregates the population view:
DMR distribution percentiles, brownout counts, energy-utilization
histograms and per-policy comparison.

Quickstart::

    from repro.fleet import FleetSpec, run_fleet

    result = run_fleet(FleetSpec(n_nodes=200, seed=0), workers=4)
    print(result.render())
    print(result.fingerprint())   # bit-identical for any worker count

CLI: ``repro fleet run --nodes 200 --seed 0 --workers 4``.
"""

from .result import (
    FLEET_RESULT_SCHEMA,
    FailedNode,
    FleetAggregate,
    FleetResult,
    NodeSummary,
)
from .runner import (
    DEFAULT_SHARD_SIZE,
    ENGINES,
    FleetRunner,
    node_spec_digest,
    run_fleet,
    simulate_node,
    simulate_shard_batch,
)
from .spec import FLEET_POLICIES, FleetSpec, NodeSpec, node_trace

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ENGINES",
    "FLEET_POLICIES",
    "FLEET_RESULT_SCHEMA",
    "FailedNode",
    "FleetAggregate",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "NodeSpec",
    "NodeSummary",
    "node_spec_digest",
    "node_trace",
    "run_fleet",
    "simulate_node",
    "simulate_shard_batch",
]
