"""Figure 9: DMR and energy utilisation over two months (WAM).

The paper's long-horizon study: (a) the proposed per-day DMR tracks
the optimal, and (b) — the counterintuitive result — the proposed
scheduler's *energy utilisation* is LOWER than both baselines (by
5.53% / 10.6% on average) because it deliberately migrates more energy
through lossy capacitors for the sake of the night-time DMR.
"""

from __future__ import annotations

from ..solar import synthetic_trace
from ..tasks import wam
from .common import (
    ExperimentTable,
    default_timeline,
    evaluation_suite,
    train_policy,
)

__all__ = ["run"]


def run(
    num_days: int = 60, eval_seed: int = 2016, n_workers: int | None = None
) -> ExperimentTable:
    graph = wam()
    trace = synthetic_trace(default_timeline(num_days), seed=eval_seed)
    policy = train_policy(graph)
    results = evaluation_suite(graph, trace, policy, n_workers=n_workers)

    headers = ["metric"] + list(results)
    rows = [
        ["long-term DMR"] + [f"{r.dmr:.3f}" for r in results.values()],
        ["energy utilisation"]
        + [f"{r.energy_utilization:.3f}" for r in results.values()],
        ["migration efficiency"]
        + [f"{r.migration_efficiency:.3f}" for r in results.values()],
        ["storage-served J"]
        + [f"{r.total_storage_energy:.0f}" for r in results.values()],
    ]
    # Weekly DMR series (figure 9a's time axis, coarsened).
    for week in range(num_days // 7):
        row = [f"week {week + 1} DMR"]
        for r in results.values():
            days = r.dmr_by_day()[week * 7 : (week + 1) * 7]
            row.append(f"{days.mean():.3f}")
        rows.append(row)

    prop = results["proposed"]
    inter = results["inter-task"]
    intra = results["intra-task"]
    opt = results["optimal"]
    util_gap_inter = (
        (inter.energy_utilization - prop.energy_utilization)
        / max(inter.energy_utilization, 1e-9)
    )
    util_gap_intra = (
        (intra.energy_utilization - prop.energy_utilization)
        / max(intra.energy_utilization, 1e-9)
    )
    notes = [
        f"proposed DMR within {abs(prop.dmr - opt.dmr):.3f} of optimal "
        "(fig 9a shape)",
        f"proposed utilisation lower than inter-task by "
        f"{util_gap_inter * 100:.1f}% and intra-task by "
        f"{util_gap_intra * 100:.1f}% (paper: 5.53% / 10.6%) — "
        f"{'OK' if util_gap_inter > 0 and util_gap_intra > 0 else 'VIOLATED'}",
        "higher energy utilisation does not imply better DMR "
        f"({'OK' if inter.energy_utilization > prop.energy_utilization and inter.dmr > prop.dmr else 'VIOLATED'})",
    ]
    return ExperimentTable(
        title=f"Figure 9: DMR and energy utilisation over {num_days} days (WAM)",
        headers=headers,
        rows=rows,
        notes=notes,
    )
