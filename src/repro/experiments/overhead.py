"""Section 6.5: algorithm overhead on the node.

The paper measures the coarse-grained (DBN) and fine-grained
(per-slot) procedures at 14.6 s / 3.0 mW and 3.47 s / 2.94 mW on the
93.5 kHz node, concluding the algorithm costs less than 3% of total
energy.  ``run`` evaluates our operation-count model against a
simulated WAM deployment.
"""

from __future__ import annotations

from ..core import OverheadModel
from ..sim.engine import simulate
from ..solar import four_day_trace
from ..tasks import wam
from .common import ExperimentTable, default_timeline, train_policy

__all__ = ["run"]


def run() -> ExperimentTable:
    """Coarse/fine procedure costs against a simulated deployment."""
    graph = wam()
    trace = four_day_trace(default_timeline(4))
    policy = train_policy(graph)
    result = simulate(
        policy.make_node(), graph, trace, policy.make_scheduler(),
        strict=False,
    )
    model = OverheadModel()
    report = model.report(policy.dbn, graph, trace.timeline, result)

    rows = [
        [
            "coarse (DBN) per period",
            f"{report.coarse_seconds:.3f}s",
            f"{report.coarse_power * 1e3:.2f}mW",
            f"{report.coarse_energy * 1e3:.2f}mJ",
        ],
        [
            "fine (per-slot) per period",
            f"{report.fine_seconds:.3f}s",
            f"{report.fine_power * 1e3:.2f}mW",
            f"{report.fine_energy * 1e3:.2f}mJ",
        ],
        [
            "total per day",
            "-",
            "-",
            f"{report.energy_per_day * 1e3:.1f}mJ",
        ],
    ]
    notes = [
        f"DBN forward pass: {policy.dbn.mac_count():,} MACs at "
        f"{model.clock_hz / 1e3:.1f} kHz",
        f"relative overhead: {report.relative_overhead * 100:.3f}% of total "
        "energy (paper: < 3%) — "
        f"{'OK' if report.relative_overhead < 0.03 else 'VIOLATED'}",
        "paper's measured reference: coarse 14.6s/3.0mW, fine 3.47s/2.94mW",
    ]
    return ExperimentTable(
        title="Section 6.5: algorithm overhead",
        headers=["procedure", "time", "power", "energy"],
        rows=rows,
        notes=notes,
    )
