"""Ablations of the design choices DESIGN.md calls out.

* ``run_eth`` — the Eq. (22) capacitor-switch threshold (never switch /
  threshold / always switch);
* ``run_delta`` — the δ intra/inter fine-pass selection (always intra /
  threshold / always inter);
* ``run_coarse_model`` — DBN vs LUT-nearest-neighbour vs hand-written
  heuristic for the coarse per-period stage.
"""

from __future__ import annotations

from typing import Sequence

from ..core import (
    DBNPolicy,
    HeuristicPolicy,
    NearestSamplePolicy,
    ProposedScheduler,
)
from ..sim.engine import simulate
from ..solar import synthetic_trace
from ..tasks import wam
from .common import ExperimentTable, default_timeline, train_policy

__all__ = ["run_eth", "run_delta", "run_coarse_model"]

EVAL_SEED = 2016


def _eval_trace(num_days: int):
    return synthetic_trace(default_timeline(num_days), seed=EVAL_SEED)


def run_eth(
    thresholds: Sequence[float] = (0.0, 0.5, 2.0, 8.0, 1e9),
    num_days: int = 14,
) -> ExperimentTable:
    """Sweep E_th; 0 = always honour switches, huge = never block."""
    graph = wam()
    policy = train_policy(graph)
    trace = _eval_trace(num_days)
    rows = []
    for eth in thresholds:
        node = policy.make_node(switch_threshold=eth)
        result = simulate(
            node, graph, trace, policy.make_scheduler(), strict=False
        )
        label = "always-switch" if eth >= 1e8 else f"{eth:g}J"
        rows.append(
            [
                label,
                f"{result.dmr:.3f}",
                f"{result.energy_utilization:.3f}",
                str(node.bank.switch_count),
            ]
        )
    return ExperimentTable(
        title="Ablation: capacitor switch threshold E_th (Eq. 22)",
        headers=["E_th", "DMR", "utilisation", "switches"],
        rows=rows,
        notes=[
            "0J never switches once charged; a huge threshold switches on "
            "every DBN request, stranding charged capacitors"
        ],
    )


def run_delta(
    deltas: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 1e9),
    num_days: int = 14,
) -> ExperimentTable:
    """Sweep δ; 0 = (almost) always inter, huge = always intra."""
    graph = wam()
    policy = train_policy(graph)
    trace = _eval_trace(num_days)
    rows = []
    for delta in deltas:
        scheduler = ProposedScheduler(
            DBNPolicy(policy.dbn, policy.codec), delta=delta
        )
        result = simulate(
            policy.make_node(), graph, trace, scheduler, strict=False
        )
        label = "always-intra" if delta >= 1e8 else f"{delta:g}"
        rows.append(
            [label, f"{result.dmr:.3f}", f"{result.energy_utilization:.3f}"]
        )
    return ExperimentTable(
        title="Ablation: intra/inter selection threshold delta (Sec. 5.2)",
        headers=["delta", "DMR", "utilisation"],
        rows=rows,
        notes=["delta controls when the cheap inter-task pass replaces "
               "the intra-task load matching"],
    )


def run_coarse_model(num_days: int = 14) -> ExperimentTable:
    """DBN vs LUT nearest-neighbour vs heuristic coarse stage."""
    graph = wam()
    policy = train_policy(graph)
    trace = _eval_trace(num_days)
    policies = {
        "DBN (paper)": DBNPolicy(policy.dbn, policy.codec),
        "LUT nearest": NearestSamplePolicy(policy.samples, policy.codec),
        "heuristic": HeuristicPolicy(
            graph,
            policy.capacitors,
            period_seconds=trace.timeline.period_seconds,
        ),
    }
    rows = []
    for name, coarse in policies.items():
        result = simulate(
            policy.make_node(),
            graph,
            trace,
            ProposedScheduler(coarse, delta=policy.delta, name=name),
            strict=False,
        )
        rows.append(
            [name, f"{result.dmr:.3f}", f"{result.energy_utilization:.3f}"]
        )
    return ExperimentTable(
        title="Ablation: coarse per-period decision model",
        headers=["coarse model", "DMR", "utilisation"],
        rows=rows,
        notes=[
            "the DBN approximates the LUT with O(kB) of weights instead of "
            "the full sample table (Sec. 5.1)"
        ],
    )
