"""Figure 7: solar power of four individual days.

The paper plots the panel-output power over four days representing
different weather patterns in a year.  ``run`` reproduces the series:
hourly average power per day plus the daily energy, decreasing from
Day 1 (clear summer) to Day 4 (overcast winter).
"""

from __future__ import annotations

import numpy as np

from ..solar import FOUR_DAYS, four_day_trace
from .common import ExperimentTable, default_timeline

__all__ = ["run"]


def run(seed: int = 7) -> ExperimentTable:
    """Hourly power and daily energy of the four canonical days."""
    timeline = default_timeline(4)
    trace = four_day_trace(timeline, seed=seed)
    periods_per_hour = timeline.periods_per_day // 24

    headers = ["hour"] + [f"day{d + 1} (mW)" for d in range(4)]
    rows = []
    for hour in range(24):
        row = [str(hour)]
        for day in range(4):
            sel = trace.power[
                day, hour * periods_per_hour : (hour + 1) * periods_per_hour
            ]
            row.append(f"{sel.mean() * 1e3:.2f}")
        rows.append(row)

    energies = [trace.daily_energy(d) for d in range(4)]
    rows.append(
        ["total J"] + [f"{e:.0f}" for e in energies]
    )
    notes = [
        f"day {d + 1}: {arch.name}" for d, arch in enumerate(FOUR_DAYS)
    ]
    notes.append(
        "shape target: daily energy strictly decreasing day1 -> day4 "
        f"({'OK' if all(np.diff(energies) < 0) else 'VIOLATED'})"
    )
    return ExperimentTable(
        title="Figure 7: solar power of four individual days",
        headers=headers,
        rows=rows,
        notes=notes,
    )
