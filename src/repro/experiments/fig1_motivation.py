"""Figure 1 (motivation): long-term vs single-period scheduling.

The traditional scheduler wins (slightly) while the sun shines and
collapses at night; the long-term scheduler sacrifices a little during
the day to migrate energy into the night.  ``run`` reproduces the
figure's day/night DMR split on one clear day for the WAM benchmark.
"""

from __future__ import annotations

from ..solar import four_day_trace
from .common import (
    ExperimentTable,
    default_timeline,
    evaluation_suite,
    train_policy,
)
from ..tasks import wam

__all__ = ["run"]


def run(bucket_hours: int = 3) -> ExperimentTable:
    """Time-of-day DMR of inter-task vs proposed (four-day average)."""
    graph = wam()
    trace = four_day_trace(default_timeline(4))
    policy = train_policy(graph)
    results = evaluation_suite(
        graph, trace, policy, include=("inter-task", "proposed")
    )

    timeline = trace.timeline
    per_bucket = timeline.periods_per_day * bucket_hours // 24
    headers = ["window"] + list(results)
    rows = []
    # Average each time-of-day window across the four days: the
    # motivation figure's contrast (fine by day, collapse at night) is
    # a property of the diurnal cycle, not of one particular day.
    series = {
        name: r.dmr_series().reshape(
            timeline.num_days, timeline.periods_per_day
        )
        for name, r in results.items()
    }
    for b in range(24 // bucket_hours):
        row = [f"{b * bucket_hours:02d}-{(b + 1) * bucket_hours:02d}h"]
        for name in results:
            window = series[name][:, b * per_bucket : (b + 1) * per_bucket]
            row.append(f"{window.mean():.3f}")
        rows.append(row)

    # Day/night aggregate: day = periods with solar, night = without.
    solar = trace.power.sum(axis=2)  # (days, periods)
    night = solar <= 1e-9
    notes = []
    aggregates = {}
    for name in results:
        d = series[name][~night].mean() if (~night).any() else 0.0
        n = series[name][night].mean() if night.any() else 0.0
        aggregates[name] = (d, n)
        notes.append(f"{name}: day DMR {d:.3f}, night DMR {n:.3f}")
    inter_night = aggregates["inter-task"][1]
    prop_night = aggregates["proposed"][1]
    notes.append(
        "shape target: proposed clearly better at night "
        f"({'OK' if prop_night < inter_night else 'VIOLATED'})"
    )
    return ExperimentTable(
        title="Figure 1: DMR by time of day, traditional vs long-term "
        "(four-day average)",
        headers=headers,
        rows=rows,
        notes=notes,
    )
