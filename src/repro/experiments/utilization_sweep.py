"""Extension: when does long-term scheduling pay?

The paper evaluates fixed benchmarks; this sweep varies the workload's
power utilisation (demand as a fraction of the panel's peak output)
with the UUniFast generator and measures the gap between the
single-period baselines and the long-term optimal.  The expected
shape: at very low utilisation everything trivially fits (no gap), at
very high utilisation nothing fits (no gap), and in between — where
night service depends on *rationed* migration — the long-term planner
pulls ahead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import LongTermOptimizer, StaticOptimalScheduler, trace_period_matrix
from ..energy import SuperCapacitor
from ..node import SensorNode
from ..schedulers import InterTaskScheduler, IntraTaskScheduler
from ..sim.engine import simulate
from ..solar import four_day_trace
from ..tasks import WorkloadSpec, generate_workload
from .common import ExperimentTable, default_timeline

__all__ = ["run"]

BANK = (1.0, 10.0, 47.0)


def run(
    utilizations: Sequence[float] = (0.1, 0.3, 0.5, 0.8, 1.2, 2.0),
    num_tasks: int = 6,
    structure: str = "layered",
    seed: int = 17,
) -> ExperimentTable:
    """DMR of inter/intra/optimal across workload utilisations."""
    trace = four_day_trace(default_timeline(4))
    rows = []
    gaps = []
    for util in utilizations:
        spec = WorkloadSpec(
            num_tasks=num_tasks,
            utilization=util,
            structure=structure,
            num_nvps=2,
        )
        graph = generate_workload(spec, seed=seed)
        caps = [SuperCapacitor(capacitance=c) for c in BANK]

        optimizer = LongTermOptimizer(graph, trace.timeline, caps)
        plan = optimizer.optimize(
            trace_period_matrix(trace), extract_matrices=False
        )
        dmr = {}
        for name, sched in (
            ("inter", InterTaskScheduler()),
            ("intra", IntraTaskScheduler()),
            ("optimal", StaticOptimalScheduler(plan)),
        ):
            node = SensorNode(
                [SuperCapacitor(capacitance=c) for c in BANK],
                num_nvps=graph.num_nvps,
            )
            dmr[name] = simulate(node, graph, trace, sched, strict=False).dmr
        gap = dmr["inter"] - dmr["optimal"]
        gaps.append(gap)
        rows.append(
            [
                f"{util:g}",
                f"{dmr['inter']:.3f}",
                f"{dmr['intra']:.3f}",
                f"{dmr['optimal']:.3f}",
                f"{gap:+.3f}",
            ]
        )
    peak = int(np.argmax(gaps))
    notes = [
        f"the long-term advantage peaks at utilisation "
        f"{utilizations[peak]:g} ({gaps[peak]:+.3f} DMR) and shrinks at "
        "both extremes — long-term migration matters exactly when the "
        "night is contestable",
    ]
    return ExperimentTable(
        title="Extension: single-period vs long-term gap across workload "
        "utilisation",
        headers=["utilisation", "inter-task", "intra-task", "optimal", "gap"],
        rows=rows,
        notes=notes,
    )
