"""Figure 6 companion: DBN architecture and training diagnostics.

Figure 6 of the paper is the DBN's architecture diagram, not an
experiment; this runner documents the trained network that stands in
for it — layer sizes, unsupervised pretraining reconstruction error
per RBM, supervised fine-tuning loss, and the network's accuracy on
its own training samples (how faithfully the compact model captures
the LUT/DP behaviour it compresses).
"""

from __future__ import annotations

import numpy as np

from ..tasks import wam
from .common import ExperimentTable, train_policy

__all__ = ["run"]


def run() -> ExperimentTable:
    """Architecture, training convergence and fidelity of the DBN."""
    policy = train_policy(wam())
    dbn = policy.dbn
    codec = policy.codec

    # Fidelity is measured on the *trajectory* samples (the first
    # total_periods entries); the off-trajectory augmentation that
    # follows them randomises idle-capacitor voltages, which makes the
    # capacitor label deliberately ambiguous there (see
    # LongTermOptimizer.optimize's augment_per_period).
    trajectory = policy.samples[: policy.timeline.total_periods]
    x, caps, alphas, tes = codec.encode_samples(trajectory)
    cap_probs, alpha_pred, te_probs = dbn.predict(x)
    cap_acc = float((np.argmax(cap_probs, axis=1) == caps).mean())
    te_acc = float(((te_probs >= 0.5) == (tes >= 0.5)).mean())
    alpha_rmse = float(np.sqrt(((alpha_pred - alphas) ** 2).mean()))

    rows = [
        ["input width", str(dbn.input_size)],
        ["hidden layers", " -> ".join(str(h) for h in dbn.hidden_sizes)],
        [
            "output heads",
            f"{dbn.heads.num_capacitors} capacitors + alpha + "
            f"{dbn.heads.num_tasks} task bits",
        ],
        ["forward-pass MACs", f"{dbn.mac_count():,}"],
        [
            "training samples",
            f"{len(policy.samples)} ({len(trajectory)} trajectory + "
            f"{len(policy.samples) - len(trajectory)} augmented)",
        ],
    ]
    for i, errs in enumerate(dbn.pretrain_errors):
        rows.append(
            [
                f"RBM {i + 1} reconstruction",
                f"{errs[0]:.3f} -> {errs[-1]:.3f}",
            ]
        )
    if dbn.finetune_losses is not None:
        rows.append(
            [
                "fine-tune loss",
                f"{dbn.finetune_losses[0]:.3f} -> "
                f"{dbn.finetune_losses[-1]:.3f}",
            ]
        )
    rows += [
        ["capacitor accuracy", f"{cap_acc * 100:.1f}%"],
        ["task-bit accuracy", f"{te_acc * 100:.1f}%"],
        ["alpha RMSE (scaled)", f"{alpha_rmse:.3f}"],
    ]
    notes = [
        "pretraining (RBM stack) and fine-tuning (backprop) both reduce "
        "their objectives; the compact network reproduces the oracle's "
        "decisions on its training distribution",
    ]
    return ExperimentTable(
        title="Figure 6 companion: the trained DBN",
        headers=["property", "value"],
        rows=rows,
        notes=notes,
    )
