"""Shared configuration and helpers for the paper's experiments.

Every experiment module exposes a ``run(...)`` function returning an
:class:`ExperimentTable` whose rows mirror the corresponding paper
table/figure series.  The heavy artefact — a trained policy per
benchmark — is cached per process so a benchmark session trains each
workload once.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import (
    LongTermOptimizer,
    OfflinePipeline,
    StaticOptimalScheduler,
    TrainedPolicy,
    trace_period_matrix,
)
from ..obs import Observer, build_manifest
from ..obs.trace import current_tracer
from ..perf.cache import cache_enabled, default_cache
from ..perf.parallel import resolve_workers
from ..reliability.supervisor import SupervisorPolicy, supervised_traced_map
from ..schedulers import InterTaskScheduler, IntraTaskScheduler, Scheduler
from ..sim.engine import simulate
from ..sim.recorder import SimulationResult
from ..solar import (
    FOUR_DAYS,
    SolarTrace,
    archetype_trace,
    synthetic_trace,
)
from ..tasks.graph import TaskGraph
from ..timeline import Timeline

__all__ = [
    "ExperimentTable",
    "default_timeline",
    "training_trace",
    "train_policy",
    "sized_capacitors",
    "evaluation_suite",
    "write_experiment_manifest",
    "STANDARD_SCHEDULERS",
]

#: Period structure used throughout: 144 × 10-minute periods per day,
#: 20 × 30-second slots per period.
PERIODS_PER_DAY = 144
SLOTS_PER_PERIOD = 20
SLOT_SECONDS = 30.0

#: Seed of the training weather (the "historical data" of deployment).
TRAIN_SEED = 99
#: Days of historical data used by the offline stage.
TRAIN_DAYS = 12

STANDARD_SCHEDULERS = ("inter-task", "intra-task", "proposed", "optimal")

_policy_cache: Dict[Tuple, TrainedPolicy] = {}
_sizing_cache: Dict[Tuple, Tuple] = {}


@dataclasses.dataclass
class ExperimentTable:
    """A rendered experiment result."""

    title: str
    headers: List[str]
    rows: List[List[str]]
    notes: List[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        """ASCII-render the table with aligned columns and notes."""
        widths = [
            max(len(str(self.headers[i])), *(len(str(r[i])) for r in self.rows))
            if self.rows
            else len(str(self.headers[i]))
            for i in range(len(self.headers))
        ]

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(
                str(c).ljust(w) for c, w in zip(cells, widths)
            )

        lines = [self.title, fmt(self.headers), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in self.rows)
        lines.extend(f"  {note}" for note in self.notes)
        return "\n".join(lines)

    def cell(self, row: int, column: str) -> str:
        """Value at a row index and a named column."""
        return self.rows[row][self.headers.index(column)]


def default_timeline(num_days: int) -> Timeline:
    """The experiments' standard 144x20x30s time structure."""
    return Timeline(
        num_days=num_days,
        periods_per_day=PERIODS_PER_DAY,
        slots_per_period=SLOTS_PER_PERIOD,
        slot_seconds=SLOT_SECONDS,
    )


def training_trace(num_days: int = TRAIN_DAYS, seed: int = TRAIN_SEED) -> SolarTrace:
    """The 'historical' weather the offline stage trains on.

    A mix of Markov-chain synthetic days and the four canonical
    archetypes (with different noise than the evaluation trace), so the
    trained policy has seen the full range of weather a deployment year
    contains — including the clear-summer and overcast-winter extremes
    that the stochastic chain rarely reaches.
    """
    if num_days <= len(FOUR_DAYS):
        return synthetic_trace(default_timeline(num_days), seed=seed)
    synth = synthetic_trace(
        default_timeline(num_days - len(FOUR_DAYS)), seed=seed
    )
    extremes = archetype_trace(
        default_timeline(len(FOUR_DAYS)), FOUR_DAYS, seed=seed + 1
    )
    power = np.concatenate([synth.power, extremes.power], axis=0)
    return SolarTrace(default_timeline(num_days), power)


def train_policy(
    graph: TaskGraph,
    num_capacitors: int = 4,
    train_days: int = TRAIN_DAYS,
    seed: int = TRAIN_SEED,
    finetune_epochs: int = 300,
    use_cache: Optional[bool] = None,
) -> TrainedPolicy:
    """Cached offline pipeline run for one benchmark.

    Two cache layers: an in-process memo keyed by the parameter tuple
    (so one session never trains the same configuration twice), then
    the content-addressed disk cache of :mod:`repro.perf.cache` (so
    separate invocations don't either).  ``use_cache`` overrides the
    ``REPRO_NO_CACHE`` environment default for the disk layer; the
    in-process memo is always on.
    """
    key = (graph.name, num_capacitors, train_days, seed, finetune_epochs)
    policy = _policy_cache.get(key)
    if policy is None:
        pipe = OfflinePipeline(
            graph,
            num_capacitors=num_capacitors,
            finetune_epochs=finetune_epochs,
        )
        disk = use_cache if use_cache is not None else cache_enabled()
        policy = pipe.run(
            training_trace(train_days, seed),
            cache=default_cache() if disk else None,
        )
        _policy_cache[key] = policy
    return policy


def sized_capacitors(
    graph: TaskGraph,
    num_capacitors: int = 4,
    train_days: int = TRAIN_DAYS,
    seed: int = TRAIN_SEED,
) -> Tuple:
    """Section 4.1 sizing only, memoized like :func:`train_policy`.

    Figures that only need the sized bank (e.g. the capacitor-count
    sweep) used to re-run the sizing step on every invocation; this
    memoizes it per process and reuses the bank of an already trained
    policy for the same configuration when one exists.
    """
    key = (graph.name, num_capacitors, train_days, seed)
    capacitors = _sizing_cache.get(key)
    if capacitors is None:
        for (g, h, d, s, _epochs), policy in _policy_cache.items():
            if (g, h, d, s) == key:
                capacitors = policy.capacitors
                break
        else:
            pipe = OfflinePipeline(graph, num_capacitors=num_capacitors)
            capacitors = tuple(
                pipe.size_capacitors(training_trace(train_days, seed))
            )
        _sizing_cache[key] = capacitors
    return capacitors


def _suite_scheduler(
    name: str, graph: TaskGraph, trace: SolarTrace, policy: TrainedPolicy
) -> Scheduler:
    """Build one comparison scheduler by key (shared serial/parallel)."""
    if name == "inter-task":
        return InterTaskScheduler()
    if name == "intra-task":
        return IntraTaskScheduler()
    if name == "proposed":
        return policy.make_scheduler()
    if name == "optimal":
        optimizer = LongTermOptimizer(
            graph, trace.timeline, list(policy.capacitors)
        )
        plan = optimizer.optimize(
            trace_period_matrix(trace), extract_matrices=False
        )
        return StaticOptimalScheduler(plan)
    raise ValueError(f"unknown scheduler key {name!r}")


def _suite_cell(args: Tuple) -> Tuple[str, SimulationResult]:
    """One (scheduler, trace) simulation; module-level so it pickles."""
    graph, trace, policy, name = args
    scheduler = _suite_scheduler(name, graph, trace, policy)
    result = simulate(
        policy.make_node(), graph, trace, scheduler, strict=False
    )
    return name, result


def evaluation_suite(
    graph: TaskGraph,
    trace: SolarTrace,
    policy: Optional[TrainedPolicy] = None,
    include: Sequence[str] = STANDARD_SCHEDULERS,
    observer: Optional[Observer] = None,
    n_workers: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run the paper's four-way comparison on one trace.

    ``inter-task`` and ``intra-task`` are the prior-work baselines,
    ``proposed`` the DBN-based online scheduler, ``optimal`` the static
    upper bound computed on the true trace.  An ``observer`` (shared
    across the runs) traces every simulation.

    ``n_workers`` (or ``$REPRO_WORKERS``) fans the schedulers out over
    a *supervised* process pool (transient worker failures are retried
    with deterministic backoff, dead workers rebuild the pool); every
    cell is an independent simulation with its own node, so parallel
    results are identical to serial ones.  A cell that fails on every
    attempt still aborts the suite — a missing scheduler column would
    silently skew the paper's comparison tables.  Observed runs stay
    serial — sinks hold file handles that cannot cross processes.
    """
    policy = policy or train_policy(graph)
    workers = resolve_workers(n_workers)
    tracer = current_tracer()
    if observer is None and workers > 1 and len(include) > 1:
        cells = [(graph, trace, policy, name) for name in include]
        sup = supervised_traced_map(
            _suite_cell,
            cells,
            name="suite_cell",
            keys=list(include),
            policy=SupervisorPolicy.from_env(on_error="fail"),
            n_workers=workers,
            tracer=tracer,
        )
        return dict(sup.results)
    results: Dict[str, SimulationResult] = {}
    for name in include:
        with tracer.span("suite_cell", key=name):
            scheduler = _suite_scheduler(name, graph, trace, policy)
            results[name] = simulate(
                policy.make_node(),
                graph,
                trace,
                scheduler,
                strict=False,
                observer=observer,
            )
    return results


def write_experiment_manifest(
    name: str,
    table: ExperimentTable,
    results_dir: Union[str, Path],
    wall_time_s: float = 0.0,
    extra_config: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``<name>.manifest.json`` next to an experiment's results.

    The manifest pins the experiment to the code revision, the shared
    training configuration (seed, days, timeline shape), and a hash of
    the rendered table, so every number in EXPERIMENTS.md traces back
    to a reproducible run.
    """
    rendered = table.render()
    config: Dict[str, object] = {
        "train_seed": TRAIN_SEED,
        "train_days": TRAIN_DAYS,
        "periods_per_day": PERIODS_PER_DAY,
        "slots_per_period": SLOTS_PER_PERIOD,
        "slot_seconds": SLOT_SECONDS,
    }
    if extra_config:
        config.update(extra_config)
    manifest = build_manifest(
        name,
        seed=TRAIN_SEED,
        scheduler=None,
        benchmark=name,
        timeline={
            "periods_per_day": PERIODS_PER_DAY,
            "slots_per_period": SLOTS_PER_PERIOD,
            "slot_seconds": SLOT_SECONDS,
        },
        config=config,
        result_summary={
            "title": table.title,
            "rows": len(table.rows),
            "table_sha256": hashlib.sha256(
                rendered.encode("utf-8")
            ).hexdigest(),
        },
        wall_time_s=wall_time_s,
    )
    return manifest.write(Path(results_dir) / f"{name}.manifest.json")
