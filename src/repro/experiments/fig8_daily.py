"""Figure 8: DMR in four individual days with six benchmarks.

The paper's headline comparison: Inter-task [3], Intra-task [9], the
proposed algorithm and the static optimal on three random benchmarks
plus WAM / ECG / SHM over the four representative days.  Shape
targets: optimal <= proposed < intra <= inter on average, proposed up
to ~28% better than inter-task, and the proposed advantage growing as
solar energy decreases (Day 1 -> Day 4).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..solar import four_day_trace
from ..tasks import paper_benchmarks
from .common import (
    ExperimentTable,
    default_timeline,
    evaluation_suite,
    train_policy,
)

__all__ = ["run"]


def run(
    benchmarks: Optional[Sequence[str]] = None,
    finetune_epochs: int = 300,
    n_workers: Optional[int] = None,
) -> ExperimentTable:
    registry = paper_benchmarks()
    names = list(benchmarks) if benchmarks else list(registry)
    trace = four_day_trace(default_timeline(4))

    headers = ["benchmark", "day", "inter-task", "intra-task", "proposed", "optimal"]
    rows = []
    averages: Dict[str, list] = {k: [] for k in headers[2:]}
    improvements = []
    gap_by_day: Dict[int, list] = {d: [] for d in range(4)}

    for bench_name in names:
        graph = registry[bench_name]
        policy = train_policy(graph, finetune_epochs=finetune_epochs)
        results = evaluation_suite(graph, trace, policy, n_workers=n_workers)
        by_day = {k: r.dmr_by_day() for k, r in results.items()}
        for day in range(4):
            rows.append(
                [bench_name, f"day{day + 1}"]
                + [f"{by_day[k][day]:.3f}" for k in headers[2:]]
            )
            inter = by_day["inter-task"][day]
            prop = by_day["proposed"][day]
            if inter > 0:
                gap_by_day[day].append((inter - prop) / inter)
        for k in headers[2:]:
            averages[k].append(results[k].dmr)
        if results["inter-task"].dmr > 0:
            improvements.append(
                (results["inter-task"].dmr - results["proposed"].dmr)
                / results["inter-task"].dmr
            )

    rows.append(
        ["average", "-"]
        + [f"{np.mean(averages[k]):.3f}" for k in headers[2:]]
    )

    mean_inter = float(np.mean(averages["inter-task"]))
    mean_prop = float(np.mean(averages["proposed"]))
    mean_opt = float(np.mean(averages["optimal"]))
    notes = [
        f"proposed vs inter-task: {100 * (mean_inter - mean_prop) / mean_inter:.1f}% "
        f"lower DMR on average, best benchmark "
        f"{100 * max(improvements):.1f}% (paper: up to 27.8%)",
        f"proposed vs optimal: {100 * abs(mean_prop - mean_opt):.2f} points "
        "apart (paper: 3.69%)",
    ]
    day_gaps = [np.mean(gap_by_day[d]) if gap_by_day[d] else 0.0 for d in range(4)]
    notes.append(
        "relative proposed-vs-inter gap by day: "
        + ", ".join(f"day{d + 1} {g * 100:.1f}%" for d, g in enumerate(day_gaps))
        + " (paper: gap grows as solar decreases)"
    )
    return ExperimentTable(
        title="Figure 8: DMR in four individual days, six benchmarks",
        headers=headers,
        rows=rows,
        notes=notes,
    )
