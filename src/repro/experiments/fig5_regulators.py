"""Figure 5: tested efficiencies of the input and output regulators.

The paper's Figure 5 plots regulator conversion efficiency against the
super-capacitor voltage, the data-fit behind η_chr / η_dis in Eq. (3).
``run`` tabulates our fitted curves over the operating range.
"""

from __future__ import annotations

import numpy as np

from ..energy import default_input_regulator, default_output_regulator
from .common import ExperimentTable

__all__ = ["run"]


def run(v_min: float = 0.5, v_max: float = 5.0, points: int = 10) -> ExperimentTable:
    """Tabulate the fitted regulator efficiency curves."""
    input_reg = default_input_regulator()
    output_reg = default_output_regulator()
    voltages = np.linspace(v_min, v_max, points)
    rows = [
        [
            f"{v:.2f}",
            f"{input_reg.efficiency(v) * 100:.1f}%",
            f"{output_reg.efficiency(v) * 100:.1f}%",
        ]
        for v in voltages
    ]
    rising_in = input_reg.efficiency(v_max) > input_reg.efficiency(v_min)
    rising_out = output_reg.efficiency(v_max) > output_reg.efficiency(v_min)
    return ExperimentTable(
        title="Figure 5: regulator efficiency vs capacitor voltage",
        headers=["V_sc (V)", "eta_chr (input)", "eta_dis (output)"],
        rows=rows,
        notes=[
            "shape target: both curves rise with voltage and collapse "
            f"near the cut-off ({'OK' if rising_in and rising_out else 'VIOLATED'})"
        ],
    )
