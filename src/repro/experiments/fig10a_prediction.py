"""Figure 10(a): DMR and complexity vs solar prediction length.

The paper sweeps the prediction length for random case 1 over a month:
DMR improves with longer prediction up to a balance point (48 h in the
paper, 68.9% DMR), then *degrades slightly* (70.2% at 96 h) because
long-range solar prediction is inaccurate — while complexity keeps
growing.  ``run`` reproduces the sweep with the receding-horizon
scheduler driven by a WCMA predictor, reporting the measured DMR, the
DP transitions evaluated (our complexity proxy) and the paper's
theoretical complexity exponent for reference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import DPConfig, RecedingHorizonScheduler
from ..sim.engine import simulate
from ..solar import synthetic_trace
from ..tasks import random_case
from .common import ExperimentTable, default_timeline, train_policy

__all__ = ["run", "DEFAULT_HORIZON_HOURS"]

DEFAULT_HORIZON_HOURS = (6, 12, 24, 48, 96)


def run(
    horizon_hours: Sequence[int] = DEFAULT_HORIZON_HOURS,
    num_days: int = 14,
    eval_seed: int = 2016,
    replan_every: int = 12,
) -> ExperimentTable:
    graph = random_case(1)
    timeline = default_timeline(num_days)
    trace = synthetic_trace(timeline, seed=eval_seed)
    policy = train_policy(graph)
    periods_per_hour = timeline.periods_per_day / 24.0

    rows = []
    dmrs = []
    for hours in horizon_hours:
        horizon = max(int(round(hours * periods_per_hour)), 1)
        scheduler = RecedingHorizonScheduler(
            list(policy.capacitors),
            horizon_periods=horizon,
            replan_every=replan_every,
            config=DPConfig(energy_buckets=41),
            name=f"rh-{hours}h",
        )
        result = simulate(
            policy.make_node(), graph, trace, scheduler, strict=False
        )
        dmrs.append(result.dmr)
        # The paper's offline formulation enumerates
        # O((N+1)^(Np*Nd) * H^Nd) combinations; report the exponent.
        paper_exponent = horizon * np.log10(len(graph) + 1)
        rows.append(
            [
                f"{hours}h",
                f"{result.dmr:.3f}",
                f"{scheduler.transitions_evaluated:,}",
                f"10^{paper_exponent:.0f}",
            ]
        )

    best = int(np.argmin(dmrs))
    notes = [
        f"balance point at {horizon_hours[best]}h "
        f"(DMR {dmrs[best]:.3f}); paper finds one at 48h (68.9%)",
        "longer horizons cost more (transitions column) while DMR "
        "saturates or degrades with prediction error",
    ]
    if 0 < best < len(dmrs) - 1 or (best == len(dmrs) - 2):
        notes.append("shape target: interior balance point (OK)")
    elif best == len(dmrs) - 1:
        notes.append(
            "shape target: interior balance point (NOT REACHED — longest "
            "horizon still best on this trace)"
        )
    return ExperimentTable(
        title="Figure 10(a): DMR and complexity vs prediction length "
        "(random case 1)",
        headers=["prediction", "DMR", "DP transitions", "paper complexity"],
        rows=rows,
        notes=notes,
    )
