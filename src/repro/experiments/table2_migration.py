"""Table 2: energy migration efficiencies, model vs test.

The paper validates its slot-level migration model (Eq. 1–3) against
bench measurements on the physical node for {1, 10, 50, 100} F under
(7 J, 60 min) and (30 J, 400 min) patterns; the model's average error
is 5.38% and the best capacitor flips from 1 F to 10 F between the two
patterns, with up to 30.5% efficiency spread.

Our "test" column is the fine-timestep nonideal reference simulator
(dielectric absorption, per-device parameter spread) standing in for
the bench — see DESIGN.md substitutions.
"""

from __future__ import annotations

import numpy as np

from ..energy import (
    MigrationPattern,
    NonidealParams,
    SuperCapacitor,
    migration_efficiency,
)
from .common import ExperimentTable

__all__ = ["run", "CAPACITANCES", "PATTERNS"]

CAPACITANCES = (1.0, 10.0, 50.0, 100.0)
PATTERNS = ((7.0, 60.0), (30.0, 400.0))


def run(seed: int = 42) -> ExperimentTable:
    """Model-vs-test migration efficiencies for the Table 2 grid."""
    nonideal = NonidealParams(seed=seed)
    headers = ["capacity"]
    for quantity, minutes in PATTERNS:
        tag = f"{quantity:.0f}J,{minutes:.0f}min"
        headers += [f"model {tag}", f"test {tag}", f"err {tag}"]

    rows = []
    errors = []
    best = {p: (None, -1.0) for p in PATTERNS}
    for c in CAPACITANCES:
        cap = SuperCapacitor(capacitance=c)
        row = [f"{c:.0f}F"]
        for pattern_key in PATTERNS:
            pattern = MigrationPattern.table2(*pattern_key)
            model = migration_efficiency(cap, pattern, time_step=30.0)
            test = migration_efficiency(
                cap, pattern, time_step=5.0, nonideal=nonideal
            )
            err = abs(model - test) / max(test, 1e-9)
            errors.append(err)
            row += [f"{model * 100:.1f}%", f"{test * 100:.1f}%", f"{err * 100:.2f}%"]
            if model > best[pattern_key][1]:
                best[pattern_key] = (c, model)
        rows.append(row)

    spread = []
    for pattern_key in PATTERNS:
        pattern = MigrationPattern.table2(*pattern_key)
        effs = [
            migration_efficiency(
                SuperCapacitor(capacitance=c), pattern, time_step=30.0
            )
            for c in CAPACITANCES
        ]
        spread.append(max(effs) - min(effs))

    notes = [
        f"average model-vs-test error: {np.mean(errors) * 100:.2f}% "
        "(paper: 5.38%)",
        f"best capacitor: {best[PATTERNS[0]][0]:.0f}F at "
        f"{PATTERNS[0][0]:.0f}J/{PATTERNS[0][1]:.0f}min, "
        f"{best[PATTERNS[1]][0]:.0f}F at "
        f"{PATTERNS[1][0]:.0f}J/{PATTERNS[1][1]:.0f}min "
        "(paper: 1F -> 10F)",
        f"max efficiency spread across sizes: "
        f"{max(spread) * 100:.1f} points (paper: 30.5%)",
    ]
    return ExperimentTable(
        title="Table 2: energy migration efficiencies (model vs test)",
        headers=headers,
        rows=rows,
        notes=notes,
    )
