"""Fleet study: policy comparison across a heterogeneous population.

The paper compares schedulers on one node; deployments compare them
across a *population* — hundreds of nodes with different panels,
micro-climates, capacitor banks and workloads.  This study runs one
seeded heterogeneous fleet in which every scheduler in the pool is
assigned to a random cohort, then reports the per-policy DMR
distribution (mean/p50/p95), energy utilization and brownout pressure
side by side, plus the fleet's aggregate fingerprint (the determinism
witness: same seed → same table, any worker count).

Environment knobs: ``REPRO_FLEET_NODES`` (default 120) and
``REPRO_WORKERS`` scale the study without touching code.
"""

from __future__ import annotations

import os

from ..fleet import FleetRunner, FleetSpec
from .common import ExperimentTable

__all__ = ["run"]


def run() -> ExperimentTable:
    """Per-policy population comparison on one seeded fleet."""
    n_nodes = int(os.environ.get("REPRO_FLEET_NODES", "120"))
    spec = FleetSpec(
        n_nodes=n_nodes,
        seed=0,
        policies=("asap", "inter-task", "intra-task", "dvfs", "random"),
    )
    result = FleetRunner(spec).run()

    rows = []
    for policy, stats in result.by_policy().items():
        rows.append(
            [
                policy,
                f"{int(stats['nodes'])}",
                f"{stats['mean_dmr']:.4f}",
                f"{stats['p50_dmr']:.3f}",
                f"{stats['p95_dmr']:.3f}",
                f"{stats['mean_utilization']:.3f}",
                f"{int(stats['brownout_slots'])}",
            ]
        )
    pct = result.dmr_percentiles()
    notes = [
        f"fleet: {len(result)} nodes, seed {spec.seed}, "
        f"{spec.days} day(s) of {spec.periods_per_day} periods",
        "fleet DMR percentiles: "
        + "  ".join(f"{k} {v:.3f}" for k, v in pct.items()),
        f"brownout pressure: {result.total_brownout_slots} slots across "
        f"{result.brownout_node_fraction * 100:.1f}% of nodes",
        f"aggregate fingerprint: {result.fingerprint()}",
    ]
    return ExperimentTable(
        title="Fleet study: policies across a heterogeneous population",
        headers=[
            "policy", "nodes", "mean DMR", "p50", "p95", "util",
            "brownouts",
        ],
        rows=rows,
        notes=notes,
    )
