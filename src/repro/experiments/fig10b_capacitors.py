"""Figure 10(b): migration efficiency and DMR vs number of capacitors.

The paper sizes the distributed bank with 1–8 super capacitors for
random case 1 and evaluates Day 2: migration efficiency rises (67.5% →
87.1% in the paper's normalisation) and DMR falls (46.8% → 33.7%),
saturating at five or more capacitors.  ``run`` re-runs the Section 4.1
sizing with each bank cardinality and measures the static optimal on
the four-day trace, reporting Day 2.
"""

from __future__ import annotations

from typing import Sequence

from ..core import LongTermOptimizer, StaticOptimalScheduler, trace_period_matrix
from ..node import SensorNode
from ..sim.engine import simulate
from ..solar import four_day_trace
from ..tasks import random_case
from .common import ExperimentTable, default_timeline, sized_capacitors

__all__ = ["run"]


def run(
    counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 8),
    day: int = 1,
) -> ExperimentTable:
    graph = random_case(1)
    trace = four_day_trace(default_timeline(4))

    rows = []
    dmrs, effs = [], []
    for h in counts:
        capacitors = list(sized_capacitors(graph, num_capacitors=h))
        optimizer = LongTermOptimizer(graph, trace.timeline, capacitors)
        plan = optimizer.optimize(
            trace_period_matrix(trace), extract_matrices=False
        )
        node = SensorNode(capacitors, num_nvps=graph.num_nvps)
        result = simulate(
            node, graph, trace, StaticOptimalScheduler(plan), strict=False
        )
        day_dmr = float(result.dmr_by_day()[day])
        eff = result.migration_efficiency
        dmrs.append(day_dmr)
        effs.append(eff)
        sizes = "/".join(f"{c.capacitance:g}" for c in capacitors)
        rows.append(
            [
                str(h),
                sizes + "F",
                f"{eff * 100:.1f}%",
                f"{day_dmr:.3f}",
                f"{result.dmr:.3f}",
            ]
        )

    notes = [
        f"migration efficiency: {effs[0] * 100:.1f}% -> {max(effs) * 100:.1f}% "
        "as the bank grows (paper: 67.5% -> 87.1%)",
        f"day-2 DMR: {dmrs[0]:.3f} -> {min(dmrs):.3f} "
        "(paper: 46.8% -> 33.7%)",
        "shape target: DMR non-increasing then flat "
        f"({'OK' if dmrs[-1] <= dmrs[0] + 1e-9 else 'VIOLATED'})",
    ]
    return ExperimentTable(
        title="Figure 10(b): effect of the number of super capacitors "
        "(random case 1, day 2)",
        headers=["#caps", "sizes", "migration eff", "day2 DMR", "4-day DMR"],
        rows=rows,
        notes=notes,
    )
