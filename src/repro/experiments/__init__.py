"""Experiment harness: one runner per table/figure of the paper.

| Paper item   | Module                  |
|--------------|-------------------------|
| Figure 1     | ``fig1_motivation``     |
| Figure 2     | ``fig2_sizing``         |
| Figure 5     | ``fig5_regulators``     |
| Figure 7     | ``fig7_solar``          |
| Table 2      | ``table2_migration``    |
| Figure 8     | ``fig8_daily``          |
| Figure 9     | ``fig9_monthly``        |
| Figure 10(a) | ``fig10a_prediction``   |
| Figure 10(b) | ``fig10b_capacitors``   |
| Section 6.5  | ``overhead``            |
| (ablations)  | ``ablations``           |
| (fleet)      | ``fleet_study``         |
"""

from .common import (
    ExperimentTable,
    default_timeline,
    evaluation_suite,
    train_policy,
    training_trace,
)
from . import (
    ablations,
    report,
    fig1_motivation,
    fig2_sizing,
    fig5_regulators,
    fig6_dbn,
    fig7_solar,
    fig8_daily,
    fig9_monthly,
    fig10a_prediction,
    fig10b_capacitors,
    fleet_study,
    overhead,
    table2_migration,
    utilization_sweep,
)

__all__ = [
    "ExperimentTable",
    "default_timeline",
    "training_trace",
    "train_policy",
    "evaluation_suite",
    "fig1_motivation",
    "fig2_sizing",
    "fig5_regulators",
    "fig6_dbn",
    "fig7_solar",
    "table2_migration",
    "fig8_daily",
    "fig9_monthly",
    "fig10a_prediction",
    "fig10b_capacitors",
    "overhead",
    "ablations",
    "fleet_study",
    "utilization_sweep",
    "report",
]
