"""Figure 2 (motivation): why distributed super capacitors need sizing.

The paper's motivating example: a small capacitor wins a small/short
migration, a large one wins a large/long migration, so a single size
cannot be right for both — hence the distributed bank.  ``run`` sweeps
capacitance for the two ends of the pattern space.
"""

from __future__ import annotations

from ..energy import MigrationPattern, SuperCapacitor, migration_efficiency
from .common import ExperimentTable

__all__ = ["run", "SWEEP"]

SWEEP = (0.5, 1.0, 2.0, 4.7, 10.0, 22.0, 47.0, 100.0)


def run() -> ExperimentTable:
    """Migration efficiency vs capacitance for a small and a large pattern."""
    small = MigrationPattern.table2(5.0, 45.0)
    large = MigrationPattern.table2(40.0, 500.0)
    rows = []
    eff_small, eff_large = {}, {}
    for c in SWEEP:
        cap = SuperCapacitor(capacitance=c)
        eff_small[c] = migration_efficiency(cap, small, time_step=15.0)
        eff_large[c] = migration_efficiency(cap, large, time_step=30.0)
        rows.append(
            [
                f"{c:g}F",
                f"{eff_small[c] * 100:.1f}%",
                f"{eff_large[c] * 100:.1f}%",
            ]
        )
    best_small = max(eff_small, key=eff_small.get)
    best_large = max(eff_large, key=eff_large.get)
    return ExperimentTable(
        title="Figure 2: migration efficiency vs capacitor size",
        headers=["capacity", "small pattern (5J/45min)", "large pattern (40J/500min)"],
        rows=rows,
        notes=[
            f"optimum moves from {best_small:g}F (small pattern) to "
            f"{best_large:g}F (large pattern) "
            f"({'OK' if best_large > best_small else 'VIOLATED'}) — "
            "the paper's case for distributed capacitor sizing",
        ],
    )
