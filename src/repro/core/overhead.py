"""Algorithm overhead model (Section 6.5 of the paper).

The paper measures the coarse-grained (per-period DBN analysis) and
fine-grained (per-slot scheduling) procedures on the physical node at
93.5 kHz — 14.6 s / 3.0 mW and 3.47 s / 2.94 mW respectively — and
reports that the algorithm costs less than 3% of the node's total
energy.  Without the silicon we reproduce this with an operation-count
model: count the multiply-accumulates / comparisons of each procedure,
convert to cycles with a software-arithmetic factor, and scale by the
node clock and core power.
"""

from __future__ import annotations

import dataclasses

from ..sim.recorder import SimulationResult
from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from .ann.dbn import DBN

__all__ = ["OverheadModel", "OverheadReport"]


@dataclasses.dataclass(frozen=True)
class OverheadReport:
    """Per-execution and aggregate cost of the online algorithm."""

    coarse_seconds: float
    coarse_power: float
    fine_seconds: float
    fine_power: float
    energy_per_day: float
    relative_overhead: float

    @property
    def coarse_energy(self) -> float:
        """Energy of one coarse pass, joules."""
        return self.coarse_seconds * self.coarse_power

    @property
    def fine_energy(self) -> float:
        """Energy of one period's fine pass, joules."""
        return self.fine_seconds * self.fine_power


@dataclasses.dataclass(frozen=True)
class OverheadModel:
    """Cost model of the on-node scheduler implementation.

    Parameters
    ----------
    clock_hz:
        Node clock; the paper's NVP runs at 93.5 kHz.
    cycles_per_mac:
        Software fixed-point multiply-accumulate cost on the NVP.
    cycles_per_compare:
        Cost of a compare/branch step in the fine pass.
    coarse_power / fine_power:
        Core power while running each procedure (the paper measures
        3.0 mW and 2.94 mW).
    """

    clock_hz: float = 93.5e3
    cycles_per_mac: int = 64
    cycles_per_compare: int = 12
    coarse_power: float = 3.0e-3
    fine_power: float = 2.94e-3
    #: fixed per-period bookkeeping cycles (I/O, normalisation).
    coarse_fixed_cycles: int = 20_000
    #: fixed per-slot bookkeeping cycles.
    fine_fixed_cycles: int = 400

    def __post_init__(self) -> None:
        if not self.clock_hz > 0:
            raise ValueError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.cycles_per_mac < 1 or self.cycles_per_compare < 1:
            raise ValueError("cycle costs must be >= 1")

    # ------------------------------------------------------------------
    def coarse_seconds(self, dbn: DBN) -> float:
        """Runtime of one coarse (DBN) pass on the node."""
        cycles = dbn.mac_count() * self.cycles_per_mac + self.coarse_fixed_cycles
        return cycles / self.clock_hz

    def fine_ops_per_slot(self, graph: TaskGraph) -> int:
        """Comparison count of one fine-grained slot decision.

        Sorting the ready set (n log n), the per-NVP filter (n), the
        urgency tests (n) and the subset enumeration of the load match
        (bounded by 2^n for the paper's n ≤ 8 tasks).
        """
        n = max(len(graph), 1)
        sort_ops = int(n * max(n - 1, 1))
        match_ops = 2 ** min(n, 12)
        return sort_ops + 2 * n + match_ops

    def fine_seconds(self, graph: TaskGraph, timeline: Timeline) -> float:
        """Runtime of one period's fine-grained pass."""
        per_slot = (
            self.fine_ops_per_slot(graph) * self.cycles_per_compare
            + self.fine_fixed_cycles
        )
        return per_slot * timeline.slots_per_period / self.clock_hz

    # ------------------------------------------------------------------
    def report(
        self,
        dbn: DBN,
        graph: TaskGraph,
        timeline: Timeline,
        result: SimulationResult,
    ) -> OverheadReport:
        """Overhead against a simulated deployment's energy budget."""
        coarse_s = self.coarse_seconds(dbn)
        fine_s = self.fine_seconds(graph, timeline)
        per_period = (
            coarse_s * self.coarse_power + fine_s * self.fine_power
        )
        per_day = per_period * timeline.periods_per_day
        total_overhead = per_period * timeline.total_periods
        workload = result.total_load_energy
        denom = workload + total_overhead
        relative = total_overhead / denom if denom > 0 else 0.0
        return OverheadReport(
            coarse_seconds=coarse_s,
            coarse_power=self.coarse_power,
            fine_seconds=fine_s,
            fine_power=self.fine_power,
            energy_per_day=per_day,
            relative_overhead=relative,
        )
