"""Deep belief network (Figure 6 of the paper).

Greedy layerwise RBM pretraining extracts features from the inputs
(last period's solar shape, capacitor voltages, accumulated DMR); a
multi-head backpropagation network on top produces the outputs
(capacitor of the day, scheduling-pattern index α, tasks to execute).
``fit`` runs both phases; ``predict`` is the online forward pass the
node executes each period.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .network import HeadSpec, MultiHeadMLP
from .rbm import RBM

__all__ = ["DBN"]


class DBN:
    """Stacked-RBM pretrained, backprop fine-tuned network.

    Parameters
    ----------
    input_size:
        Width of the (normalised) input vector.
    hidden_sizes:
        Sizes of the hidden feature layers (each pretrained as an RBM).
    heads:
        Output layout (capacitor classes, α, task bits).
    seed:
        Reproducible initialisation/sampling.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        heads: HeadSpec,
        seed: int = 0,
    ) -> None:
        self.input_size = input_size
        self.hidden_sizes = tuple(hidden_sizes)
        self.heads = heads
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.network = MultiHeadMLP(
            input_size, hidden_sizes, heads, rng=np.random.default_rng(seed + 1)
        )
        self.rbms: List[RBM] = []
        self.pretrain_errors: List[np.ndarray] = []
        self.finetune_losses: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def pretrain(
        self,
        x: np.ndarray,
        epochs: int = 15,
        learning_rate: float = 0.05,
        batch_size: int = 32,
    ) -> None:
        """Greedy layerwise unsupervised pretraining."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ValueError(
                f"x must be (samples, {self.input_size}), got {x.shape}"
            )
        self.rbms = []
        self.pretrain_errors = []
        representation = x
        fan_in = self.input_size
        for i, width in enumerate(self.hidden_sizes):
            rbm = RBM(fan_in, width, rng=np.random.default_rng(self.seed + 10 + i))
            errs = rbm.train(
                representation,
                epochs=epochs,
                learning_rate=learning_rate,
                batch_size=batch_size,
            )
            self.rbms.append(rbm)
            self.pretrain_errors.append(errs)
            representation = rbm.hidden_probs(representation)
            fan_in = width
        self.network.load_pretrained(self.rbms)

    def finetune(
        self,
        x: np.ndarray,
        cap_targets: np.ndarray,
        alpha_targets: np.ndarray,
        te_targets: np.ndarray,
        epochs: int = 150,
        learning_rate: float = 0.05,
        batch_size: int = 32,
    ) -> None:
        """Supervised backprop on the full network."""
        self.finetune_losses = self.network.train(
            x,
            cap_targets,
            alpha_targets,
            te_targets,
            epochs=epochs,
            learning_rate=learning_rate,
            batch_size=batch_size,
        )

    def fit(
        self,
        x: np.ndarray,
        cap_targets: np.ndarray,
        alpha_targets: np.ndarray,
        te_targets: np.ndarray,
        pretrain_epochs: int = 15,
        finetune_epochs: int = 150,
    ) -> None:
        """Pretrain + fine-tune in one call."""
        self.pretrain(x, epochs=pretrain_epochs)
        self.finetune(
            x, cap_targets, alpha_targets, te_targets, epochs=finetune_epochs
        )

    # ------------------------------------------------------------------
    def predict(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(cap_probs, alpha, te_probs)`` — see MultiHeadMLP."""
        return self.network.predict(x)

    def predict_one(
        self, x: np.ndarray
    ) -> Tuple[int, float, np.ndarray]:
        """Decision for a single input: (capacitor, α, te bits)."""
        cap_probs, alpha, te_probs = self.predict(np.atleast_2d(x))
        return (
            int(np.argmax(cap_probs[0])),
            float(alpha[0]),
            te_probs[0] >= 0.5,
        )

    # ------------------------------------------------------------------
    def mac_count(self) -> int:
        """Multiply-accumulate operations of one forward pass.

        Used by the overhead model (Section 6.5): the on-node cost of
        the coarse-grained analysis is dominated by these MACs.
        """
        sizes = [self.input_size, *self.hidden_sizes, self.heads.output_size]
        return int(sum(a * b for a, b in zip(sizes[:-1], sizes[1:])))
