"""From-scratch numpy ANN substrate: RBM, multi-head BPN, DBN."""

from .rbm import RBM
from .network import HeadSpec, MultiHeadMLP
from .dbn import DBN

__all__ = ["RBM", "HeadSpec", "MultiHeadMLP", "DBN"]
