"""Restricted Boltzmann machine with contrastive divergence.

Building block of the paper's deep belief network (Figure 6): the
hidden layers "extract the features of the inputs by unsupervised
learning" on stacked RBMs.  Implemented from scratch on numpy:
Bernoulli hidden units, real-valued [0, 1] visible units (inputs are
normalised physical quantities), CD-k training with momentum and
weight decay.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RBM"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class RBM:
    """Bernoulli-Bernoulli RBM (visible units may be probabilities).

    Parameters
    ----------
    num_visible / num_hidden:
        Layer sizes.
    rng:
        Numpy generator for reproducible init and sampling.
    """

    def __init__(
        self,
        num_visible: int,
        num_hidden: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_visible < 1 or num_hidden < 1:
            raise ValueError("layer sizes must be >= 1")
        self.num_visible = num_visible
        self.num_hidden = num_hidden
        self.rng = rng or np.random.default_rng(0)
        scale = 0.1 / np.sqrt(num_visible)
        self.weights = self.rng.normal(0.0, scale, (num_visible, num_hidden))
        self.visible_bias = np.zeros(num_visible)
        self.hidden_bias = np.zeros(num_hidden)

    # ------------------------------------------------------------------
    def hidden_probs(self, visible: np.ndarray) -> np.ndarray:
        """``P(h=1 | v)`` for a batch of visible vectors."""
        return _sigmoid(visible @ self.weights + self.hidden_bias)

    def visible_probs(self, hidden: np.ndarray) -> np.ndarray:
        """``P(v=1 | h)`` for a batch of hidden vectors."""
        return _sigmoid(hidden @ self.weights.T + self.visible_bias)

    def sample_hidden(self, visible: np.ndarray) -> np.ndarray:
        """Bernoulli sample of the hidden units given ``visible``."""
        probs = self.hidden_probs(visible)
        return (self.rng.random(probs.shape) < probs).astype(float)

    # ------------------------------------------------------------------
    def train(
        self,
        data: np.ndarray,
        epochs: int = 20,
        learning_rate: float = 0.05,
        batch_size: int = 32,
        cd_steps: int = 1,
        momentum: float = 0.5,
        weight_decay: float = 1e-4,
    ) -> np.ndarray:
        """CD-k training; returns per-epoch reconstruction errors."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != self.num_visible:
            raise ValueError(
                f"data must be (samples, {self.num_visible}), got {data.shape}"
            )
        if epochs < 1 or batch_size < 1 or cd_steps < 1:
            raise ValueError("epochs, batch_size, cd_steps must be >= 1")
        n = len(data)
        vel_w = np.zeros_like(self.weights)
        vel_vb = np.zeros_like(self.visible_bias)
        vel_hb = np.zeros_like(self.hidden_bias)
        errors = np.zeros(epochs)

        for epoch in range(epochs):
            order = self.rng.permutation(n)
            recon_err = 0.0
            for start in range(0, n, batch_size):
                batch = data[order[start : start + batch_size]]
                pos_h = self.hidden_probs(batch)
                pos_assoc = batch.T @ pos_h

                h = (self.rng.random(pos_h.shape) < pos_h).astype(float)
                v = batch
                for _ in range(cd_steps):
                    v = self.visible_probs(h)
                    neg_h = self.hidden_probs(v)
                    h = (self.rng.random(neg_h.shape) < neg_h).astype(float)
                neg_assoc = v.T @ neg_h

                m = len(batch)
                grad_w = (pos_assoc - neg_assoc) / m - weight_decay * self.weights
                grad_vb = (batch - v).mean(axis=0)
                grad_hb = (pos_h - neg_h).mean(axis=0)

                vel_w = momentum * vel_w + learning_rate * grad_w
                vel_vb = momentum * vel_vb + learning_rate * grad_vb
                vel_hb = momentum * vel_hb + learning_rate * grad_hb
                self.weights += vel_w
                self.visible_bias += vel_vb
                self.hidden_bias += vel_hb

                recon_err += float(((batch - v) ** 2).sum())
            errors[epoch] = recon_err / n
        return errors
