"""Multi-head backpropagation network (the DBN's "visible layers").

The paper's DBN computes its outputs "by a back propagation network"
sitting on top of the pretrained feature layers.  The outputs mix
types — a categorical capacitor choice ``C_{h,i}``, a scalar pattern
index ``α`` and per-task execution bits ``te`` — so the network has
three heads sharing the hidden stack:

* softmax head (cross-entropy) for the capacitor;
* linear head (squared error) for α;
* sigmoid head (binary cross-entropy) for the task bits.

All three losses have the convenient ``delta = prediction - target``
form, so backpropagation through the shared trunk is uniform.
Implemented from scratch on numpy with mini-batch SGD + momentum.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .rbm import RBM

__all__ = ["HeadSpec", "MultiHeadMLP"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _softmax(x: np.ndarray) -> np.ndarray:
    z = x - x.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@dataclasses.dataclass(frozen=True)
class HeadSpec:
    """Output layout: capacitor classes, one α scalar, task bits."""

    num_capacitors: int
    num_tasks: int
    alpha_weight: float = 0.5
    te_weight: float = 1.0
    cap_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.num_capacitors < 1 or self.num_tasks < 1:
            raise ValueError("head sizes must be >= 1")

    @property
    def output_size(self) -> int:
        """Total output width across the three heads."""
        return self.num_capacitors + 1 + self.num_tasks


class MultiHeadMLP:
    """Sigmoid-hidden MLP with softmax/linear/sigmoid heads."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        heads: HeadSpec,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if input_size < 1:
            raise ValueError(f"input_size must be >= 1, got {input_size}")
        if not hidden_sizes:
            raise ValueError("need at least one hidden layer")
        self.input_size = input_size
        self.hidden_sizes = tuple(hidden_sizes)
        self.heads = heads
        self.rng = rng or np.random.default_rng(0)

        sizes = [input_size, *hidden_sizes, heads.output_size]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(
                self.rng.normal(0.0, scale, (fan_in, fan_out))
            )
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    def load_pretrained(self, rbms: Sequence[RBM]) -> None:
        """Initialise hidden layers from a greedy RBM stack."""
        if len(rbms) > len(self.hidden_sizes):
            raise ValueError(
                f"{len(rbms)} RBMs for {len(self.hidden_sizes)} hidden layers"
            )
        for i, rbm in enumerate(rbms):
            if rbm.weights.shape != self.weights[i].shape:
                raise ValueError(
                    f"RBM {i} shape {rbm.weights.shape} does not match "
                    f"layer shape {self.weights[i].shape}"
                )
            self.weights[i] = rbm.weights.copy()
            self.biases[i] = rbm.hidden_bias.copy()

    # ------------------------------------------------------------------
    def _forward(
        self, x: np.ndarray
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Hidden activations (post-sigmoid) and raw output logits."""
        activations = [x]
        a = x
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            a = _sigmoid(a @ w + b)
            activations.append(a)
        logits = a @ self.weights[-1] + self.biases[-1]
        return activations, logits

    def _split(
        self, logits: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        h = self.heads.num_capacitors
        cap = _softmax(logits[:, :h])
        alpha = logits[:, h : h + 1]
        te = _sigmoid(logits[:, h + 1 :])
        return cap, alpha, te

    def predict(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(cap_probs, alpha, te_probs)`` for a batch (or one row)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.input_size:
            raise ValueError(
                f"input width {x.shape[1]} != expected {self.input_size}"
            )
        _, logits = self._forward(x)
        cap, alpha, te = self._split(logits)
        return cap, alpha[:, 0], te

    # ------------------------------------------------------------------
    def train(
        self,
        x: np.ndarray,
        cap_targets: np.ndarray,
        alpha_targets: np.ndarray,
        te_targets: np.ndarray,
        epochs: int = 100,
        learning_rate: float = 0.05,
        batch_size: int = 32,
        momentum: float = 0.8,
        weight_decay: float = 1e-4,
    ) -> np.ndarray:
        """Mini-batch SGD; returns the per-epoch mean total loss."""
        x = np.asarray(x, dtype=float)
        n = len(x)
        if n == 0:
            raise ValueError("no training samples")
        cap_targets = np.asarray(cap_targets, dtype=int)
        alpha_targets = np.asarray(alpha_targets, dtype=float)
        te_targets = np.asarray(te_targets, dtype=float)
        if len(cap_targets) != n or len(alpha_targets) != n or len(
            te_targets
        ) != n:
            raise ValueError("target lengths must match the inputs")

        h = self.heads.num_capacitors
        cap_onehot = np.zeros((n, h))
        cap_onehot[np.arange(n), cap_targets] = 1.0

        vel_w = [np.zeros_like(w) for w in self.weights]
        vel_b = [np.zeros_like(b) for b in self.biases]
        losses = np.zeros(epochs)

        for epoch in range(epochs):
            order = self.rng.permutation(n)
            total = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb = x[idx]
                acts, logits = self._forward(xb)
                cap, alpha, te = self._split(logits)

                m = len(idx)
                d_cap = (cap - cap_onehot[idx]) * self.heads.cap_weight
                d_alpha = (
                    (alpha[:, 0] - alpha_targets[idx])[:, None]
                    * self.heads.alpha_weight
                )
                d_te = (te - te_targets[idx]) * self.heads.te_weight
                delta = np.concatenate([d_cap, d_alpha, d_te], axis=1) / m

                eps = 1e-12
                total += float(
                    -self.heads.cap_weight
                    * (cap_onehot[idx] * np.log(cap + eps)).sum()
                    + 0.5
                    * self.heads.alpha_weight
                    * ((alpha[:, 0] - alpha_targets[idx]) ** 2).sum()
                    - self.heads.te_weight
                    * (
                        te_targets[idx] * np.log(te + eps)
                        + (1 - te_targets[idx]) * np.log(1 - te + eps)
                    ).sum()
                )

                # Backprop through the shared trunk.
                grads_w = [np.zeros_like(w) for w in self.weights]
                grads_b = [np.zeros_like(b) for b in self.biases]
                grads_w[-1] = acts[-1].T @ delta
                grads_b[-1] = delta.sum(axis=0)
                back = delta @ self.weights[-1].T
                for layer in range(len(self.weights) - 2, -1, -1):
                    a = acts[layer + 1]
                    back = back * a * (1.0 - a)
                    grads_w[layer] = acts[layer].T @ back
                    grads_b[layer] = back.sum(axis=0)
                    if layer > 0:
                        back = back @ self.weights[layer].T

                for layer in range(len(self.weights)):
                    grads_w[layer] += weight_decay * self.weights[layer]
                    vel_w[layer] = (
                        momentum * vel_w[layer]
                        - learning_rate * grads_w[layer]
                    )
                    vel_b[layer] = (
                        momentum * vel_b[layer]
                        - learning_rate * grads_b[layer]
                    )
                    self.weights[layer] += vel_w[layer]
                    self.biases[layer] += vel_b[layer]
            losses[epoch] = total / n
        return losses
