"""The offline stage (Figure 4, left): sizing → DP → DBN training.

:class:`OfflinePipeline` runs the paper's three offline steps on a
*training* solar trace (historical data in deployment):

1. **capacitor sizing** (Section 4.1) — per-day migration profiles
   under an ASAP schedule, per-day optimal capacities, clustering into
   ``H`` bank values;
2. **long-term DMR optimisation** (Section 4.2) — the DP of
   :class:`~repro.core.longterm.LongTermOptimizer` over the training
   trace, producing the optimal per-period DMR / per-day capacitor
   samples;
3. **DBN training** — greedy RBM pretraining plus supervised
   fine-tuning on those samples.

The result is a :class:`TrainedPolicy` that can build matching nodes
and online schedulers for deployment traces.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..energy.sizing import DEFAULT_CANDIDATES, migration_series, size_bank
from ..node.node import SensorNode
from ..solar.panel import SolarPanel
from ..solar.trace import SolarTrace
from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from .ann.dbn import DBN
from .ann.network import HeadSpec
from .features import FeatureCodec
from .longterm import (
    DPConfig,
    LongTermOptimizer,
    LongTermPlan,
    TrainingSample,
    trace_period_matrix,
)
from .online import DBNPolicy, ProposedScheduler
from .period_profile import build_schedule_matrix

__all__ = ["OfflinePipeline", "TrainedPolicy", "asap_load_profile"]


def asap_load_profile(graph: TaskGraph, timeline: Timeline) -> np.ndarray:
    """Per-slot load power (W) of one period under the ASAP rule.

    Section 4.1 extracts the migration pattern from an ASAP schedule;
    this is that schedule's load, assuming energy is never the
    constraint (solar treated as unlimited during construction).
    """
    unlimited = np.full(timeline.slots_per_period, np.inf)
    subset = np.ones(len(graph), dtype=bool)
    matrix, _ = build_schedule_matrix(
        graph, timeline, unlimited, subset, direct_efficiency=1.0
    )
    powers = np.array([t.power for t in graph.tasks])
    return matrix @ powers


@dataclasses.dataclass
class TrainedPolicy:
    """Everything the deployed node needs from the offline stage."""

    graph: TaskGraph
    timeline: Timeline
    capacitors: Tuple[SuperCapacitor, ...]
    dbn: DBN
    codec: FeatureCodec
    samples: List[TrainingSample]
    training_plan: LongTermPlan
    delta: float = 0.5
    switch_threshold: float = 2.0

    def make_scheduler(self, name: str = "proposed") -> ProposedScheduler:
        """The online scheduler backed by the trained DBN."""
        return ProposedScheduler(
            DBNPolicy(self.dbn, self.codec), delta=self.delta, name=name
        )

    def make_node(
        self, panel: Optional[SolarPanel] = None, **node_kwargs
    ) -> SensorNode:
        """A node with the sized bank and the trained ``E_th``."""
        node_kwargs.setdefault("switch_threshold", self.switch_threshold)
        return SensorNode(
            list(self.capacitors),
            num_nvps=self.graph.num_nvps,
            panel=panel,
            **node_kwargs,
        )


class OfflinePipeline:
    """Run sizing + long-term optimisation + DBN training."""

    def __init__(
        self,
        graph: TaskGraph,
        num_capacitors: int = 4,
        candidates: Sequence[float] = DEFAULT_CANDIDATES,
        hidden_sizes: Sequence[int] = (64, 32),
        dp_config: Optional[DPConfig] = None,
        delta: float = 0.5,
        switch_threshold: float = 2.0,
        pretrain_epochs: int = 10,
        finetune_epochs: int = 300,
        augment_per_period: int = 2,
        seed: int = 0,
    ) -> None:
        if num_capacitors < 1:
            raise ValueError(
                f"num_capacitors must be >= 1, got {num_capacitors}"
            )
        self.graph = graph
        self.num_capacitors = num_capacitors
        self.candidates = tuple(candidates)
        self.hidden_sizes = tuple(hidden_sizes)
        self.dp_config = dp_config or DPConfig()
        self.delta = delta
        self.switch_threshold = switch_threshold
        self.pretrain_epochs = pretrain_epochs
        self.finetune_epochs = finetune_epochs
        self.augment_per_period = augment_per_period
        self.seed = seed

    # ------------------------------------------------------------------
    def size_capacitors(self, trace: SolarTrace) -> List[SuperCapacitor]:
        """Section 4.1 on the training trace."""
        tl = trace.timeline
        load_one_period = asap_load_profile(self.graph, tl)
        load_day = np.tile(load_one_period, tl.periods_per_day)
        daily_delta_e = []
        weights = []
        for day in range(tl.num_days):
            solar_day = trace.power[day].reshape(-1)
            daily_delta_e.append(
                migration_series(solar_day, load_day, tl.slot_seconds)
            )
            weights.append(trace.daily_energy(day))
        return size_bank(
            daily_delta_e,
            tl.slot_seconds,
            num_capacitors=self.num_capacitors,
            candidates=self.candidates,
            daily_weights=weights,
        )

    # ------------------------------------------------------------------
    def cache_key(
        self, training_trace: SolarTrace, panel: Optional[SolarPanel] = None
    ) -> str:
        """Content digest of everything :meth:`run`'s output depends on."""
        from ..perf.cache import describe_graph, hash_key, trace_digest

        panel = panel or SolarPanel()
        cfg = self.dp_config
        return hash_key(
            {
                "artifact": "trained-policy",
                "graph": describe_graph(self.graph),
                "num_capacitors": self.num_capacitors,
                "candidates": list(self.candidates),
                "hidden_sizes": list(self.hidden_sizes),
                "dp_config": [
                    cfg.energy_buckets,
                    cfg.switch_threshold,
                    cfg.energy_tiebreak,
                ],
                "delta": self.delta,
                "switch_threshold": self.switch_threshold,
                "pretrain_epochs": self.pretrain_epochs,
                "finetune_epochs": self.finetune_epochs,
                "augment_per_period": self.augment_per_period,
                "seed": self.seed,
                "panel_peak_power": panel.peak_power,
                "trace": trace_digest(training_trace),
            }
        )

    # ------------------------------------------------------------------
    def run(
        self,
        training_trace: SolarTrace,
        panel: Optional[SolarPanel] = None,
        cache=None,
    ) -> TrainedPolicy:
        """Full offline stage; returns the deployable policy.

        When an :class:`~repro.perf.cache.ArtifactCache` is supplied,
        the trained policy is loaded from (or stored into) the cache
        under :meth:`cache_key`, skipping sizing, the DP and DBN
        training entirely on a hit.  With an ambient tracer active
        the three stages get ``sizing`` / ``longterm_dp`` /
        ``dbn_train`` spans under one ``offline_pipeline`` parent.
        """
        from ..obs.trace import current_tracer

        tracer = current_tracer()
        with tracer.span(
            "offline_pipeline",
            attrs={
                "graph": self.graph.name,
                "train_days": training_trace.timeline.num_days,
            },
        ) as root:
            digest = None
            if cache is not None:
                digest = self.cache_key(training_trace, panel)
                cached = cache.get("policy", digest)
                if cached is not None:
                    root.annotate(cache_hit=True)
                    return cached
            tl = training_trace.timeline
            with tracer.span("sizing"):
                capacitors = self.size_capacitors(training_trace)

            optimizer = LongTermOptimizer(
                self.graph,
                tl,
                capacitors,
                config=dataclasses.replace(
                    self.dp_config, switch_threshold=self.switch_threshold
                ),
            )
            with tracer.span("longterm_dp"):
                plan = optimizer.optimize(
                    trace_period_matrix(training_trace),
                    extract_matrices=False,
                    augment_per_period=self.augment_per_period,
                    augment_seed=self.seed + 1,
                )

            panel = panel or SolarPanel()
            codec = FeatureCodec(
                slots_per_period=tl.slots_per_period,
                capacitors=tuple(capacitors),
                solar_scale=max(panel.peak_power, 1e-9),
            )
            x, caps, alphas, tes = codec.encode_samples(plan.samples)
            heads = HeadSpec(
                num_capacitors=len(capacitors), num_tasks=len(self.graph)
            )
            dbn = DBN(
                input_size=codec.input_size,
                hidden_sizes=self.hidden_sizes,
                heads=heads,
                seed=self.seed,
            )
            with tracer.span(
                "dbn_train",
                attrs={
                    "samples": len(plan.samples),
                    "pretrain_epochs": self.pretrain_epochs,
                    "finetune_epochs": self.finetune_epochs,
                },
            ):
                dbn.fit(
                    x,
                    caps,
                    alphas,
                    tes,
                    pretrain_epochs=self.pretrain_epochs,
                    finetune_epochs=self.finetune_epochs,
                )

        policy = TrainedPolicy(
            graph=self.graph,
            timeline=tl,
            capacitors=tuple(capacitors),
            dbn=dbn,
            codec=codec,
            samples=plan.samples,
            training_plan=plan,
            delta=self.delta,
            switch_threshold=self.switch_threshold,
        )
        if cache is not None and digest is not None:
            cache.put("policy", digest, policy)
        return policy
