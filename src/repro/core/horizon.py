"""Receding-horizon long-term scheduling with predicted solar.

Figure 10(a) of the paper studies DMR and complexity as a function of
the *solar prediction length*.  This scheduler makes that experiment
concrete: every ``replan_every`` periods it predicts the next
``horizon_periods`` of solar energy with a causal predictor, runs the
long-term DP (:class:`~repro.core.longterm.LongTermOptimizer`) on the
predicted window starting from the node's *actual* storage state, and
executes the head of the plan with the same fine-grained pass as the
proposed scheduler.

Longer horizons see further (better night coverage) but lean on
increasingly wrong predictions — reproducing the paper's balance
point — and the number of DP transitions evaluated grows with the
horizon, reproducing the complexity axis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..schedulers.base import Scheduler
from ..sim.views import PeriodEndView, PeriodStartView, SlotView
from ..solar.prediction import SolarPredictor, WCMAPredictor
from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from .longterm import DPConfig, LongTermOptimizer
from .online import close_subset, fine_grained_decision

__all__ = ["RecedingHorizonScheduler"]


class RecedingHorizonScheduler(Scheduler):
    """Plan with the long-term DP over a predicted solar window."""

    name = "receding-horizon"

    def __init__(
        self,
        capacitors: Sequence[SuperCapacitor],
        horizon_periods: int,
        replan_every: int = 6,
        predictor: Optional[SolarPredictor] = None,
        delta: float = 0.5,
        config: Optional[DPConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        """
        Parameters
        ----------
        capacitors:
            Must match the node's bank (order included).
        horizon_periods:
            Prediction length in periods (the Figure 10(a) x-axis).
        replan_every:
            Re-run the DP every this many periods; in between, the
            cached plan head is executed.
        predictor:
            Causal per-period energy predictor (WCMA by default).
        delta:
            δ for the intra/inter fine-pass selection.
        """
        if horizon_periods < 1:
            raise ValueError(
                f"horizon_periods must be >= 1, got {horizon_periods}"
            )
        if replan_every < 1:
            raise ValueError(f"replan_every must be >= 1, got {replan_every}")
        self.capacitors = tuple(capacitors)
        self.horizon_periods = horizon_periods
        self.replan_every = replan_every
        self.delta = delta
        self.config = config or DPConfig(energy_buckets=61)
        self._predictor_arg = predictor
        if name is not None:
            self.name = name

        self.predictor: Optional[SolarPredictor] = None
        self.optimizer: Optional[LongTermOptimizer] = None
        self.transitions_evaluated = 0
        self._since_replan = 0
        self._plan_k: List[np.ndarray] = []
        self._plan_alpha: List[float] = []
        self._plan_cap = 0
        self._selected: Set[int] = set()
        self._intra_mode = True

    # ------------------------------------------------------------------
    def bind(self, timeline: Timeline, graph: TaskGraph) -> None:
        super().bind(timeline, graph)
        self.predictor = self._predictor_arg or WCMAPredictor(timeline)
        self.optimizer = LongTermOptimizer(
            graph, timeline, self.capacitors, config=self.config
        )
        self.transitions_evaluated = 0
        self._since_replan = 0
        self._plan_k = []
        self._plan_alpha = []

    # ------------------------------------------------------------------
    def _replan(self, view: PeriodStartView) -> None:
        assert self.predictor is not None and self.optimizer is not None
        tl = view.timeline
        energies = self.predictor.predict_horizon(
            view.day, view.period, self.horizon_periods
        )
        if len(energies) == 0:
            self._plan_k = []
            self._plan_alpha = []
            return
        # Spread each predicted period energy uniformly over its slots.
        per_slot = energies / (tl.slots_per_period * tl.slot_seconds)
        matrix = np.repeat(
            per_slot[:, None], tl.slots_per_period, axis=1
        )
        start_cap = view.bank.active_index
        start_usable = view.bank.active_usable_energy
        plan = self.optimizer.optimize(
            matrix,
            start_cap=start_cap,
            start_usable=start_usable,
            periods_per_day=self.replan_every,
            extract_matrices=False,
        )
        self.transitions_evaluated += plan.transitions_evaluated
        profiles = self.optimizer.profiler.profile_many(matrix)
        self._plan_k = [
            profiles[t].subsets[plan.chosen_k[t]]
            for t in range(len(plan.chosen_k))
        ]
        self._plan_alpha = [
            float(
                np.clip(
                    profiles[t].alpha[plan.chosen_k[t]]
                    if plan.chosen_k[t] > 0
                    else 0.0,
                    0.0,
                    LongTermOptimizer.ALPHA_CLIP,
                )
            )
            for t in range(len(plan.chosen_k))
        ]
        self._plan_cap = int(plan.capacitor_by_day[0])

    def on_period_start(self, view: PeriodStartView) -> None:
        if self._since_replan % self.replan_every == 0 or not self._plan_k:
            self._replan(view)
            self._since_replan = 0
        offset = self._since_replan
        self._since_replan += 1
        if not self._plan_k:
            self._selected = set(range(len(view.graph)))
            self._intra_mode = True
            return
        offset = min(offset, len(self._plan_k) - 1)
        te = close_subset(view.graph, self._plan_k[offset])
        self._selected = set(np.flatnonzero(te).tolist())
        alpha = self._plan_alpha[offset]
        self._intra_mode = abs(1.0 - alpha) <= self.delta
        view.request_capacitor(self._plan_cap)

    def on_slot(self, view: SlotView) -> Sequence[int]:
        return fine_grained_decision(view, self._selected, self._intra_mode)

    def on_period_end(self, view: PeriodEndView) -> None:
        assert self.predictor is not None
        self.predictor.observe(view.day, view.period, view.observed_energy)
