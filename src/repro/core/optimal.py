"""The static optimal upper bound (Section 4.2 / Figure 8 "Optimal").

The paper's "Optimal" is the offline long-term optimisation evaluated
with the *given* (true) solar power.  Two replay styles are offered:

* :class:`~repro.schedulers.plan.PlanScheduler` executes the DP's
  explicit slot matrices verbatim — faithful to the formulation but
  brittle when the engine's physics deviates from the fluid planning
  model mid-period;
* :class:`StaticOptimalScheduler` (this module, used in the figures)
  takes the DP's *coarse* decisions — the per-period task subset
  ``te``, the pattern index α, and the per-day capacitor — and runs
  the same adaptive fine-grained pass as the proposed scheduler.  This
  is exactly "the proposed online algorithm with an oracle coarse
  stage", the tightest upper bound in the proposed family.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from ..schedulers.base import Scheduler
from ..sim.views import PeriodStartView, SlotView
from .longterm import LongTermPlan
from .online import close_subset, fine_grained_decision

__all__ = ["StaticOptimalScheduler"]


class StaticOptimalScheduler(Scheduler):
    """Replay DP coarse decisions with the adaptive fine pass."""

    name = "optimal"

    def __init__(
        self,
        plan: LongTermPlan,
        delta: float = 0.5,
        name: Optional[str] = None,
    ) -> None:
        if plan.te_by_period.size == 0:
            raise ValueError(
                "plan has no per-period subsets; run LongTermOptimizer."
                "optimize on the evaluation trace first"
            )
        self.plan = plan
        self.delta = delta
        if name is not None:
            self.name = name
        self._selected: Set[int] = set()
        self._intra_mode = True

    def on_period_start(self, view: PeriodStartView) -> None:
        t = view.timeline.flat_period(view.day, view.period)
        if t >= len(self.plan.te_by_period):
            self._selected = set(range(len(view.graph)))
            self._intra_mode = True
            return
        te = close_subset(view.graph, self.plan.te_by_period[t])
        self._selected = set(np.flatnonzero(te).tolist())
        alpha = float(self.plan.alpha_by_period[t])
        self._intra_mode = abs(1.0 - alpha) <= self.delta
        if view.day < len(self.plan.capacitor_by_day):
            view.force_capacitor(int(self.plan.capacitor_by_day[view.day]))

    def on_slot(self, view: SlotView) -> Sequence[int]:
        return fine_grained_decision(view, self._selected, self._intra_mode)
