"""Offline long-term DMR optimisation (Section 4.2 of the paper).

The paper replaces the intractable INLP with per-period DMR variables
``DMR_{i,j}`` and per-day capacitor choices ``C_{h,i}`` resolved
through a per-period LUT (Eq. 12–18).  That structure is exactly a
shortest-path problem over storage states, which we solve as a dynamic
program:

* **state** — which capacitor is active and how much usable energy it
  holds (discretised into buckets; idle capacitors are approximated as
  drained, which the Eq. (22) switching rule makes nearly true);
* **action** — per period, the number of tasks to complete ``k``
  (equivalently the period DMR ``(N-k)/N``), realised by the cheapest
  dependence-closed subset from :class:`PeriodProfiler`; per day
  boundary, an optional capacitor switch (allowed when the active
  capacitor is nearly drained, mirroring Eq. 22);
* **transition** — capacitor physics: discharge for the subset's
  storage need, charge with the leftover surplus, leak for the period;
* **cost** — the period DMR, with a tiny energy tie-break so equal-DMR
  plans prefer the one consuming the least storage (Eq. 15).

Solved backward over the horizon it yields the *static optimal*
schedule used as the paper's upper bound; its forward extraction
produces the explicit plan (for engine replay) and the training
samples for the DBN.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..schedulers.plan import SchedulePlan
from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from .period_profile import PeriodProfiler, build_schedule_matrix

__all__ = [
    "DPConfig",
    "StorageGrid",
    "TrainingSample",
    "LongTermPlan",
    "LongTermOptimizer",
    "trace_period_matrix",
]


def trace_period_matrix(trace) -> np.ndarray:
    """Flatten a :class:`~repro.solar.trace.SolarTrace` to
    ``(total_periods, slots_per_period)``."""
    tl = trace.timeline
    return trace.power.reshape(tl.total_periods, tl.slots_per_period)


@dataclasses.dataclass(frozen=True)
class DPConfig:
    """Tuning knobs of the long-term DP.

    Buckets round *down* (pessimistic): the DP can never conjure
    storage energy out of discretisation, at the price of losing up to
    one bucket of energy per period, so keep buckets fine relative to
    the per-period demand.
    """

    energy_buckets: int = 241
    switch_threshold: float = 2.0  # E_th (J) for day-boundary switches
    energy_tiebreak: float = 1e-9  # cost per joule drawn (Eq. 15 tie-break)

    def __post_init__(self) -> None:
        if self.energy_buckets < 2:
            raise ValueError(
                f"energy_buckets must be >= 2, got {self.energy_buckets}"
            )
        if self.switch_threshold < 0:
            raise ValueError("switch_threshold must be >= 0")
        if self.energy_tiebreak < 0:
            raise ValueError("energy_tiebreak must be >= 0")


class StorageGrid:
    """Discretised (capacitor, usable-energy) state space."""

    def __init__(
        self, capacitors: Sequence[SuperCapacitor], buckets: int
    ) -> None:
        if not capacitors:
            raise ValueError("need at least one capacitor")
        if buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        self.capacitors = tuple(capacitors)
        self.buckets = buckets
        h = len(capacitors)
        self.num_states = h * buckets

        cap_idx = np.repeat(np.arange(h), buckets)
        frac = np.tile(np.linspace(0.0, 1.0, buckets), h)
        usable_caps = np.array([c.usable_capacity for c in capacitors])
        floor_e = np.array(
            [c.energy_at(c.v_cutoff) for c in capacitors]
        )
        self.state_cap = cap_idx
        self.state_usable = frac * usable_caps[cap_idx]
        self.state_energy = floor_e[cap_idx] + self.state_usable
        caps_f = np.array([c.capacitance for c in capacitors])
        self.state_capacitance = caps_f[cap_idx]
        self.state_voltage = np.sqrt(
            2.0 * self.state_energy / self.state_capacitance
        )
        self._floor = floor_e
        self._usable_caps = usable_caps
        self._full_energy = np.array(
            [c.energy_at(c.v_full) for c in capacitors]
        )[cap_idx]

        # Vectorised per-state device parameters (curves differ per cap).
        self._cycle = np.array([c.cycle_efficiency for c in capacitors])[
            cap_idx
        ]
        self._in_eta_max = np.array(
            [c.input_regulator.eta_max for c in capacitors]
        )[cap_idx]
        self._in_v_half = np.array(
            [c.input_regulator.v_half for c in capacitors]
        )[cap_idx]
        self._in_exp = np.array(
            [c.input_regulator.exponent for c in capacitors]
        )[cap_idx]
        self._leak_coeff = np.array([c.leak_coeff for c in capacitors])[
            cap_idx
        ]
        self._leak_exp = np.array([c.leak_exponent for c in capacitors])[
            cap_idx
        ]
        self._parasitic = np.array(
            [c.parasitic_power for c in capacitors]
        )[cap_idx]
        self._eta_dis = np.array(
            [
                capacitors[cap_idx[s]].discharge_efficiency(
                    self.state_voltage[s]
                )
                for s in range(self.num_states)
            ]
        )

    # ------------------------------------------------------------------
    def state_index(self, cap_index: int, usable_energy: float) -> int:
        """Closest state to the given capacitor + usable energy."""
        if not 0 <= cap_index < len(self.capacitors):
            raise IndexError(f"cap_index {cap_index} out of range")
        cap_usable = self._usable_caps[cap_index]
        frac = 0.0 if cap_usable <= 0 else usable_energy / cap_usable
        bucket = int(round(np.clip(frac, 0.0, 1.0) * (self.buckets - 1)))
        return cap_index * self.buckets + bucket

    def drained_state(self, cap_index: int) -> int:
        """State index of capacitor ``cap_index`` at zero usable energy."""
        return cap_index * self.buckets

    def transition(
        self, need: float, surplus: float, duration: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply one period's (need, surplus) to every state.

        Returns ``(feasible, next_index, drawn)`` arrays over states.
        ``feasible`` is False where the state cannot deliver ``need``.
        """
        energy = self.state_energy.copy()
        usable = self.state_usable
        feasible = np.ones(self.num_states, dtype=bool)
        drawn = np.zeros(self.num_states)

        if need > 0:
            eta_dis = self._eta_dis
            with np.errstate(divide="ignore"):
                want = np.where(eta_dis > 0, need / np.maximum(eta_dis, 1e-12),
                                np.inf)
            feasible = want <= usable + 1e-9
            drawn = np.where(feasible, want, 0.0)
            energy = energy - drawn

        if surplus > 0:
            voltage = np.sqrt(
                np.maximum(2.0 * energy / self.state_capacitance, 0.0)
            )
            vp = voltage**self._in_exp
            eta_chr = (
                self._in_eta_max
                * vp
                / (vp + self._in_v_half**self._in_exp)
                * self._cycle
            )
            stored = np.minimum(
                surplus * eta_chr, np.maximum(self._full_energy - energy, 0)
            )
            energy = energy + stored

        voltage = np.sqrt(
            np.maximum(2.0 * energy / self.state_capacitance, 0.0)
        )
        leak = (
            self._leak_coeff * self.state_capacitance * voltage**self._leak_exp
            + self._parasitic
        )
        energy = np.maximum(energy - leak * duration, 0.0)

        usable_next = np.maximum(energy - self._floor[self.state_cap], 0.0)
        frac = usable_next / np.maximum(self._usable_caps[self.state_cap], 1e-30)
        # Floor: never round stored energy upward (see DPConfig).
        bucket = np.floor(
            np.clip(frac, 0.0, 1.0) * (self.buckets - 1) + 1e-9
        ).astype(int)
        next_index = self.state_cap * self.buckets + bucket
        return feasible, next_index, drawn


@dataclasses.dataclass(frozen=True)
class TrainingSample:
    """One supervised sample for the DBN (Figure 6 inputs/outputs)."""

    prev_solar: np.ndarray  # per-slot power of the previous period, W
    voltages: np.ndarray  # per-capacitor voltage at period start, V
    accumulated_dmr: float
    cap_index: int  # C_{h,i}: capacitor of the day
    alpha: float  # scheduling-pattern index (Eq. 18), clipped
    te: np.ndarray  # tasks to execute this period (bool, N)


@dataclasses.dataclass
class LongTermPlan:
    """Output of the offline optimisation."""

    plan: SchedulePlan
    samples: List[TrainingSample]
    expected_dmr: float
    chosen_k: np.ndarray  # per period
    capacitor_by_day: np.ndarray
    transitions_evaluated: int
    te_by_period: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros((0, 0), dtype=bool)
    )  # (P, N) chosen subset per period
    alpha_by_period: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros(0)
    )  # (P,) pattern index per period


class LongTermOptimizer:
    """Dynamic program over (capacitor, energy) states and DMR targets."""

    #: alpha values are clipped here when the period has no solar.
    ALPHA_CLIP = 5.0

    def __init__(
        self,
        graph: TaskGraph,
        timeline: Timeline,
        capacitors: Sequence[SuperCapacitor],
        direct_efficiency: float = 0.98,
        config: Optional[DPConfig] = None,
    ) -> None:
        self.graph = graph
        self.timeline = timeline
        self.capacitors = tuple(capacitors)
        self.config = config or DPConfig()
        self.profiler = PeriodProfiler(
            graph, timeline, direct_efficiency=direct_efficiency
        )
        self.grid = StorageGrid(self.capacitors, self.config.energy_buckets)
        self.direct_efficiency = direct_efficiency

    # ------------------------------------------------------------------
    def optimize(
        self,
        solar_periods: np.ndarray,
        start_cap: int = 0,
        start_usable: float = 0.0,
        periods_per_day: Optional[int] = None,
        extract_matrices: bool = True,
        augment_per_period: int = 0,
        augment_seed: int = 17,
    ) -> LongTermPlan:
        """Solve the DP over ``(num_periods, N_s)`` solar powers.

        ``periods_per_day`` controls where capacitor switches are
        allowed (defaults to the timeline's periods per day; pass 0 to
        forbid switching entirely).

        ``augment_per_period`` adds that many *off-trajectory* training
        samples per period: random storage states labelled with the
        DP's optimal action for that state (the backward pass computes
        it for every state anyway).  An online policy trained only on
        the optimal trajectory drifts — real deployments visit states
        the optimal plan never would — so these samples teach it what
        the oracle does everywhere, not just along its own path.
        """
        solar_periods = np.asarray(solar_periods, dtype=float)
        if solar_periods.ndim != 2 or solar_periods.shape[1] != (
            self.timeline.slots_per_period
        ):
            raise ValueError(
                f"solar_periods must be (P, {self.timeline.slots_per_period}), "
                f"got {solar_periods.shape}"
            )
        npd = (
            self.timeline.periods_per_day
            if periods_per_day is None
            else periods_per_day
        )
        num_periods = solar_periods.shape[0]
        n_tasks = len(self.graph)
        n_states = self.grid.num_states
        duration = self.timeline.period_seconds

        profiles = self.profiler.profile_many(solar_periods)

        # Per-period transitions are recomputed on the fly in both
        # passes (memoising the full (P, K+1, S) tables would need
        # hundreds of MB for monthly horizons).
        transitions = 0

        def period_transitions(t: int):
            nonlocal transitions
            prof = profiles[t]
            nxt = np.zeros((n_tasks + 1, n_states), dtype=np.int32)
            cost = np.full((n_tasks + 1, n_states), np.inf)
            for k in range(n_tasks + 1):
                if not prof.feasible[k]:
                    continue
                f, nx, drawn = self.grid.transition(
                    float(prof.storage_need[k]),
                    float(prof.surplus[k]),
                    duration,
                )
                transitions += n_states
                nxt[k] = nx
                cost[k] = np.where(
                    f,
                    prof.dmr_of(k) + self.config.energy_tiebreak * drawn,
                    np.inf,
                )
            return nxt, cost

        # Backward pass.
        ctg = np.zeros(n_states)
        best_k = np.zeros((num_periods, n_states), dtype=np.int8)
        switch_to = np.full((num_periods, n_states), -1, dtype=np.int32)
        for t in range(num_periods - 1, -1, -1):
            nxt_t, cost_t = period_transitions(t)
            costs = cost_t + np.take(ctg, nxt_t)  # (K+1, S)
            best = np.argmin(costs, axis=0)
            value = costs[best, np.arange(n_states)]
            # Completing nothing (k=0) is always feasible, so value is
            # finite everywhere.
            best_k[t] = best
            ctg = value
            if npd and t % npd == 0:
                # Day boundary: optional switch before the period, only
                # from nearly-drained states (Eq. 22).
                drained_targets = np.array(
                    [
                        self.grid.drained_state(h)
                        for h in range(len(self.capacitors))
                    ]
                )
                target_vals = ctg[drained_targets]
                best_target = int(np.argmin(target_vals))
                can_switch = (
                    self.grid.state_usable < self.config.switch_threshold
                )
                improves = target_vals[best_target] < ctg - 1e-15
                do_switch = can_switch & improves
                switch_to[t] = np.where(
                    do_switch, drained_targets[best_target], -1
                )
                ctg = np.where(do_switch, target_vals[best_target], ctg)

        # Forward extraction.
        state = self.grid.state_index(start_cap, start_usable)
        plan = SchedulePlan()
        samples: List[TrainingSample] = []
        chosen_k = np.zeros(num_periods, dtype=int)
        te_by_period = np.zeros((num_periods, n_tasks), dtype=bool)
        alpha_by_period = np.zeros(num_periods)
        num_days = (num_periods + npd - 1) // npd if npd else 1
        cap_by_day = np.zeros(max(num_days, 1), dtype=int)
        dmr_sum = 0.0
        n_slots = self.timeline.slots_per_period
        prev_solar = np.zeros(n_slots)
        acc_trajectory = np.zeros(num_periods)

        for t in range(num_periods):
            if npd and t % npd == 0:
                target = switch_to[t, state]
                if target >= 0:
                    state = int(target)
                cap_by_day[t // npd] = int(self.grid.state_cap[state])
            k = int(best_k[t, state])
            chosen_k[t] = k
            prof = profiles[t]
            te = prof.subsets[k]
            te_by_period[t] = te
            alpha_by_period[t] = (
                float(np.clip(prof.alpha[k], 0.0, self.ALPHA_CLIP))
                if k > 0
                else 0.0
            )

            if extract_matrices:
                day, period = (t // npd, t % npd) if npd else (0, t)
                matrix, _ = build_schedule_matrix(
                    self.graph,
                    self.timeline,
                    solar_periods[t],
                    te,
                    direct_efficiency=self.direct_efficiency,
                )
                plan.set_period(day, period, matrix)

            voltages = np.array(
                [c.v_cutoff for c in self.capacitors], dtype=float
            )
            h = int(self.grid.state_cap[state])
            voltages[h] = self.grid.state_voltage[state]
            acc = dmr_sum / t if t else 0.0
            acc_trajectory[t] = acc
            alpha = float(prof.alpha[k]) if k > 0 else 0.0
            samples.append(
                TrainingSample(
                    prev_solar=prev_solar.copy(),
                    voltages=voltages,
                    accumulated_dmr=acc,
                    cap_index=h,
                    alpha=float(np.clip(alpha, 0.0, self.ALPHA_CLIP)),
                    te=te.copy(),
                )
            )

            dmr_sum += prof.dmr_of(k)
            prev_solar = solar_periods[t]
            f, nx, _ = self.grid.transition(
                float(prof.storage_need[k]),
                float(prof.surplus[k]),
                duration,
            )
            if not f[state]:  # defensive; k=0 is always feasible
                k = 0
                _, nx, _ = self.grid.transition(
                    float(prof.storage_need[0]),
                    float(prof.surplus[0]),
                    duration,
                )
            state = int(nx[state])

        if npd:
            plan.capacitor_by_day = {
                d: int(cap_by_day[d]) for d in range(num_days)
            }

        if augment_per_period > 0:
            rng = np.random.default_rng(augment_seed)
            cutoffs = np.array([c.v_cutoff for c in self.capacitors])
            for t in range(num_periods):
                prev = solar_periods[t - 1] if t > 0 else np.zeros(n_slots)
                prof = profiles[t]
                for _ in range(augment_per_period):
                    s = int(rng.integers(n_states))
                    h = int(self.grid.state_cap[s])
                    # The oracle's move from state s: at day boundaries
                    # it may first switch capacitors, then act from the
                    # post-switch state.
                    target = switch_to[t, s] if (npd and t % npd == 0) else -1
                    acting_state = int(target) if target >= 0 else s
                    k = int(best_k[t, acting_state])
                    cap_label = int(self.grid.state_cap[acting_state])
                    # Idle capacitors hold arbitrary residual voltage in
                    # deployment (Eq. 22 strands charge below E_th); the
                    # oracle ignores them, so randomise their inputs to
                    # teach the policy the same invariance.
                    fulls = np.array([c.v_full for c in self.capacitors])
                    voltages = rng.uniform(cutoffs, fulls)
                    voltages[h] = self.grid.state_voltage[s]
                    # The oracle's action does not depend on the
                    # accumulated DMR, but deployments visit the whole
                    # [0, 1] range (a fresh node has acc = 1.0 all
                    # night), so sample it uniformly.
                    acc = float(rng.uniform(0.0, 1.0))
                    alpha = float(prof.alpha[k]) if k > 0 else 0.0
                    samples.append(
                        TrainingSample(
                            prev_solar=prev.copy(),
                            voltages=voltages,
                            accumulated_dmr=acc,
                            cap_index=cap_label,
                            alpha=float(
                                np.clip(alpha, 0.0, self.ALPHA_CLIP)
                            ),
                            te=prof.subsets[k].copy(),
                        )
                    )

        return LongTermPlan(
            plan=plan,
            samples=samples,
            expected_dmr=dmr_sum / num_periods,
            chosen_k=chosen_k,
            capacitor_by_day=cap_by_day,
            transitions_evaluated=transitions,
            te_by_period=te_by_period,
            alpha_by_period=alpha_by_period,
        )
