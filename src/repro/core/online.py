"""Online deadline-aware scheduling (Section 5 of the paper).

Per period the **coarse** stage decides three things from the observed
state (last period's solar, capacitor voltages, accumulated DMR): which
capacitor to use, the scheduling-pattern index α, and the task subset
``te`` to attempt.  The paper computes this with the offline-trained
DBN; :class:`DBNPolicy` implements that, and two alternatives are
provided for ablation (:class:`NearestSamplePolicy` — LUT-style
nearest-neighbour over the training samples — and
:class:`HeuristicPolicy` — a hand-written rule).

Per slot the **fine** stage executes the subset.  Following Section
5.2, when ``|1 - α| > δ`` the simple lazy inter-task pass is used (at
night or under abundant sun the fine matching buys nothing); otherwise
the intra-task load-matching pass runs.  Capacitor switches go through
the PMU's Eq. (22) threshold rule.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..schedulers.base import Scheduler, nvp_filter
from ..schedulers.greedy import must_run_now
from ..schedulers.intratask import best_power_match
from ..sim.views import PeriodStartView, SlotView
from ..tasks.graph import TaskGraph
from .ann.dbn import DBN
from .features import FeatureCodec
from .longterm import TrainingSample

__all__ = [
    "CoarsePolicy",
    "DBNPolicy",
    "NearestSamplePolicy",
    "HeuristicPolicy",
    "ProposedScheduler",
    "fine_grained_decision",
    "close_subset",
]


def close_subset(graph: TaskGraph, te: np.ndarray) -> np.ndarray:
    """Dependence-close a task subset by adding missing ancestors."""
    te = np.asarray(te, dtype=bool).copy()
    for i in graph.topological_order()[::-1]:
        if te[i]:
            for p in graph.predecessors(i):
                te[p] = True
    return te


def fine_grained_decision(
    view: SlotView, selected: Set[int], intra_mode: bool
) -> List[int]:
    """The per-slot fine pass shared by the online schedulers.

    ``intra_mode=True`` runs the load-matching pass of [9] restricted
    to the selected subset; ``False`` runs the cheap lazy inter-task
    pass (urgent tasks plus whatever current solar fully covers).
    Urgent (slack-exhausted) tasks always run.
    """
    ready = [t for t in view.ready if t in selected]
    if not ready:
        return []
    ready.sort(key=lambda i: (view.deadline_slots[i], i))
    per_nvp = nvp_filter(view.graph, ready)

    urgent = [t for t in per_nvp if must_run_now(view, t)]
    chosen = list(urgent)
    load = sum(view.graph.tasks[t].power for t in chosen)
    optional = [t for t in per_nvp if t not in urgent]

    if intra_mode:
        budget = max(view.solar_power - load, 0.0)
        powers = [view.graph.tasks[t].power for t in optional]
        for idx in best_power_match(powers, budget):
            chosen.append(optional[idx])
    else:
        for t in optional:
            extra = view.graph.tasks[t].power
            if load + extra <= view.solar_power + 1e-12:
                chosen.append(t)
                load += extra
    return chosen


class CoarsePolicy(abc.ABC):
    """Once-per-period decision: (capacitor, α, task subset)."""

    @abc.abstractmethod
    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        """Return ``(capacitor_index, alpha, te_bool_array)``."""


class DBNPolicy(CoarsePolicy):
    """The paper's coarse stage: a trained DBN forward pass."""

    def __init__(self, dbn: DBN, codec: FeatureCodec) -> None:
        self.dbn = dbn
        self.codec = codec

    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        x = self.codec.encode_input(prev_solar, voltages, accumulated_dmr)
        cap, alpha_scaled, te = self.dbn.predict_one(x)
        return cap, self.codec.decode_alpha(alpha_scaled), te


class NearestSamplePolicy(CoarsePolicy):
    """LUT-style ablation: nearest training sample in feature space.

    This is what Eq. (13) would do with the raw LUT ("we use the
    closest input in the LUT to approximate the real input"); the DBN
    replaces it with a compact learned map.
    """

    def __init__(
        self, samples: Sequence[TrainingSample], codec: FeatureCodec
    ) -> None:
        if not samples:
            raise ValueError("need at least one sample")
        self.samples = list(samples)
        self.codec = codec
        self._matrix, _, self._alphas, self._tes = codec.encode_samples(
            self.samples
        )
        self._caps = np.array([s.cap_index for s in self.samples])

    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        x = self.codec.encode_input(prev_solar, voltages, accumulated_dmr)
        distances = ((self._matrix - x[None, :]) ** 2).sum(axis=1)
        best = int(np.argmin(distances))
        return (
            int(self._caps[best]),
            self.codec.decode_alpha(self._alphas[best]),
            self._tes[best] >= 0.5,
        )


class HeuristicPolicy(CoarsePolicy):
    """Hand-written coarse rule (no offline stage needed).

    Attempt everything when stored + expected solar covers the full
    set, otherwise shed the most expensive tasks; pick the capacitor
    whose usable capacity best matches the expected surplus.
    """

    def __init__(
        self,
        graph: TaskGraph,
        capacitors,
        period_seconds: float,
        reserve_factor: float = 0.7,
    ) -> None:
        self.graph = graph
        self.capacitors = tuple(capacitors)
        self.period_seconds = period_seconds
        self.reserve_factor = reserve_factor
        self._by_cost = sorted(
            range(len(graph)), key=lambda i: graph.tasks[i].energy
        )

    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        expected_solar = float(np.mean(prev_solar)) * self.period_seconds
        stored = sum(
            max(cap.energy_at(v) - cap.energy_at(cap.v_cutoff), 0.0)
            for cap, v in zip(self.capacitors, voltages)
        )
        budget = expected_solar + self.reserve_factor * stored
        te = np.zeros(len(self.graph), dtype=bool)
        spent = 0.0
        for i in self._by_cost:
            cost = self.graph.tasks[i].energy
            if spent + cost <= budget:
                te[i] = True
                spent += cost
        te = close_subset(self.graph, te)
        alpha = spent / expected_solar if expected_solar > 0 else 5.0
        surplus = max(expected_solar - spent, 0.0)
        capacities = np.array(
            [c.usable_capacity for c in self.capacitors]
        )
        cap = int(np.argmin(np.abs(capacities - max(surplus, stored))))
        return cap, float(alpha), te


class ProposedScheduler(Scheduler):
    """The paper's online algorithm: coarse policy + δ-selected fine pass."""

    name = "proposed"

    def __init__(
        self,
        policy: CoarsePolicy,
        delta: float = 0.5,
        name: Optional[str] = None,
    ) -> None:
        """
        Parameters
        ----------
        policy:
            The coarse per-period decision model (DBN in the paper).
        delta:
            δ of Section 5.2: when ``|1 - α| > delta`` the cheap
            inter-task pass replaces the intra-task matching.
        """
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        self.policy = policy
        self.delta = delta
        if name is not None:
            self.name = name
        self._selected: Set[int] = set()
        self._intra_mode = True

    def on_period_start(self, view: PeriodStartView) -> None:
        prev = (
            view.last_period_powers
            if view.last_period_powers is not None
            else np.zeros(view.timeline.slots_per_period)
        )
        obs = self.observer
        span_name = (
            "dbn_forward"
            if isinstance(self.policy, DBNPolicy)
            else "coarse_decide"
        )
        with obs.span(span_name):
            cap, alpha, te = self.policy.decide(
                prev, view.bank.voltages, view.accumulated_dmr
            )
        te = close_subset(view.graph, np.asarray(te, dtype=bool))
        self._selected = set(np.flatnonzero(te).tolist())
        self._intra_mode = abs(1.0 - alpha) <= self.delta
        if obs.enabled:
            obs.coarse_decision(
                cap_index=cap,
                alpha=alpha,
                intra_mode=self._intra_mode,
                task_subset=sorted(self._selected),
            )
            if not self._intra_mode:
                obs.delta_fallback(alpha=alpha, delta=self.delta)
        if 0 <= cap < len(view.bank.capacitances):
            view.request_capacitor(cap)

    def on_slot(self, view: SlotView) -> Sequence[int]:
        return fine_grained_decision(view, self._selected, self._intra_mode)
