"""Online deadline-aware scheduling (Section 5 of the paper).

Per period the **coarse** stage decides three things from the observed
state (last period's solar, capacitor voltages, accumulated DMR): which
capacitor to use, the scheduling-pattern index α, and the task subset
``te`` to attempt.  The paper computes this with the offline-trained
DBN; :class:`DBNPolicy` implements that, and two alternatives are
provided for ablation (:class:`NearestSamplePolicy` — LUT-style
nearest-neighbour over the training samples — and
:class:`HeuristicPolicy` — a hand-written rule).

Per slot the **fine** stage executes the subset.  Following Section
5.2, when ``|1 - α| > δ`` the simple lazy inter-task pass is used (at
night or under abundant sun the fine matching buys nothing); otherwise
the intra-task load-matching pass runs.  Capacitor switches go through
the PMU's Eq. (22) threshold rule.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..schedulers.base import Scheduler, nvp_filter
from ..schedulers.greedy import must_run_now
from ..schedulers.intratask import best_power_match
from ..sim.views import PeriodStartView, SlotView
from ..tasks.graph import TaskGraph
from .ann.dbn import DBN
from .features import FeatureCodec
from .longterm import TrainingSample

__all__ = [
    "CoarsePolicy",
    "CoarseDecisionError",
    "InjectedInferenceFault",
    "DBNPolicy",
    "NearestSamplePolicy",
    "HeuristicPolicy",
    "ProposedScheduler",
    "fine_grained_decision",
    "close_subset",
    "validate_coarse_decision",
    "ALPHA_MAX",
]

#: Largest plausible scheduling-pattern index α.  The paper's α is the
#: ratio of attempted load to expected harvest — a handful at most; a
#: coarse-stage output beyond this is corrupt, not ambitious.
ALPHA_MAX = 100.0


class CoarseDecisionError(RuntimeError):
    """A coarse policy produced an invalid (capacitor, α, te) triple."""


class InjectedInferenceFault(RuntimeError):
    """Raised when a runtime fault plan forces an inference failure."""


def validate_coarse_decision(
    num_tasks: int, num_capacitors: int, cap, alpha, te
) -> Tuple[int, float, np.ndarray]:
    """Validate and normalise a coarse decision, or raise.

    Checks the three things a corrupted model output gets wrong: the
    capacitor index must address the bank, α must be a finite
    scheduling-pattern index in ``[0, ALPHA_MAX]``, and the task
    subset must be a finite boolean vector over the task set.  Raises
    :class:`CoarseDecisionError` with a one-line reason; never lets a
    malformed triple reach the slot loop.
    """
    try:
        cap = int(cap)
    except (TypeError, ValueError) as exc:
        raise CoarseDecisionError(
            f"capacitor index {cap!r} is not an integer"
        ) from exc
    if not 0 <= cap < num_capacitors:
        raise CoarseDecisionError(
            f"capacitor index {cap} outside [0, {num_capacitors})"
        )
    try:
        alpha = float(alpha)
    except (TypeError, ValueError) as exc:
        raise CoarseDecisionError(f"alpha {alpha!r} is not a float") from exc
    if not np.isfinite(alpha) or not 0.0 <= alpha <= ALPHA_MAX:
        raise CoarseDecisionError(
            f"alpha {alpha} outside [0, {ALPHA_MAX}] or non-finite"
        )
    te_arr = np.asarray(te)
    if te_arr.shape != (num_tasks,):
        raise CoarseDecisionError(
            f"task subset has shape {te_arr.shape}, expected "
            f"({num_tasks},)"
        )
    if te_arr.dtype != bool:
        values = te_arr.astype(float)
        if not np.all(np.isfinite(values)):
            raise CoarseDecisionError("task subset contains non-finite values")
        te_arr = values >= 0.5
    return cap, alpha, te_arr


def close_subset(graph: TaskGraph, te: np.ndarray) -> np.ndarray:
    """Dependence-close a task subset by adding missing ancestors."""
    te = np.asarray(te, dtype=bool).copy()
    for i in graph.topological_order()[::-1]:
        if te[i]:
            for p in graph.predecessors(i):
                te[p] = True
    return te


def fine_grained_decision(
    view: SlotView, selected: Set[int], intra_mode: bool
) -> List[int]:
    """The per-slot fine pass shared by the online schedulers.

    ``intra_mode=True`` runs the load-matching pass of [9] restricted
    to the selected subset; ``False`` runs the cheap lazy inter-task
    pass (urgent tasks plus whatever current solar fully covers).
    Urgent (slack-exhausted) tasks always run.
    """
    ready = [t for t in view.ready if t in selected]
    if not ready:
        return []
    ready.sort(key=lambda i: (view.deadline_slots[i], i))
    per_nvp = nvp_filter(view.graph, ready)

    urgent = [t for t in per_nvp if must_run_now(view, t)]
    chosen = list(urgent)
    load = sum(view.graph.tasks[t].power for t in chosen)
    optional = [t for t in per_nvp if t not in urgent]

    if intra_mode:
        budget = max(view.solar_power - load, 0.0)
        powers = [view.graph.tasks[t].power for t in optional]
        for idx in best_power_match(powers, budget):
            chosen.append(optional[idx])
    else:
        for t in optional:
            extra = view.graph.tasks[t].power
            if load + extra <= view.solar_power + 1e-12:
                chosen.append(t)
                load += extra
    return chosen


class CoarsePolicy(abc.ABC):
    """Once-per-period decision: (capacitor, α, task subset)."""

    @abc.abstractmethod
    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        """Return ``(capacitor_index, alpha, te_bool_array)``."""


class DBNPolicy(CoarsePolicy):
    """The paper's coarse stage: a trained DBN forward pass."""

    def __init__(self, dbn: DBN, codec: FeatureCodec) -> None:
        self.dbn = dbn
        self.codec = codec

    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        x = self.codec.encode_input(prev_solar, voltages, accumulated_dmr)
        cap, alpha_scaled, te = self.dbn.predict_one(x)
        return cap, self.codec.decode_alpha(alpha_scaled), te


class NearestSamplePolicy(CoarsePolicy):
    """LUT-style ablation: nearest training sample in feature space.

    This is what Eq. (13) would do with the raw LUT ("we use the
    closest input in the LUT to approximate the real input"); the DBN
    replaces it with a compact learned map.
    """

    def __init__(
        self, samples: Sequence[TrainingSample], codec: FeatureCodec
    ) -> None:
        if not samples:
            raise ValueError("need at least one sample")
        self.samples = list(samples)
        self.codec = codec
        self._matrix, _, self._alphas, self._tes = codec.encode_samples(
            self.samples
        )
        self._caps = np.array([s.cap_index for s in self.samples])

    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        x = self.codec.encode_input(prev_solar, voltages, accumulated_dmr)
        distances = ((self._matrix - x[None, :]) ** 2).sum(axis=1)
        best = int(np.argmin(distances))
        return (
            int(self._caps[best]),
            self.codec.decode_alpha(self._alphas[best]),
            self._tes[best] >= 0.5,
        )


class HeuristicPolicy(CoarsePolicy):
    """Hand-written coarse rule (no offline stage needed).

    Attempt everything when stored + expected solar covers the full
    set, otherwise shed the most expensive tasks; pick the capacitor
    whose usable capacity best matches the expected surplus.
    """

    def __init__(
        self,
        graph: TaskGraph,
        capacitors,
        period_seconds: float,
        reserve_factor: float = 0.7,
    ) -> None:
        self.graph = graph
        self.capacitors = tuple(capacitors)
        self.period_seconds = period_seconds
        self.reserve_factor = reserve_factor
        self._by_cost = sorted(
            range(len(graph)), key=lambda i: graph.tasks[i].energy
        )

    def decide(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> Tuple[int, float, np.ndarray]:
        expected_solar = float(np.mean(prev_solar)) * self.period_seconds
        stored = sum(
            max(cap.energy_at(v) - cap.energy_at(cap.v_cutoff), 0.0)
            for cap, v in zip(self.capacitors, voltages)
        )
        budget = expected_solar + self.reserve_factor * stored
        te = np.zeros(len(self.graph), dtype=bool)
        spent = 0.0
        for i in self._by_cost:
            cost = self.graph.tasks[i].energy
            if spent + cost <= budget:
                te[i] = True
                spent += cost
        te = close_subset(self.graph, te)
        alpha = spent / expected_solar if expected_solar > 0 else 5.0
        surplus = max(expected_solar - spent, 0.0)
        capacities = np.array(
            [c.usable_capacity for c in self.capacitors]
        )
        cap = int(np.argmin(np.abs(capacities - max(surplus, stored))))
        return cap, float(alpha), te


class ProposedScheduler(Scheduler):
    """The paper's online algorithm: coarse policy + δ-selected fine pass.

    The coarse stage is wrapped in a graceful-degradation ladder
    mirroring the paper's δ-fallback philosophy: a failing or corrupt
    coarse model narrows the schedule, it never crashes the slot loop.
    On a primary-policy failure (exception or invalid output per
    :func:`validate_coarse_decision`) the stage retries once, then
    falls back to ``fallback_policy`` (typically the LUT-style
    :class:`NearestSamplePolicy`), then to inter-task-only scheduling
    of the full task set.  ``quarantine_threshold`` consecutive
    primary failures quarantine the primary for
    ``quarantine_periods`` periods so a persistently broken model
    stops being retried every period.
    """

    name = "proposed"

    def __init__(
        self,
        policy: CoarsePolicy,
        delta: float = 0.5,
        name: Optional[str] = None,
        fallback_policy: Optional[CoarsePolicy] = None,
        max_retries: int = 1,
        quarantine_threshold: int = 3,
        quarantine_periods: int = 10,
    ) -> None:
        """
        Parameters
        ----------
        policy:
            The coarse per-period decision model (DBN in the paper).
        delta:
            δ of Section 5.2: when ``|1 - α| > delta`` the cheap
            inter-task pass replaces the intra-task matching.
        fallback_policy:
            Second rung of the degradation ladder; None skips straight
            to inter-task-only scheduling.
        max_retries:
            Primary-policy retries per period before falling back.
        quarantine_threshold:
            Consecutive primary failures before quarantine kicks in.
        quarantine_periods:
            Periods the primary is skipped once quarantined.
        """
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, got "
                f"{quarantine_threshold}"
            )
        if quarantine_periods < 1:
            raise ValueError(
                f"quarantine_periods must be >= 1, got {quarantine_periods}"
            )
        self.policy = policy
        self.delta = delta
        self.fallback_policy = fallback_policy
        self.max_retries = max_retries
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_periods = quarantine_periods
        if name is not None:
            self.name = name
        self._selected: Set[int] = set()
        self._intra_mode = True
        self._failure_streak = 0
        self._quarantine_left = 0

    # ------------------------------------------------------------------
    @property
    def failure_streak(self) -> int:
        """Consecutive primary-policy failures (0 after any success)."""
        return self._failure_streak

    @property
    def quarantined(self) -> bool:
        """True while the primary policy is quarantined."""
        return self._quarantine_left > 0

    def _attempt(
        self, policy: CoarsePolicy, view: PeriodStartView,
        prev: np.ndarray, injected_failure: bool,
    ) -> Tuple[int, float, np.ndarray]:
        if injected_failure:
            raise InjectedInferenceFault(
                "runtime fault plan forced an inference failure"
            )
        span_name = (
            "dbn_forward" if isinstance(policy, DBNPolicy) else "coarse_decide"
        )
        with self.observer.span(span_name):
            cap, alpha, te = policy.decide(
                prev, view.bank.voltages, view.accumulated_dmr
            )
        return validate_coarse_decision(
            len(view.graph), len(view.bank.capacitances), cap, alpha, te
        )

    def _coarse_with_degradation(
        self, view: PeriodStartView, prev: np.ndarray
    ) -> Tuple[int, float, np.ndarray]:
        """Walk the degradation ladder; always returns a usable triple."""
        obs = self.observer
        injected = view.faults is not None and view.faults.fail_inference
        last_error: object = None

        if self._quarantine_left > 0:
            self._quarantine_left -= 1
            last_error = "primary policy quarantined"
            obs.policy_fallback(
                stage="quarantine",
                reason=(
                    f"primary skipped, {self._quarantine_left + 1} "
                    "period(s) of quarantine remaining"
                ),
                failure_streak=self._failure_streak,
            )
        else:
            for attempt in range(1 + self.max_retries):
                if attempt > 0:
                    obs.policy_fallback(
                        stage="retry",
                        reason=str(last_error),
                        failure_streak=self._failure_streak,
                    )
                try:
                    result = self._attempt(self.policy, view, prev, injected)
                except Exception as exc:  # degrade, never crash the loop
                    last_error = exc
                else:
                    self._failure_streak = 0
                    return result
            self._failure_streak += 1
            if self._failure_streak >= self.quarantine_threshold:
                self._quarantine_left = self.quarantine_periods
                obs.policy_fallback(
                    stage="quarantine",
                    reason=(
                        f"{self._failure_streak} consecutive failures; "
                        f"last: {last_error}"
                    ),
                    failure_streak=self._failure_streak,
                )

        if self.fallback_policy is not None:
            try:
                result = self._attempt(self.fallback_policy, view, prev, False)
            except Exception as exc:
                last_error = exc
            else:
                obs.policy_fallback(
                    stage="fallback_policy",
                    reason=str(last_error),
                    failure_streak=self._failure_streak,
                )
                return result

        # Terminal rung, always valid: keep the active capacitor,
        # attempt every task, and force |1 - α| > δ so the cheap
        # inter-task pass runs — the δ-fallback generalised to "the
        # coarse stage is down".
        obs.policy_fallback(
            stage="inter_task_only",
            reason=str(last_error),
            failure_streak=self._failure_streak,
        )
        return (
            view.bank.active_index,
            1.0 + self.delta + 1.0,
            np.ones(len(view.graph), dtype=bool),
        )

    def on_period_start(self, view: PeriodStartView) -> None:
        prev = (
            view.last_period_powers
            if view.last_period_powers is not None
            else np.zeros(view.timeline.slots_per_period)
        )
        obs = self.observer
        cap, alpha, te = self._coarse_with_degradation(view, prev)
        te = close_subset(view.graph, np.asarray(te, dtype=bool))
        self._selected = set(np.flatnonzero(te).tolist())
        self._intra_mode = abs(1.0 - alpha) <= self.delta
        if obs.enabled:
            obs.coarse_decision(
                cap_index=cap,
                alpha=alpha,
                intra_mode=self._intra_mode,
                task_subset=sorted(self._selected),
            )
            if not self._intra_mode:
                obs.delta_fallback(alpha=alpha, delta=self.delta)
        if 0 <= cap < len(view.bank.capacitances):
            view.request_capacitor(cap)

    def on_slot(self, view: SlotView) -> Sequence[int]:
        return fine_grained_decision(view, self._selected, self._intra_mode)
