"""The explicit lookup table of Eq. (13).

Section 4.2 defines a LUT mapping per-period inputs — the DMR target,
the period's solar profile, the selected capacitor and its initial
voltage — to the optimised outputs: the minimum consumed storage
energy ``E^c`` (Eq. 15), the executed-task flags ``te`` (Eq. 17) and
the scheduling-pattern index ``α`` (Eq. 18).  "As the LUT has a
limited number of items, we use the closest input in the LUT to
approximate the real input."

:class:`LookupTable` materialises exactly that: entries are built by
the per-period optimiser over a discretised input grid (solar classes ×
capacitors × voltage levels × DMR targets) and queried by nearest
input.  The DBN (:mod:`repro.core.ann`) is the paper's compression of
this table; keeping the explicit table around enables the LUT-vs-DBN
ablation and documents the method's intermediate artefact.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..energy.capacitor import SuperCapacitor
from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from .period_profile import PeriodProfiler

__all__ = ["LUTEntry", "LookupTable", "solar_classes"]


def solar_classes(
    solar_periods: np.ndarray, num_classes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster period solar profiles into representative classes.

    Plain k-means on the per-slot power vectors (seeded determinstic
    init on energy quantiles).  Returns ``(centroids, assignment)``
    with centroids shaped ``(num_classes, N_s)``.
    """
    solar_periods = np.asarray(solar_periods, dtype=float)
    if solar_periods.ndim != 2:
        raise ValueError(
            f"solar_periods must be 2-D, got shape {solar_periods.shape}"
        )
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    energies = solar_periods.sum(axis=1)
    order = np.argsort(energies)
    k = min(num_classes, len(solar_periods))
    seeds = order[np.linspace(0, len(order) - 1, k).astype(int)]
    centroids = solar_periods[seeds].copy()
    assignment = np.zeros(len(solar_periods), dtype=int)
    for _ in range(50):
        distances = (
            (solar_periods[:, None, :] - centroids[None, :, :]) ** 2
        ).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment) and _ > 0:
            break
        assignment = new_assignment
        for j in range(k):
            members = solar_periods[assignment == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return centroids, assignment


@dataclasses.dataclass(frozen=True)
class LUTEntry:
    """One row of the Eq. (13) table."""

    dmr: float  # input: the period DMR target
    solar_class: int  # input: index into the table's solar centroids
    cap_index: int  # input: selected capacitor C_{h,i}
    voltage: float  # input: V^sc at the period start
    consumed_energy: float  # output: E^c (Eq. 15), joules drawn
    te: np.ndarray  # output: executed tasks (Eq. 17)
    alpha: float  # output: pattern-selection index (Eq. 18)
    feasible: bool  # whether the capacitor can actually deliver


class LookupTable:
    """Discretised per-period optimisation results (Eq. 13–18).

    Parameters
    ----------
    graph / timeline:
        Workload and time structure.
    capacitors:
        The distributed bank.
    num_solar_classes:
        Representative solar profiles kept in the table.
    num_voltage_levels:
        Discretisation of the initial capacitor voltage per capacitor.
    """

    def __init__(
        self,
        graph: TaskGraph,
        timeline: Timeline,
        capacitors: Sequence[SuperCapacitor],
        num_solar_classes: int = 8,
        num_voltage_levels: int = 5,
        direct_efficiency: float = 0.98,
    ) -> None:
        if not capacitors:
            raise ValueError("need at least one capacitor")
        if num_voltage_levels < 2:
            raise ValueError(
                f"num_voltage_levels must be >= 2, got {num_voltage_levels}"
            )
        self.graph = graph
        self.timeline = timeline
        self.capacitors = tuple(capacitors)
        self.num_solar_classes = num_solar_classes
        self.num_voltage_levels = num_voltage_levels
        self.profiler = PeriodProfiler(
            graph, timeline, direct_efficiency=direct_efficiency
        )
        self.centroids: Optional[np.ndarray] = None
        self.entries: List[LUTEntry] = []
        # Column-major mirror of ``entries`` for vectorized lookups,
        # rebuilt whenever the entry list changes.
        self._columns: Optional[dict] = None
        self._columns_key: Optional[Tuple[int, int]] = None

    def _entry_columns(self) -> dict:
        """Per-field arrays over ``entries`` (lazily built and cached)."""
        key = (id(self.entries), len(self.entries))
        if self._columns is None or self._columns_key != key:
            entries = self.entries
            self._columns = {
                "solar_class": np.array(
                    [e.solar_class for e in entries], dtype=int
                ),
                "cap_index": np.array(
                    [e.cap_index for e in entries], dtype=int
                ),
                "voltage": np.array([e.voltage for e in entries]),
                "dmr": np.array([e.dmr for e in entries]),
                "consumed_energy": np.array(
                    [e.consumed_energy for e in entries]
                ),
                "feasible": np.array(
                    [e.feasible for e in entries], dtype=bool
                ),
            }
            self._columns_key = key
        return self._columns

    # ------------------------------------------------------------------
    def build(self, solar_periods: np.ndarray) -> "LookupTable":
        """Populate the table from historical per-period solar data."""
        from ..obs.trace import current_tracer

        with current_tracer().span(
            "lut_build",
            attrs={
                "solar_classes": self.num_solar_classes,
                "voltage_levels": self.num_voltage_levels,
            },
        ) as span:
            self.centroids, _ = solar_classes(
                solar_periods, self.num_solar_classes
            )
            self.entries = []
            n = len(self.graph)
            for class_idx, centroid in enumerate(self.centroids):
                profile = self.profiler.profile(centroid)
                for h, cap in enumerate(self.capacitors):
                    voltages = np.linspace(
                        cap.v_cutoff, cap.v_full, self.num_voltage_levels
                    )
                    for v in voltages:
                        usable = cap.energy_at(v) - cap.energy_at(cap.v_cutoff)
                        for k in range(n + 1):
                            if not profile.feasible[k]:
                                continue
                            need = float(profile.storage_need[k])
                            eta = cap.discharge_efficiency(v)
                            drawn = need / eta if eta > 0 else np.inf
                            feasible = drawn <= usable + 1e-9
                            self.entries.append(
                                LUTEntry(
                                    dmr=profile.dmr_of(k),
                                    solar_class=class_idx,
                                    cap_index=h,
                                    voltage=float(v),
                                    consumed_energy=float(drawn)
                                    if np.isfinite(drawn)
                                    else float("inf"),
                                    te=profile.subsets[k].copy(),
                                    alpha=float(
                                        np.clip(profile.alpha[k], 0.0, 5.0)
                                    )
                                    if k > 0
                                    else 0.0,
                                    feasible=bool(feasible),
                                )
                            )
            span.annotate(entries=len(self.entries))
        return self

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def classify_solar(self, solar_slots: np.ndarray) -> int:
        """Nearest solar class for a per-slot power vector."""
        if self.centroids is None:
            raise RuntimeError("LUT not built; call build() first")
        solar_slots = np.asarray(solar_slots, dtype=float)
        distances = ((self.centroids - solar_slots[None, :]) ** 2).sum(axis=1)
        return int(distances.argmin())

    def query(
        self,
        dmr_target: float,
        solar_slots: np.ndarray,
        cap_index: int,
        voltage: float,
        feasible_only: bool = True,
    ) -> Optional[LUTEntry]:
        """Closest entry to the given (possibly off-grid) inputs.

        Matches the paper's "closest input" rule: exact on the solar
        class and capacitor, nearest on voltage, then the feasible
        entry with the closest DMR at or below the target (falling back
        to the closest overall).
        """
        if self.centroids is None:
            raise RuntimeError("LUT not built; call build() first")
        if not 0 <= cap_index < len(self.capacitors):
            raise IndexError(f"cap_index {cap_index} out of range")
        solar_class = self.classify_solar(solar_slots)
        cols = self._entry_columns()
        mask = (cols["solar_class"] == solar_class) & (
            cols["cap_index"] == cap_index
        )
        if feasible_only:
            feasible = mask & cols["feasible"]
            if feasible.any():
                mask = feasible
        idx = np.flatnonzero(mask)
        if not len(idx):
            return None
        cand_v = cols["voltage"][idx]
        unique_v = np.unique(cand_v)
        nearest_v = unique_v[np.abs(unique_v - voltage).argmin()]
        at_v = idx[cand_v == nearest_v]
        dmr_gap = np.abs(cols["dmr"][at_v] - dmr_target)
        return self.entries[int(at_v[dmr_gap.argmin()])]

    def best_for_budget(
        self,
        solar_slots: np.ndarray,
        cap_index: int,
        voltage: float,
        energy_budget: float,
    ) -> Optional[LUTEntry]:
        """Lowest-DMR feasible entry whose ``E^c`` fits the budget.

        This is how an online user of the raw table would pick the
        period's task set: complete as much as the storage allowance
        permits (Eq. 14's constraint).
        """
        if energy_budget < 0:
            raise ValueError(
                f"energy_budget must be >= 0, got {energy_budget}"
            )
        if self.centroids is None:
            raise RuntimeError("LUT not built; call build() first")
        solar_class = self.classify_solar(solar_slots)
        cols = self._entry_columns()
        mask = (
            (cols["solar_class"] == solar_class)
            & (cols["cap_index"] == cap_index)
            & cols["feasible"]
            & (cols["consumed_energy"] <= energy_budget + 1e-9)
        )
        idx = np.flatnonzero(mask)
        if not len(idx):
            return None
        cand_v = cols["voltage"][idx]
        unique_v = np.unique(cand_v)
        nearest_v = unique_v[np.abs(unique_v - voltage).argmin()]
        at_v = idx[cand_v == nearest_v]
        # lexsort is stable, so ties on (dmr, E^c) keep entry order —
        # the same winner Python's min() over the list produced.
        order = np.lexsort(
            (cols["consumed_energy"][at_v], cols["dmr"][at_v])
        )
        return self.entries[int(at_v[order[0]])]

    # ------------------------------------------------------------------
    # Linear-scan references.  These are the pre-vectorization
    # implementations kept verbatim as differential oracles: any input
    # must produce the *same entry object* from the scan and the
    # vectorized path (see repro.verify.oracles.oracle_lut_vs_scan).
    # ------------------------------------------------------------------
    def query_scan(
        self,
        dmr_target: float,
        solar_slots: np.ndarray,
        cap_index: int,
        voltage: float,
        feasible_only: bool = True,
    ) -> Optional[LUTEntry]:
        """Exhaustive-scan twin of :meth:`query`."""
        if self.centroids is None:
            raise RuntimeError("LUT not built; call build() first")
        if not 0 <= cap_index < len(self.capacitors):
            raise IndexError(f"cap_index {cap_index} out of range")
        solar_class = self.classify_solar(solar_slots)
        candidates = [
            e for e in self.entries
            if e.solar_class == solar_class and e.cap_index == cap_index
        ]
        if feasible_only:
            feasible = [e for e in candidates if e.feasible]
            candidates = feasible or candidates
        if not candidates:
            return None
        voltages = sorted({e.voltage for e in candidates})
        nearest_v = min(voltages, key=lambda v: abs(v - voltage))
        at_v = [e for e in candidates if e.voltage == nearest_v]
        return min(at_v, key=lambda e: abs(e.dmr - dmr_target))

    def best_for_budget_scan(
        self,
        solar_slots: np.ndarray,
        cap_index: int,
        voltage: float,
        energy_budget: float,
    ) -> Optional[LUTEntry]:
        """Exhaustive-scan twin of :meth:`best_for_budget`."""
        if energy_budget < 0:
            raise ValueError(
                f"energy_budget must be >= 0, got {energy_budget}"
            )
        if self.centroids is None:
            raise RuntimeError("LUT not built; call build() first")
        solar_class = self.classify_solar(solar_slots)
        candidates = [
            e for e in self.entries
            if e.solar_class == solar_class
            and e.cap_index == cap_index
            and e.feasible
            and e.consumed_energy <= energy_budget + 1e-9
        ]
        if not candidates:
            return None
        voltages = sorted({e.voltage for e in candidates})
        nearest_v = min(voltages, key=lambda v: abs(v - voltage))
        at_v = [e for e in candidates if e.voltage == nearest_v]
        return min(at_v, key=lambda e: (e.dmr, e.consumed_energy))
