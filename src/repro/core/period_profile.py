"""Per-period scheduling profiles (the LUT generator's inner problem).

Section 4.2 of the paper replaces the raw INLP with a per-period
subproblem: *given a DMR target, minimise the energy drawn from the
super capacitor* (Eq. 15–16).  With at most 8 tasks per period the
dependence-closed task subsets can be enumerated exactly; what remains
is estimating, per subset, how much storage a schedule needs under the
period's solar profile.

Two models are provided:

* a **fluid bound** (:meth:`PeriodProfiler.profile`) — tasks are
  preemptible at slot granularity, so the minimum storage draw of a
  subset is the worst cumulative shortfall of supply against the
  demand-by-deadline curve.  This is exact for a single implicit
  processor and a lower bound with NVP binding; it is fully
  vectorised across subsets, which makes the long-term DP tractable;
* a **constructive schedule** (:func:`build_schedule_matrix`) — a
  greedy earliest-deadline / solar-matching assignment that produces
  the explicit ``x_{i,j,m}(n)`` matrix replayed through the engine
  (plan extraction), respecting dependences and one-task-per-NVP.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from ..schedulers.intratask import best_power_match

__all__ = [
    "closed_subsets",
    "PeriodProfile",
    "PeriodProfiler",
    "build_schedule_matrix",
]


def closed_subsets(graph: TaskGraph) -> np.ndarray:
    """All dependence-closed task subsets as a boolean matrix.

    A subset is *closed* when every predecessor of a member is also a
    member — only closed subsets can complete entirely (Eq. 7).  The
    empty set is included (DMR = 1 periods).  Shape:
    ``(num_subsets, num_tasks)``.
    """
    n = len(graph)
    if n > 16:
        raise ValueError(
            f"subset enumeration supports up to 16 tasks, got {n}"
        )
    masks: List[int] = []
    pred_masks = np.zeros(n, dtype=np.int64)
    for i in range(n):
        m = 0
        for p in graph.predecessors(i):
            m |= 1 << p
        pred_masks[i] = m
    for mask in range(1 << n):
        ok = True
        for i in range(n):
            if mask & (1 << i) and (mask & pred_masks[i]) != pred_masks[i]:
                ok = False
                break
        if ok:
            masks.append(mask)
    out = np.zeros((len(masks), n), dtype=bool)
    for row, mask in enumerate(masks):
        for i in range(n):
            out[row, i] = bool(mask & (1 << i))
    return out


@dataclasses.dataclass(frozen=True)
class PeriodProfile:
    """Best schedule summary per completion count for one period.

    Arrays are indexed by ``k`` = number of completed tasks, 0..N;
    infeasible ``k`` (no closed subset of that size) have
    ``feasible[k] = False``.

    Attributes
    ----------
    storage_need:
        Minimum energy the load must draw from storage, joules (fluid
        bound).
    surplus:
        Solar energy left over for charging at the PMU rail, joules.
    alpha:
        Load/solar ratio of the subset (Eq. 18); ``inf`` when the
        period has no solar.
    subsets:
        Boolean ``(N+1, N)`` matrix: the chosen subset per ``k``
        (the paper's ``te_{i,j}(n)``).
    """

    feasible: np.ndarray
    storage_need: np.ndarray
    surplus: np.ndarray
    alpha: np.ndarray
    subsets: np.ndarray

    @property
    def num_tasks(self) -> int:
        """Size of the task set this profile describes."""
        return self.subsets.shape[1]

    def dmr_of(self, k: int) -> float:
        """Period DMR when exactly ``k`` tasks complete."""
        return (self.num_tasks - k) / self.num_tasks


class PeriodProfiler:
    """Vectorised per-period profile computation for one task set.

    Parameters
    ----------
    graph / timeline:
        Workload and time structure.
    direct_efficiency:
        Efficiency of the direct solar channel (must match the node).
    """

    def __init__(
        self,
        graph: TaskGraph,
        timeline: Timeline,
        direct_efficiency: float = 0.98,
    ) -> None:
        if not 0.0 < direct_efficiency <= 1.0:
            raise ValueError(
                f"direct_efficiency must be in (0, 1], got {direct_efficiency}"
            )
        self.graph = graph
        self.timeline = timeline
        self.direct_efficiency = direct_efficiency

        self.subsets = closed_subsets(graph)  # (S, N)
        self._sizes = self.subsets.sum(axis=1)  # tasks per subset
        energies = np.array([t.energy for t in graph.tasks])
        self._subset_energy = self.subsets @ energies  # (S,)

        # Demand-by-deadline: cum_demand[s, m] = energy of subset-s
        # tasks whose deadline is checked at slot <= m.
        n_slots = timeline.slots_per_period
        deadline_slots = np.array(
            [timeline.deadline_slot(t.deadline) for t in graph.tasks]
        )
        due_by = (
            deadline_slots[None, :] <= np.arange(1, n_slots + 1)[:, None]
        )  # (N_s, N)
        self._cum_demand = self.subsets @ (due_by * energies[None, :]).T
        # shape (S, N_s)

    # ------------------------------------------------------------------
    def profile(self, solar_powers: np.ndarray) -> PeriodProfile:
        """Profile one period given its per-slot solar power (W)."""
        solar = np.asarray(solar_powers, dtype=float)
        if solar.shape != (self.timeline.slots_per_period,):
            raise ValueError(
                f"solar_powers must have shape "
                f"({self.timeline.slots_per_period},), got {solar.shape}"
            )
        dt = self.timeline.slot_seconds
        supply = np.cumsum(solar) * dt * self.direct_efficiency  # (N_s,)
        total_solar = float(solar.sum() * dt)
        usable_solar = total_solar * self.direct_efficiency

        shortfall = self._cum_demand - supply[None, :]
        need = np.maximum(shortfall.max(axis=1), 0.0)  # (S,)
        need = np.minimum(need, self._subset_energy)
        direct_used = self._subset_energy - need
        surplus = np.maximum(usable_solar - direct_used, 0.0)
        with np.errstate(divide="ignore"):
            alpha = np.where(
                total_solar > 0, self._subset_energy / max(total_solar, 1e-30),
                np.inf,
            )

        n = len(self.graph)
        feasible = np.zeros(n + 1, dtype=bool)
        best_need = np.full(n + 1, np.inf)
        best_surplus = np.zeros(n + 1)
        best_alpha = np.zeros(n + 1)
        best_subsets = np.zeros((n + 1, n), dtype=bool)
        for s in range(len(self.subsets)):
            k = int(self._sizes[s])
            better = need[s] < best_need[k] - 1e-12 or (
                abs(need[s] - best_need[k]) <= 1e-12
                and surplus[s] > best_surplus[k]
            )
            if not feasible[k] or better:
                feasible[k] = True
                best_need[k] = need[s]
                best_surplus[k] = surplus[s]
                best_alpha[k] = alpha[s] if np.isfinite(alpha[s]) else np.inf
                best_subsets[k] = self.subsets[s]
        best_need[~feasible] = np.inf
        return PeriodProfile(
            feasible=feasible,
            storage_need=best_need,
            surplus=best_surplus,
            alpha=best_alpha,
            subsets=best_subsets,
        )

    def profile_many(self, solar_matrix: np.ndarray) -> List[PeriodProfile]:
        """Profiles for each row of ``(num_periods, N_s)`` solar powers."""
        matrix = np.asarray(solar_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"solar_matrix must be 2-D, got shape {matrix.shape}"
            )
        return [self.profile(row) for row in matrix]


def build_schedule_matrix(
    graph: TaskGraph,
    timeline: Timeline,
    solar_powers: np.ndarray,
    subset: Sequence[bool],
    direct_efficiency: float = 0.98,
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy explicit schedule for a chosen subset.

    Earliest-deadline tasks with exhausted slack always run; remaining
    NVP-distinct candidates are added by best solar load match (the
    fine-grained pass of [9] restricted to the subset).  Returns
    ``(matrix, completed)`` where ``matrix`` is the boolean
    ``(N_s, N)`` execution table ``x`` and ``completed`` flags which
    subset tasks the greedy schedule actually finished.
    """
    subset = np.asarray(subset, dtype=bool)
    n = len(graph)
    if subset.shape != (n,):
        raise ValueError(f"subset must have shape ({n},), got {subset.shape}")
    solar = np.asarray(solar_powers, dtype=float)
    n_slots = timeline.slots_per_period
    if solar.shape != (n_slots,):
        raise ValueError(
            f"solar_powers must have shape ({n_slots},), got {solar.shape}"
        )
    dt = timeline.slot_seconds
    deadline_slots = np.array(
        [timeline.deadline_slot(t.deadline) for t in graph.tasks]
    )
    remaining = np.where(
        subset, [t.execution_time for t in graph.tasks], 0.0
    ).astype(float)
    matrix = np.zeros((n_slots, n), dtype=bool)

    for m in range(n_slots):
        done = remaining <= 1e-9
        ready = [
            i
            for i in range(n)
            if subset[i]
            and not done[i]
            and m < deadline_slots[i]
            and all(done[p] for p in graph.predecessors(i))
        ]
        if not ready:
            continue
        ready.sort(key=lambda i: (deadline_slots[i], i))
        # One candidate per NVP (EDF priority).
        per_nvp: dict = {}
        for i in ready:
            per_nvp.setdefault(graph.nvp_of(i), i)
        candidates = list(per_nvp.values())

        urgent = []
        for i in candidates:
            work_slots = int(-(-remaining[i] // dt))
            if deadline_slots[i] - m - work_slots <= 0:
                urgent.append(i)
        chosen = list(urgent)
        load = sum(graph.tasks[i].power for i in chosen)
        optional = [i for i in candidates if i not in urgent]
        budget = max(solar[m] * direct_efficiency - load, 0.0)
        powers = [graph.tasks[i].power for i in optional]
        for idx in best_power_match(powers, budget):
            chosen.append(optional[idx])
        for i in chosen:
            matrix[m, i] = True
            remaining[i] = max(remaining[i] - dt, 0.0)

    completed = subset & (remaining <= 1e-9)
    return matrix, completed
