"""The paper's contribution: offline optimisation, DBN, online scheduler."""

from .period_profile import (
    PeriodProfile,
    PeriodProfiler,
    build_schedule_matrix,
    closed_subsets,
)
from .longterm import (
    DPConfig,
    LongTermOptimizer,
    LongTermPlan,
    StorageGrid,
    TrainingSample,
    trace_period_matrix,
)
from .lut import LookupTable, LUTEntry, solar_classes
from .features import ALPHA_SCALE, FeatureCodec
from .ann import DBN, RBM, HeadSpec, MultiHeadMLP
from .online import (
    ALPHA_MAX,
    CoarseDecisionError,
    CoarsePolicy,
    DBNPolicy,
    HeuristicPolicy,
    InjectedInferenceFault,
    NearestSamplePolicy,
    ProposedScheduler,
    close_subset,
    fine_grained_decision,
    validate_coarse_decision,
)
from .optimal import StaticOptimalScheduler
from .horizon import RecedingHorizonScheduler
from .offline import OfflinePipeline, TrainedPolicy, asap_load_profile
from .overhead import OverheadModel, OverheadReport

__all__ = [
    "PeriodProfile",
    "PeriodProfiler",
    "build_schedule_matrix",
    "closed_subsets",
    "DPConfig",
    "StorageGrid",
    "TrainingSample",
    "LongTermPlan",
    "LongTermOptimizer",
    "trace_period_matrix",
    "LookupTable",
    "LUTEntry",
    "solar_classes",
    "FeatureCodec",
    "ALPHA_SCALE",
    "RBM",
    "HeadSpec",
    "MultiHeadMLP",
    "DBN",
    "ALPHA_MAX",
    "CoarseDecisionError",
    "CoarsePolicy",
    "InjectedInferenceFault",
    "validate_coarse_decision",
    "DBNPolicy",
    "NearestSamplePolicy",
    "HeuristicPolicy",
    "ProposedScheduler",
    "close_subset",
    "fine_grained_decision",
    "StaticOptimalScheduler",
    "RecedingHorizonScheduler",
    "OfflinePipeline",
    "TrainedPolicy",
    "asap_load_profile",
    "OverheadModel",
    "OverheadReport",
]
