"""Feature encoding between physical quantities and the DBN.

The DBN consumes normalised inputs (Figure 6): the per-slot solar
power of the previous period scaled by the panel's peak output, the
per-capacitor terminal voltages scaled by the full-charge voltage, and
the accumulated DMR (already in [0, 1]).  Outputs: the α scalar is
scaled by :data:`ALPHA_SCALE` so its regression head trains on O(1)
values.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..energy.capacitor import SuperCapacitor
from .longterm import TrainingSample

__all__ = ["FeatureCodec", "ALPHA_SCALE"]

#: α is stored scaled by this factor (α of ~1 is "load matches solar").
ALPHA_SCALE = 2.0


@dataclasses.dataclass(frozen=True)
class FeatureCodec:
    """Bidirectional encoder for DBN inputs/outputs.

    Parameters
    ----------
    slots_per_period:
        Number of per-slot solar inputs.
    capacitors:
        The bank (voltages are normalised per capacitor's ``V_H``).
    solar_scale:
        Power normalisation constant, watts (typically the panel's
        peak output).
    """

    slots_per_period: int
    capacitors: Tuple[SuperCapacitor, ...]
    solar_scale: float

    def __post_init__(self) -> None:
        if self.slots_per_period < 1:
            raise ValueError("slots_per_period must be >= 1")
        if not self.capacitors:
            raise ValueError("need at least one capacitor")
        if not self.solar_scale > 0:
            raise ValueError(f"solar_scale must be > 0, got {self.solar_scale}")

    @property
    def input_size(self) -> int:
        """Width of the encoded DBN input vector."""
        return self.slots_per_period + len(self.capacitors) + 1

    # ------------------------------------------------------------------
    def encode_input(
        self,
        prev_solar: np.ndarray,
        voltages: np.ndarray,
        accumulated_dmr: float,
    ) -> np.ndarray:
        """One normalised input row for the DBN."""
        prev_solar = np.asarray(prev_solar, dtype=float)
        voltages = np.asarray(voltages, dtype=float)
        if prev_solar.shape != (self.slots_per_period,):
            raise ValueError(
                f"prev_solar must have shape ({self.slots_per_period},), "
                f"got {prev_solar.shape}"
            )
        if voltages.shape != (len(self.capacitors),):
            raise ValueError(
                f"voltages must have shape ({len(self.capacitors)},), "
                f"got {voltages.shape}"
            )
        solar = np.clip(prev_solar / self.solar_scale, 0.0, 1.5)
        v_norm = np.array(
            [
                np.clip(v / cap.v_full, 0.0, 1.0)
                for v, cap in zip(voltages, self.capacitors)
            ]
        )
        dmr = np.clip(accumulated_dmr, 0.0, 1.0)
        return np.concatenate([solar, v_norm, [dmr]])

    def encode_samples(
        self, samples: Sequence[TrainingSample]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(X, cap_targets, alpha_targets, te_targets)`` matrices."""
        if not samples:
            raise ValueError("no samples to encode")
        x_rows: List[np.ndarray] = []
        caps: List[int] = []
        alphas: List[float] = []
        tes: List[np.ndarray] = []
        for s in samples:
            x_rows.append(
                self.encode_input(s.prev_solar, s.voltages, s.accumulated_dmr)
            )
            caps.append(s.cap_index)
            alphas.append(s.alpha / ALPHA_SCALE)
            tes.append(s.te.astype(float))
        return (
            np.vstack(x_rows),
            np.array(caps, dtype=int),
            np.array(alphas),
            np.vstack(tes),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def decode_alpha(alpha_scaled: float) -> float:
        """Back to the physical α (Eq. 18 ratio)."""
        return float(alpha_scaled) * ALPHA_SCALE
