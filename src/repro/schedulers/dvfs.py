"""DVFS-aware load-matching scheduler (the [5]/[6] baseline family).

Combines intra-task load matching with frequency selection on a
DVFS-capable node:

* **urgent** tasks run at the *slowest* frequency that still meets
  their deadline — slack is spent on voltage reduction, which saves
  energy quadratically;
* **optional** tasks are added at the most energy-efficient frequency
  while the resulting load still fits under the current solar power.

Like the other baselines this optimises the current period only; its
role in the reproduction is the related-work category the paper lists
third (DVFS integrated into load matching).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..node.dvfs import DVFSModel
from ..sim.views import PeriodStartView, SlotView
from .base import Scheduler, StaticLargestCapacitorMixin, nvp_filter

__all__ = ["DVFSLoadMatchingScheduler"]


class DVFSLoadMatchingScheduler(StaticLargestCapacitorMixin, Scheduler):
    """Slack-aware frequency scaling + solar load matching."""

    name = "dvfs-load-matching"

    def __init__(self, dvfs: DVFSModel | None = None) -> None:
        """``dvfs`` must match the node's model (defaults to the
        standard 4-level model)."""
        self.dvfs = dvfs or DVFSModel()

    def on_period_start(self, view: PeriodStartView) -> None:
        self.pin_largest(view)

    # ------------------------------------------------------------------
    def _chain_rate(self, view: SlotView, task: int, skip_seconds: float) -> float:
        """Worst-case required execution rate for ``task``.

        Slowing a producer eats its consumers' slack, so the required
        rate must consider every dependence path: for each descendant
        path the cumulative remaining work must finish before the
        path-end deadline.  ``skip_seconds`` shrinks the available time
        (to test the consequence of idling this slot).
        """
        graph = view.graph
        best = 0.0

        def dfs(node: int, work_before: float) -> None:
            nonlocal best
            work = work_before + view.remaining[node]
            time_left = (
                (view.deadline_slots[node] - view.slot) * view.slot_seconds
                - skip_seconds
            )
            if time_left <= 0:
                best = max(best, float("inf"))
            else:
                best = max(best, work / time_left)
            for succ in graph.successors(node):
                if not view.completed[succ] and not view.missed[succ]:
                    dfs(succ, work)

        dfs(task, 0.0)
        return best

    def on_slot(self, view: SlotView) -> Sequence[Tuple[int, float]]:
        ready = sorted(view.ready, key=lambda i: (view.deadline_slots[i], i))
        per_nvp = nvp_filter(view.graph, ready)
        if not per_nvp:
            return ()

        chosen: List[Tuple[int, float]] = []
        load = 0.0
        optional: List[Tuple[int, float]] = []
        for task in per_nvp:
            rate_now = self._chain_rate(view, task, skip_seconds=0.0)
            level_now = self.dvfs.slowest_meeting(rate_now)
            rate_if_skip = self._chain_rate(
                view, task, skip_seconds=view.slot_seconds
            )
            if self.dvfs.slowest_meeting(rate_if_skip) is None:
                # Skipping this slot would make the chain infeasible:
                # the task is urgent; run at the slowest safe level
                # (full speed if already doomed — salvage progress).
                level = level_now if level_now is not None else 1.0
                chosen.append((task, level))
                load += view.graph.tasks[task].power * self.dvfs.power_factor(
                    level
                )
            elif level_now is not None:
                # Optional: if run, never below the chain-safe level.
                floor_level = max(level_now, self.dvfs.most_efficient())
                optional.append((task, floor_level))

        # Optional tasks soak the remaining solar budget.
        budget = max(view.solar_power - load, 0.0)
        for task, level in optional:
            added = view.graph.tasks[task].power * self.dvfs.power_factor(
                level
            )
            if added <= budget + 1e-12:
                chosen.append((task, level))
                budget -= added
        return chosen
