"""Greedy EDF / ASAP scheduling.

Runs every ready task as soon as possible; within one NVP, the ready
task with the earliest deadline wins (EDF).  Because each task is bound
to one NVP and one task per NVP runs per slot (Eq. 9), per-NVP EDF *is*
the as-soon-as-possible rule the paper uses to extract the migration
pattern for capacitor sizing (Section 4.1).

This policy ignores energy entirely: on a sunny noon it is optimal, at
night it browns out immediately.  It doubles as the most naive
baseline and as the load generator for sizing.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.views import PeriodStartView, SlotView
from .base import Scheduler, StaticLargestCapacitorMixin, nvp_filter

__all__ = ["GreedyEDFScheduler", "slack_slots", "must_run_now"]


def slack_slots(view: SlotView, task: int) -> int:
    """Whole slots of slack before ``task``'s deadline.

    Slack = slots remaining until the deadline minus slots of work
    left; 0 means the task must run every remaining slot to finish.
    """
    remaining_slots = view.deadline_slots[task] - view.slot
    work_slots = int(
        -(-view.remaining[task] // view.slot_seconds)
    )  # ceil division
    return int(remaining_slots - work_slots)


def must_run_now(view: SlotView, task: int) -> bool:
    """True when skipping this slot would make the deadline infeasible."""
    return slack_slots(view, task) <= 0


class GreedyEDFScheduler(StaticLargestCapacitorMixin, Scheduler):
    """Run everything ready, earliest deadline first per NVP."""

    name = "asap-edf"

    def on_period_start(self, view: PeriodStartView) -> None:
        self.pin_largest(view)

    def on_slot(self, view: SlotView) -> Sequence[int]:
        candidates: List[int] = sorted(
            view.ready, key=lambda i: (view.deadline_slots[i], i)
        )
        return nvp_filter(view.graph, candidates)
