"""WCMA-based lazy scheduling (the paper's "Inter-task" baseline [3]).

Reimplementation of the HOLLOWS-style power-aware lazy scheduler of
Piorno et al. [3], the strongest prior inter-task policy the paper
compares against (Figure 8):

* at each period start a WCMA predictor estimates the harvestable
  energy of the period; together with the usable storage this gives
  the period's energy budget;
* an admission pass selects the task subset to attempt: tasks are
  admitted in deadline order, each dragging its not-yet-admitted
  ancestors along, while the (dependence-closed) cumulative energy
  fits the budget — the "best DMR in the present period" objective;
* per slot, admitted tasks run *lazily*: a task executes only when its
  slack is gone (it must run to meet the deadline) or when running it
  is free because solar power currently covers the whole chosen load.

The policy maximises single-period energy utilisation — and exhibits
exactly the long-term failure mode the paper targets: it spends the
whole afternoon surplus on the current queue and leaves nothing
migrated for the night.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..sim.views import PeriodStartView, PeriodEndView, SlotView
from ..solar.prediction import SolarPredictor, WCMAPredictor
from ..tasks.graph import TaskGraph
from ..timeline import Timeline
from .base import Scheduler, StaticLargestCapacitorMixin, nvp_filter
from .greedy import must_run_now

__all__ = ["InterTaskScheduler", "admit_by_energy"]


def admit_by_energy(
    graph: TaskGraph, budget: float, margin: float = 1.0
) -> Set[int]:
    """Deadline-ordered, dependence-closed greedy admission.

    Tasks are considered in deadline order; admitting a task also
    admits its not-yet-admitted ancestors.  A task (with its ancestors)
    enters iff the running energy total stays within ``budget * margin``.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    order = sorted(
        range(len(graph)), key=lambda i: (graph.tasks[i].deadline, i)
    )
    admitted: Set[int] = set()
    spent = 0.0
    limit = budget * margin
    for task in order:
        if task in admitted:
            continue
        closure = [task]
        stack = list(graph.predecessors(task))
        while stack:
            p = stack.pop()
            if p in admitted or p in closure:
                continue
            closure.append(p)
            stack.extend(graph.predecessors(p))
        cost = sum(graph.tasks[t].energy for t in closure)
        if spent + cost <= limit:
            admitted.update(closure)
            spent += cost
    return admitted


class InterTaskScheduler(StaticLargestCapacitorMixin, Scheduler):
    """Lazy inter-task scheduling with WCMA energy prediction."""

    name = "inter-task-lsa"

    def __init__(
        self,
        predictor: Optional[SolarPredictor] = None,
        admission_margin: float = 1.0,
        storage_discount: float = 0.7,
    ) -> None:
        """
        Parameters
        ----------
        predictor:
            Per-period energy predictor; a :class:`WCMAPredictor` is
            created at bind time when omitted.
        admission_margin:
            Multiplier on the energy budget during admission (>1 is
            optimistic, <1 conservative).
        storage_discount:
            Usable storage is discounted by this factor in the budget
            (round-trip losses mean a stored joule serves less than a
            direct one).
        """
        if not admission_margin > 0:
            raise ValueError(
                f"admission_margin must be > 0, got {admission_margin}"
            )
        if not 0.0 <= storage_discount <= 1.0:
            raise ValueError(
                f"storage_discount must be in [0, 1], got {storage_discount}"
            )
        self._predictor_arg = predictor
        self.predictor: Optional[SolarPredictor] = predictor
        self.admission_margin = admission_margin
        self.storage_discount = storage_discount
        self._admitted: Set[int] = set()
        self._observed_any = False

    def bind(self, timeline: Timeline, graph: TaskGraph) -> None:
        super().bind(timeline, graph)
        self.predictor = self._predictor_arg or WCMAPredictor(timeline)
        self._admitted = set()
        self._observed_any = False

    # ------------------------------------------------------------------
    def on_period_start(self, view: PeriodStartView) -> None:
        assert self.predictor is not None
        self.pin_largest(view)
        if not self._observed_any:
            # Cold start: no history yet, so attempt the full set.
            self._admitted = set(range(len(view.graph)))
            return
        predicted = self.predictor.predict(view.day, view.period)
        budget = predicted + self.storage_discount * view.bank.active_usable_energy
        self._admitted = admit_by_energy(
            view.graph, budget, margin=self.admission_margin
        )

    def on_slot(self, view: SlotView) -> Sequence[int]:
        ready = [t for t in view.ready if t in self._admitted]
        if not ready:
            return ()
        ready.sort(key=lambda i: (view.deadline_slots[i], i))
        per_nvp = nvp_filter(view.graph, ready)

        # Mandatory: tasks out of slack.
        chosen: List[int] = [t for t in per_nvp if must_run_now(view, t)]
        load = sum(view.graph.tasks[t].power for t in chosen)

        # Opportunistic, at inter-task granularity: the policy decides
        # per queue, not per slot/subset — when current solar covers
        # the whole candidate load the queue runs, otherwise only the
        # mandatory tasks do (lazy: let the capacitor charge).  The
        # finer per-subset matching is exactly what the intra-task
        # scheduler [9] adds over this baseline.
        total_load = sum(view.graph.tasks[t].power for t in per_nvp)
        if total_load <= view.solar_power + 1e-12:
            return per_nvp
        return chosen

    def on_period_end(self, view: PeriodEndView) -> None:
        assert self.predictor is not None
        self.predictor.observe(view.day, view.period, view.observed_energy)
        self._observed_any = True
