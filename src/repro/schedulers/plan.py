"""Replay of precomputed schedules.

The static optimal upper bound (Section 4.2) and the offline training
sample generator both produce explicit scheduling plans — per-period
slot×task execution matrices plus a per-day capacitor choice.
:class:`PlanScheduler` replays such a plan through the engine so the
plan's DMR and energy flows are measured under exactly the same
physics as the online policies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..sim.views import PeriodStartView, SlotView
from .base import Scheduler

__all__ = ["SchedulePlan", "PlanScheduler"]


@dataclasses.dataclass
class SchedulePlan:
    """Explicit long-horizon schedule.

    Attributes
    ----------
    assignments:
        ``(day, period) -> bool matrix [slots_per_period, num_tasks]``
        — the paper's ``x_{i,j,m}(n)``.
    capacitor_by_day:
        ``day -> capacitor index`` (``C_{h,i}``); optional.
    """

    assignments: Dict[Tuple[int, int], np.ndarray] = dataclasses.field(
        default_factory=dict
    )
    capacitor_by_day: Dict[int, int] = dataclasses.field(default_factory=dict)

    def set_period(
        self, day: int, period: int, matrix: np.ndarray
    ) -> None:
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError(
                f"assignment matrix must be 2-D, got shape {matrix.shape}"
            )
        self.assignments[(day, period)] = matrix

    def period_matrix(
        self, day: int, period: int, slots: int, tasks: int
    ) -> np.ndarray:
        """The stored matrix, or all-idle when the period has no plan."""
        matrix = self.assignments.get((day, period))
        if matrix is None:
            return np.zeros((slots, tasks), dtype=bool)
        if matrix.shape != (slots, tasks):
            raise ValueError(
                f"plan for ({day}, {period}) has shape {matrix.shape}, "
                f"expected {(slots, tasks)}"
            )
        return matrix


class PlanScheduler(Scheduler):
    """Execute a :class:`SchedulePlan` verbatim (modulo legality).

    Entries for tasks that are not ready (dependence violations caused
    by earlier brownouts, already-finished work) are dropped rather
    than raised, because a plan computed under ideal energy assumptions
    may become partially infeasible when the physics disagrees.
    """

    name = "plan"

    def __init__(
        self,
        plan: SchedulePlan,
        name: Optional[str] = None,
        force_capacitor: bool = True,
    ) -> None:
        """``force_capacitor=True`` (default) bypasses the Eq. (22)
        threshold rule — offline plans already decided when to switch."""
        self.plan = plan
        self.force = force_capacitor
        if name is not None:
            self.name = name

    def on_period_start(self, view: PeriodStartView) -> None:
        cap = self.plan.capacitor_by_day.get(view.day)
        if cap is not None:
            if self.force:
                view.force_capacitor(cap)
            else:
                view.request_capacitor(cap)

    def on_slot(self, view: SlotView) -> Sequence[int]:
        matrix = self.plan.period_matrix(
            view.day,
            view.period,
            view.timeline.slots_per_period,
            len(view.graph),
        )
        wanted = np.flatnonzero(matrix[view.slot])
        ready = set(view.ready)
        return [int(t) for t in wanted if int(t) in ready]
