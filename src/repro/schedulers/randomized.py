"""A legal-but-arbitrary randomized policy.

Used as chaos fodder by the verification layer and the property-based
test suite: whatever a :class:`RandomScheduler` decides, the engine's
physical and accounting invariants must hold.  It is also a useful
floor baseline — any purposeful policy should beat it.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Every slot: a random subset of the ready set, at most one task
    per NVP.  Seeded, so runs are reproducible."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def on_slot(self, view):
        chosen = []
        used = set()
        for task in view.ready:
            if self.rng.random() < 0.5:
                nvp = view.graph.nvp_of(task)
                if nvp not in used:
                    used.add(nvp)
                    chosen.append(task)
        return chosen
