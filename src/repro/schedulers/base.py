"""Scheduler interface.

A scheduler makes two kinds of decisions, mirroring the paper's
coarse/fine split:

* **per period** (:meth:`on_period_start`) — which capacitor to request
  and any per-period planning (task subset, scheduling pattern);
* **per slot** (:meth:`on_slot`) — which ready tasks to execute in the
  current slot, at most one per NVP.

The engine enforces the hard constraints (readiness Eq. 7, one task per
NVP Eq. 9, no execution past the deadline) and realises the energy
consequences; schedulers only choose.  :meth:`on_period_end` feeds back
the observed solar energy so causal predictors can update.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from ..obs.events import NULL_OBSERVER, Observer
from ..sim.views import PeriodEndView, PeriodStartView, SlotView
from ..tasks.graph import TaskGraph
from ..timeline import Timeline

__all__ = ["Scheduler", "nvp_filter", "StaticLargestCapacitorMixin"]


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: Human-readable policy name used in reports and figures.
    name: str = "scheduler"

    #: Event/metrics emitter; the engine attaches its observer at run
    #: start, standalone schedulers keep the disabled default.
    observer: Observer = NULL_OBSERVER

    def bind(self, timeline: Timeline, graph: TaskGraph) -> None:
        """Called once before a run; default stores the references."""
        self.timeline = timeline
        self.graph = graph
        self._cap_pinned = False  # reset StaticLargestCapacitorMixin state

    def on_period_start(self, view: PeriodStartView) -> None:
        """Coarse-grained per-period decision hook (optional)."""

    @abc.abstractmethod
    def on_slot(self, view: SlotView) -> Sequence[int]:
        """Return the task indices to execute in this slot."""

    def on_period_end(self, view: PeriodEndView) -> None:
        """Feedback hook after each period (optional)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StaticLargestCapacitorMixin:
    """Single-capacitor behaviour for baseline policies.

    The prior-work baselines have no capacitor-selection logic; on the
    dual-channel node they behave as if a single storage element were
    installed.  This mixin pins the largest-capacity capacitor at the
    first period (when everything is drained and the switch is free)
    and never touches the selection again.
    """

    _cap_pinned = False

    def pin_largest(self, view) -> None:
        if self._cap_pinned:
            return
        capacitances = view.bank.capacitances
        view.force_capacitor(int(capacitances.argmax()))
        self._cap_pinned = True


def nvp_filter(graph: TaskGraph, candidates: Sequence[int]) -> List[int]:
    """Keep at most one task per NVP, preserving candidate order.

    Helper for greedy schedulers: the first candidate claiming an NVP
    wins (so pass candidates in priority order).
    """
    chosen: List[int] = []
    used: Dict[int, bool] = {}
    for task in candidates:
        nvp = graph.nvp_of(task)
        if used.get(nvp):
            continue
        used[nvp] = True
        chosen.append(task)
    return chosen
