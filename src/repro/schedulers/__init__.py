"""Scheduling policies: baselines from the literature plus plan replay.

The paper's proposed scheduler lives in :mod:`repro.core.online`; this
package holds the interface and the comparison baselines.
"""

from .base import Scheduler, StaticLargestCapacitorMixin, nvp_filter
from .greedy import GreedyEDFScheduler, must_run_now, slack_slots
from .lsa import InterTaskScheduler, admit_by_energy
from .intratask import IntraTaskScheduler, best_power_match
from .dvfs import DVFSLoadMatchingScheduler
from .plan import PlanScheduler, SchedulePlan
from .randomized import RandomScheduler

__all__ = [
    "Scheduler",
    "StaticLargestCapacitorMixin",
    "nvp_filter",
    "DVFSLoadMatchingScheduler",
    "GreedyEDFScheduler",
    "slack_slots",
    "must_run_now",
    "InterTaskScheduler",
    "admit_by_energy",
    "IntraTaskScheduler",
    "best_power_match",
    "PlanScheduler",
    "RandomScheduler",
    "SchedulePlan",
]
