"""Intra-task fine-grained load matching (the paper's baseline [9]).

Reimplementation of the intra-task scheduling idea of Zhang et al.
(ICCD 2014): tasks are preemptible at slot granularity, and in every
slot the scheduler picks the subset of ready tasks whose summed power
*best matches* the currently available solar power — executing exactly
when energy is free, idling when it is not, and overriding the match
only for tasks that have run out of slack.

Like the inter-task baseline it optimises the current period only: it
is even better than LSA at soaking up the solar curve (finer-grained
matching), and even more exposed at night when there is nothing to
match against.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

from ..sim.views import PeriodStartView, SlotView
from .base import Scheduler, StaticLargestCapacitorMixin, nvp_filter
from .greedy import must_run_now

__all__ = ["IntraTaskScheduler", "best_power_match"]


def best_power_match(
    powers: Sequence[float],
    budget: float,
    max_exact: int = 12,
) -> Tuple[int, ...]:
    """Subset of ``powers`` with the largest sum not exceeding ``budget``.

    Exact subset enumeration up to ``max_exact`` items (the paper's
    task sets have at most 8 tasks), greedy descending fill beyond.
    Returns the chosen indices.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    n = len(powers)
    if n == 0:
        return ()
    if n <= max_exact:
        best: Tuple[int, ...] = ()
        best_sum = 0.0
        for r in range(1, n + 1):
            for combo in combinations(range(n), r):
                total = sum(powers[i] for i in combo)
                if total <= budget + 1e-12 and total > best_sum:
                    best, best_sum = combo, total
        return best
    order = sorted(range(n), key=lambda i: -powers[i])
    chosen: List[int] = []
    total = 0.0
    for i in order:
        if total + powers[i] <= budget + 1e-12:
            chosen.append(i)
            total += powers[i]
    return tuple(sorted(chosen))


class IntraTaskScheduler(StaticLargestCapacitorMixin, Scheduler):
    """Per-slot best load matching against the measured solar power."""

    name = "intra-task"

    def on_period_start(self, view: PeriodStartView) -> None:
        self.pin_largest(view)

    def __init__(self, allow_storage_for_urgent: bool = True) -> None:
        """
        Parameters
        ----------
        allow_storage_for_urgent:
            When True (default), tasks with no slack run even if solar
            does not cover them (drawing storage); when False the
            policy is pure load matching.
        """
        self.allow_storage_for_urgent = allow_storage_for_urgent

    def on_slot(self, view: SlotView) -> Sequence[int]:
        ready = sorted(view.ready, key=lambda i: (view.deadline_slots[i], i))
        per_nvp = nvp_filter(view.graph, ready)
        if not per_nvp:
            return ()

        urgent = (
            [t for t in per_nvp if must_run_now(view, t)]
            if self.allow_storage_for_urgent
            else []
        )
        urgent_load = sum(view.graph.tasks[t].power for t in urgent)

        optional = [t for t in per_nvp if t not in urgent]
        budget = max(view.solar_power - urgent_load, 0.0)
        powers = [view.graph.tasks[t].power for t in optional]
        picked = best_power_match(powers, budget)
        return urgent + [optional[i] for i in picked]
