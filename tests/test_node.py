"""Tests for the node architecture: NVP, PMU, SensorNode."""

import numpy as np
import pytest

from repro.energy import CapacitorBank, SuperCapacitor
from repro.node import NVP, PMU, SensorNode


def make_pmu(caps=(10.0,), voltages=None, direct=1.0, threshold=2.0):
    bank = CapacitorBank(
        [SuperCapacitor(capacitance=c) for c in caps],
        initial_voltages=voltages,
    )
    return PMU(bank=bank, direct_efficiency=direct, switch_threshold=threshold)


class TestNVP:
    def test_power_cycle_energy(self):
        nvp = NVP(index=0)
        spent = nvp.power_fail()
        assert spent == nvp.backup_energy
        assert not nvp.powered
        assert nvp.power_up() == nvp.restore_energy
        assert nvp.powered

    def test_double_fail_is_free(self):
        nvp = NVP(index=0)
        nvp.power_fail()
        assert nvp.power_fail() == 0.0
        assert nvp.brownout_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NVP(index=-1)
        with pytest.raises(ValueError):
            NVP(index=0, backup_energy=-1.0)


class TestPMUSupply:
    def test_pure_solar_surplus_charges(self):
        pmu = make_pmu(voltages=[2.0])
        flow = pmu.supply_slot(solar_power=0.08, load_power=0.03, slot_seconds=30)
        assert flow.run_fraction == 1.0
        assert flow.direct_energy == pytest.approx(0.03 * 30)
        assert flow.storage_energy == 0.0
        assert flow.charged_energy > 0
        assert flow.offered_surplus == pytest.approx(0.05 * 30)

    def test_no_load_all_surplus(self):
        pmu = make_pmu(voltages=[2.0])
        flow = pmu.supply_slot(0.08, 0.0, 30)
        assert flow.load_energy == 0.0
        assert flow.offered_surplus == pytest.approx(0.08 * 30)

    def test_deficit_served_from_storage(self):
        pmu = make_pmu(voltages=[4.0])
        flow = pmu.supply_slot(0.01, 0.05, 30)
        assert flow.run_fraction == pytest.approx(1.0)
        assert flow.storage_energy == pytest.approx(0.04 * 30, rel=1e-6)

    def test_empty_storage_browns_out(self):
        pmu = make_pmu(voltages=[1.0])  # at cut-off: nothing usable
        flow = pmu.supply_slot(0.01, 0.05, 30)
        assert flow.run_fraction == pytest.approx(0.0, abs=1e-9)
        assert flow.storage_energy == 0.0
        # The panel still charges the capacitor during the dead time.
        assert flow.offered_surplus > 0

    def test_partial_brownout_fraction(self):
        # Storage holds less than the deficit: fractional run.
        cap = SuperCapacitor(capacitance=0.5)
        bank = CapacitorBank([cap], initial_voltages=[1.3])
        pmu = PMU(bank=bank, direct_efficiency=1.0)
        flow = pmu.supply_slot(0.0, 0.05, 30)
        assert 0.0 < flow.run_fraction < 1.0
        assert flow.load_energy == pytest.approx(
            0.05 * 30 * flow.run_fraction, rel=1e-6
        )

    def test_direct_efficiency_derates_solar(self):
        lossy = make_pmu(direct=0.5, voltages=[4.0])
        flow = lossy.supply_slot(0.06, 0.06, 30)
        # Usable solar is only 0.03 W; the rest comes from storage.
        assert flow.storage_energy == pytest.approx(0.03 * 30, rel=1e-6)

    def test_validation(self):
        pmu = make_pmu()
        with pytest.raises(ValueError):
            pmu.supply_slot(-1.0, 0.0, 30)
        with pytest.raises(ValueError):
            pmu.supply_slot(0.0, -1.0, 30)
        with pytest.raises(ValueError):
            pmu.supply_slot(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            PMU(bank=make_pmu().bank, direct_efficiency=0.0)
        with pytest.raises(ValueError):
            PMU(bank=make_pmu().bank, switch_threshold=-1.0)


class TestPMUSwitching:
    def test_request_respects_threshold(self):
        pmu = make_pmu(caps=(1.0, 10.0), voltages=[4.0, 1.0], threshold=2.0)
        assert not pmu.request_capacitor(1)  # 1F@4V holds 7.5 J > 2 J
        assert pmu.bank.active_index == 0

    def test_force_overrides(self):
        pmu = make_pmu(caps=(1.0, 10.0), voltages=[4.0, 1.0])
        pmu.force_capacitor(1)
        assert pmu.bank.active_index == 1


class TestSensorNode:
    def test_assembly(self):
        node = SensorNode(
            [SuperCapacitor(capacitance=c) for c in (1.0, 10.0)], num_nvps=3
        )
        assert node.num_nvps == 3
        assert node.num_capacitors == 2
        assert node.panel.peak_power == pytest.approx(0.0945)

    def test_brownout_overhead_scales_with_nvps(self):
        one = SensorNode([SuperCapacitor(capacitance=1.0)], num_nvps=1)
        four = SensorNode([SuperCapacitor(capacitance=1.0)], num_nvps=4)
        assert four.brownout_overhead() == pytest.approx(
            4 * one.brownout_overhead()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNode([SuperCapacitor(capacitance=1.0)], num_nvps=0)
