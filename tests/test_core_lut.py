"""Tests for the explicit Eq. (13) lookup table."""

import numpy as np
import pytest

from repro.core.lut import LookupTable, LUTEntry, solar_classes
from repro.energy import SuperCapacitor
from repro.tasks import ecg, wam
from repro.timeline import Timeline


def tl_of():
    return Timeline(1, 4, 20, 30.0)


def caps_of(values=(1.0, 10.0)):
    return [SuperCapacitor(capacitance=c) for c in values]


def solar_history(num=16, slots=20, seed=0):
    """Mixed dark/dim/bright period profiles."""
    rng = np.random.default_rng(seed)
    levels = rng.choice([0.0, 0.02, 0.06, 0.12], size=num)
    base = np.tile(levels[:, None], (1, slots))
    return base + rng.random((num, slots)) * 0.005


class TestSolarClasses:
    def test_centroid_count(self):
        centroids, assignment = solar_classes(solar_history(), 4)
        assert centroids.shape == (4, 20)
        assert assignment.shape == (16,)
        assert set(assignment) <= set(range(4))

    def test_fewer_periods_than_classes(self):
        centroids, _ = solar_classes(solar_history(num=3), 8)
        assert centroids.shape[0] == 3

    def test_members_closest_to_own_centroid(self):
        data = solar_history()
        centroids, assignment = solar_classes(data, 4)
        for i, row in enumerate(data):
            distances = ((centroids - row) ** 2).sum(axis=1)
            assert distances[assignment[i]] == pytest.approx(
                distances.min()
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            solar_classes(np.zeros(5), 2)
        with pytest.raises(ValueError):
            solar_classes(solar_history(), 0)


class TestLookupTable:
    def build(self, graph=None, caps=None, classes=3, levels=3):
        graph = graph or ecg()
        table = LookupTable(
            graph,
            tl_of(),
            caps or caps_of(),
            num_solar_classes=classes,
            num_voltage_levels=levels,
        )
        return table.build(solar_history())

    def test_entry_count_structure(self):
        table = self.build()
        assert len(table) > 0
        # Entries exist for every (class, capacitor) combination.
        combos = {(e.solar_class, e.cap_index) for e in table.entries}
        assert combos == {(c, h) for c in range(3) for h in range(2)}

    def test_query_before_build_raises(self):
        table = LookupTable(ecg(), tl_of(), caps_of())
        with pytest.raises(RuntimeError):
            table.query(0.0, np.zeros(20), 0, 1.0)

    def test_query_returns_closest_dmr(self):
        table = self.build()
        bright = np.full(20, 0.12)
        entry = table.query(0.0, bright, cap_index=1, voltage=5.0)
        assert entry is not None
        # Bright period, full capacitor: completing everything is
        # feasible, so the DMR-0 target is met exactly.
        assert entry.dmr == pytest.approx(0.0)
        assert entry.te.all()

    def test_query_respects_feasibility(self):
        table = self.build()
        dark = np.zeros(20)
        # Empty capacitor at cut-off: full completion needs storage it
        # does not have; the feasible answer completes nothing.
        entry = table.query(0.0, dark, cap_index=0, voltage=1.0)
        assert entry is not None
        assert entry.feasible
        # A drained 1F capacitor cannot fund full completion in the
        # (near-)dark class, so some tasks must be shed.
        assert entry.dmr > 0.0
        assert entry.consumed_energy == pytest.approx(0.0, abs=1e-9)

    def test_consumed_energy_monotone_in_dmr(self):
        """More completions can only draw more storage (same inputs)."""
        table = self.build()
        dark = np.zeros(20)
        entries = [
            e
            for e in table.entries
            if e.solar_class == table.classify_solar(dark)
            and e.cap_index == 1
            and abs(e.voltage - 5.0) < 1e-6
        ]
        entries.sort(key=lambda e: e.dmr, reverse=True)  # fewer -> more
        consumed = [e.consumed_energy for e in entries]
        assert consumed == sorted(consumed)

    def test_best_for_budget_zero_budget(self):
        table = self.build()
        dark = np.zeros(20)
        entry = table.best_for_budget(
            dark, cap_index=1, voltage=5.0, energy_budget=0.0
        )
        assert entry is not None
        assert entry.consumed_energy == pytest.approx(0.0)
        # With no storage allowance, only the solar of the (near-dark)
        # class can fund completions; a larger budget does better.
        richer = table.best_for_budget(
            dark, cap_index=1, voltage=5.0, energy_budget=1e6
        )
        assert richer.dmr <= entry.dmr

    def test_best_for_budget_large_budget(self):
        table = self.build()
        dark = np.zeros(20)
        entry = table.best_for_budget(
            dark, cap_index=1, voltage=5.0, energy_budget=1e6
        )
        assert entry is not None
        assert entry.dmr < 1.0

    def test_best_for_budget_negative_rejected(self):
        table = self.build()
        with pytest.raises(ValueError):
            table.best_for_budget(np.zeros(20), 0, 1.0, -1.0)

    def test_query_bad_capacitor(self):
        table = self.build()
        with pytest.raises(IndexError):
            table.query(0.0, np.zeros(20), cap_index=7, voltage=1.0)

    def test_alpha_recorded_for_nonzero_k(self):
        table = self.build()
        bright = np.full(20, 0.12)
        entry = table.query(0.0, bright, cap_index=1, voltage=5.0)
        assert entry.alpha > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupTable(wam(), tl_of(), [])
        with pytest.raises(ValueError):
            LookupTable(wam(), tl_of(), caps_of(), num_voltage_levels=1)
