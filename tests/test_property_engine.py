"""Property-based tests of the simulation engine's invariants.

A randomised scheduler (any legal subset of the ready set each slot)
run on random workloads and weather must never violate the physical
and accounting invariants, whatever it decides.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import quick_node, simulate
from repro.schedulers import Scheduler
from repro.solar import SolarTrace
from repro.tasks import random_benchmark
from repro.timeline import Timeline


class RandomScheduler(Scheduler):
    """Legal but arbitrary: every slot, a random subset of ready tasks
    with at most one per NVP."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def on_slot(self, view):
        chosen = []
        used = set()
        for task in view.ready:
            if self.rng.random() < 0.5:
                nvp = view.graph.nvp_of(task)
                if nvp not in used:
                    used.add(nvp)
                    chosen.append(task)
        return chosen


def random_trace(tl: Timeline, seed: int) -> SolarTrace:
    rng = np.random.default_rng(seed)
    power = rng.random(
        (tl.num_days, tl.periods_per_day, tl.slots_per_period)
    ) * rng.choice([0.0, 0.05, 0.15])
    return SolarTrace(tl, power)


@st.composite
def engine_setup(draw):
    graph_seed = draw(st.integers(0, 300))
    trace_seed = draw(st.integers(0, 300))
    sched_seed = draw(st.integers(0, 300))
    periods = draw(st.integers(1, 3))
    graph = random_benchmark(graph_seed)
    tl = Timeline(1, periods, 20, 30.0)
    return graph, tl, random_trace(tl, trace_seed), RandomScheduler(sched_seed)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(engine_setup())
def test_engine_invariants_hold_for_any_legal_scheduler(setup):
    graph, tl, trace, scheduler = setup
    node = quick_node(graph)
    result = simulate(node, graph, trace, scheduler, record_slots=True)

    # DMR is a proper rate everywhere.
    series = result.dmr_series()
    assert np.all((series >= 0.0) & (series <= 1.0))
    assert 0.0 <= result.dmr <= 1.0

    # Energy conservation: the load can never consume more than the
    # harvest (storage only time-shifts, with losses).
    assert result.total_load_energy <= result.total_solar_energy + 1e-6

    # Per-period accounting: direct + storage = load; all flows >= 0.
    for p in result.periods:
        assert p.load_energy == pytest.approx(
            p.direct_energy + p.storage_energy, abs=1e-9
        )
        assert p.solar_energy >= -1e-12
        assert p.storage_energy >= -1e-12
        assert p.charged_energy >= -1e-12
        assert p.leakage_energy >= -1e-12
        assert 0 <= p.miss_count <= len(graph)

    # Physical voltage bounds in every recorded slot.
    v = result.slots.active_voltage
    v_full = max(s.capacitor.v_full for s in node.bank.states)
    assert np.all(v >= -1e-9)
    assert np.all(v <= v_full + 1e-6)

    # Run fractions are fractions.
    rf = result.slots.run_fraction
    assert np.all((rf >= 0.0) & (rf <= 1.0 + 1e-9))

    # Load power never exceeds the workload's physical maximum.
    assert np.all(result.slots.load_power <= graph.max_power() + 1e-9)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph_seed=st.integers(0, 300),
    power=st.floats(0.0, 0.5),
)
def test_abundance_monotonicity(graph_seed, power):
    """More solar can never make the greedy scheduler's DMR worse."""
    from repro.schedulers import GreedyEDFScheduler

    graph = random_benchmark(graph_seed)
    tl = Timeline(1, 2, 20, 30.0)
    lo = SolarTrace(tl, np.full((1, 2, 20), power))
    hi = SolarTrace(tl, np.full((1, 2, 20), power + 0.3))
    dmr_lo = simulate(quick_node(graph), graph, lo, GreedyEDFScheduler()).dmr
    dmr_hi = simulate(quick_node(graph), graph, hi, GreedyEDFScheduler()).dmr
    assert dmr_hi <= dmr_lo + 1e-9


@settings(max_examples=25, deadline=None)
@given(graph_seed=st.integers(0, 300))
def test_completed_tasks_never_marked_missed(graph_seed):
    """A task that finished before its deadline is never a miss."""
    from repro.schedulers import GreedyEDFScheduler

    graph = random_benchmark(graph_seed)
    tl = Timeline(1, 1, 20, 30.0)
    trace = SolarTrace(tl, np.full((1, 1, 20), 1.0))
    result = simulate(quick_node(graph), graph, trace, GreedyEDFScheduler())
    assert result.dmr == 0.0
