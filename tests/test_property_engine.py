"""Property-based tests of the simulation engine's invariants.

A randomised scheduler (any legal subset of the ready set each slot)
run on random workloads and weather must never violate the physical
and accounting invariants, whatever it decides.  The generators live
in :mod:`repro.verify.strategies`; the invariant assertions here go
through the shared :func:`repro.verify.verify_run` suite so the tests
and ``repro verify`` enforce exactly the same physics.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import quick_node, simulate
from repro.solar import SolarTrace
from repro.tasks import random_benchmark
from repro.timeline import Timeline
from repro.verify import RunContext, verify_run
from repro.verify.strategies import constant_trace, engine_setups


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(engine_setups())
def test_engine_invariants_hold_for_any_legal_scheduler(setup):
    graph, tl, trace, scheduler = setup
    node = quick_node(graph)
    v_full = max(s.capacitor.v_full for s in node.bank.states)
    result = simulate(node, graph, trace, scheduler, record_slots=True)

    # DMR is a proper rate everywhere.
    series = result.dmr_series()
    assert np.all((series >= 0.0) & (series <= 1.0))
    assert 0.0 <= result.dmr <= 1.0

    # Energy conservation, per-period accounting, voltage bounds, run
    # fractions and DMR bookkeeping: the full shared invariant suite.
    outcomes = verify_run(
        RunContext(result=result, graph=graph, v_max=v_full)
    )
    failed = [o for o in outcomes if not o.passed]
    assert not failed, "\n".join(
        f"{o.name}: {v.message}" for o in failed for v in o.errors
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph_seed=st.integers(0, 300),
    power=st.floats(0.0, 0.5),
)
def test_abundance_monotonicity(graph_seed, power):
    """More solar can never make the greedy scheduler's DMR worse."""
    from repro.schedulers import GreedyEDFScheduler

    graph = random_benchmark(graph_seed)
    tl = Timeline(1, 2, 20, 30.0)
    lo = constant_trace(tl, power)
    hi = constant_trace(tl, power + 0.3)
    dmr_lo = simulate(quick_node(graph), graph, lo, GreedyEDFScheduler()).dmr
    dmr_hi = simulate(quick_node(graph), graph, hi, GreedyEDFScheduler()).dmr
    assert dmr_hi <= dmr_lo + 1e-9


@settings(max_examples=25, deadline=None)
@given(graph_seed=st.integers(0, 300))
def test_completed_tasks_never_marked_missed(graph_seed):
    """A task that finished before its deadline is never a miss."""
    from repro.schedulers import GreedyEDFScheduler

    graph = random_benchmark(graph_seed)
    tl = Timeline(1, 1, 20, 30.0)
    trace = SolarTrace(tl, np.full((1, 1, 20), 1.0))
    result = simulate(quick_node(graph), graph, trace, GreedyEDFScheduler())
    assert result.dmr == 0.0
