"""Golden tests: DP plans vs exhaustive search on tiny instances.

On instances small enough to enumerate every possible schedule, the
long-term DP's extracted plan must match the brute-force optimum when
both are replayed through the *same* engine physics.  This pins the
whole pipeline — profiler, storage grid, DP, plan extraction — against
ground truth.
"""

import itertools

import numpy as np
import pytest

from repro import simulate
from repro.core import DPConfig, LongTermOptimizer, StaticOptimalScheduler
from repro.energy import SuperCapacitor
from repro.node import SensorNode
from repro.schedulers import PlanScheduler, SchedulePlan
from repro.solar import SolarTrace
from repro.tasks import Task, TaskGraph
from repro.timeline import Timeline


def brute_force_best_dmr(node_factory, graph, trace):
    """Enumerate every per-slot schedule of a single-task workload."""
    tl = trace.timeline
    slots = tl.slots_per_period
    periods = tl.total_periods
    assert len(graph) == 1, "exhaustive search supports one task"
    best = 1.1
    per_period_options = list(itertools.product([False, True], repeat=slots))
    for combo in itertools.product(per_period_options, repeat=periods):
        plan = SchedulePlan()
        for t, slot_choices in enumerate(combo):
            day, period = tl.unflatten_period(t)
            matrix = np.array(slot_choices, dtype=bool)[:, None]
            plan.set_period(day, period, matrix)
        result = simulate(
            node_factory(), graph, trace,
            PlanScheduler(plan, force_capacitor=False),
            strict=False,
        )
        best = min(best, result.dmr)
        if best == 0.0:
            break
    return best


class TestGoldenSingleTask:
    def make_env(self, solar_rows, exec_s=60.0, deadline=120.0,
                 power=0.05, cap_f=2.0):
        graph = TaskGraph([Task("t", exec_s, deadline, power, nvp=0)])
        num_periods = len(solar_rows)
        tl = Timeline(1, num_periods, 4, 30.0)
        power_arr = np.asarray(solar_rows, dtype=float)[None, :, :]
        trace = SolarTrace(tl, power_arr)

        def node_factory():
            return SensorNode(
                [SuperCapacitor(capacitance=cap_f)], num_nvps=1
            )

        return graph, tl, trace, node_factory

    def run_dp(self, graph, tl, trace, node_factory):
        opt = LongTermOptimizer(
            graph,
            tl,
            [SuperCapacitor(capacitance=2.0)],
            config=DPConfig(energy_buckets=241),
        )
        matrix = trace.power.reshape(tl.total_periods, tl.slots_per_period)
        plan = opt.optimize(matrix)
        result = simulate(
            node_factory(), graph, trace, StaticOptimalScheduler(plan),
            strict=False,
        )
        return result.dmr

    def test_bright_then_dark(self):
        """Period 1 bright, periods 2-3 dark: storage serves one of the
        dark periods at best; the DP must find whatever brute force
        finds."""
        rows = [
            [0.30, 0.30, 0.30, 0.30],
            [0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
        graph, tl, trace, node_factory = self.make_env(rows)
        dp = self.run_dp(graph, tl, trace, node_factory)
        best = brute_force_best_dmr(node_factory, graph, trace)
        assert dp == pytest.approx(best, abs=1e-9)

    def test_all_dark(self):
        rows = [[0.0] * 4] * 3
        graph, tl, trace, node_factory = self.make_env(rows)
        dp = self.run_dp(graph, tl, trace, node_factory)
        best = brute_force_best_dmr(node_factory, graph, trace)
        assert dp == pytest.approx(best) == 1.0

    def test_all_bright(self):
        rows = [[0.2] * 4] * 3
        graph, tl, trace, node_factory = self.make_env(rows)
        dp = self.run_dp(graph, tl, trace, node_factory)
        best = brute_force_best_dmr(node_factory, graph, trace)
        assert dp == pytest.approx(best) == 0.0

    def test_marginal_solar(self):
        """Solar covers the task only if execution lands on the lit
        slots."""
        rows = [
            [0.0, 0.06, 0.06, 0.0],
            [0.0, 0.0, 0.06, 0.06],
        ]
        graph, tl, trace, node_factory = self.make_env(rows)
        dp = self.run_dp(graph, tl, trace, node_factory)
        best = brute_force_best_dmr(node_factory, graph, trace)
        assert dp <= best + 1e-9

    def test_dp_never_beats_physics(self):
        """The DP's expectation can be pessimistic (bucket floor) but
        its replayed plan can never do better than the exhaustive
        engine optimum."""
        rows = [
            [0.10, 0.05, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
        graph, tl, trace, node_factory = self.make_env(rows)
        dp = self.run_dp(graph, tl, trace, node_factory)
        best = brute_force_best_dmr(node_factory, graph, trace)
        assert dp >= best - 1e-9
