"""Tests for the receding-horizon scheduler (Figure 10(a) machinery)."""

import numpy as np
import pytest

from repro import simulate
from repro.core import DPConfig, RecedingHorizonScheduler
from repro.energy import SuperCapacitor
from repro.node import SensorNode
from repro.solar import PerfectPredictor, SolarTrace
from repro.tasks import ecg
from repro.timeline import Timeline


def env(days=2, periods=12):
    graph = ecg()
    tl = Timeline(days, periods, 20, 30.0)
    # Diurnal pattern: bright middle periods, dark edges.
    shape = np.maximum(
        np.sin(np.linspace(0, 2 * np.pi, periods, endpoint=False) - np.pi / 2),
        0.0,
    )
    power = np.tile(
        (0.15 * shape)[None, :, None], (days, 1, 20)
    )
    trace = SolarTrace(tl, power)
    caps = [SuperCapacitor(capacitance=c) for c in (1.0, 10.0)]
    node = SensorNode(caps, num_nvps=graph.num_nvps)
    return graph, tl, trace, caps, node


class TestRecedingHorizon:
    def test_runs_and_counts_transitions(self):
        graph, tl, trace, caps, node = env()
        sched = RecedingHorizonScheduler(
            caps, horizon_periods=6, replan_every=3,
            config=DPConfig(energy_buckets=21),
        )
        result = simulate(node, graph, trace, sched, strict=False)
        assert 0.0 <= result.dmr <= 1.0
        assert sched.transitions_evaluated > 0

    def test_longer_horizon_more_transitions(self):
        graph, tl, trace, caps, _ = env()
        counts = []
        for horizon in (3, 12):
            node = env()[4]
            sched = RecedingHorizonScheduler(
                caps, horizon_periods=horizon, replan_every=3,
                config=DPConfig(energy_buckets=21),
            )
            simulate(node, graph, trace, sched, strict=False)
            counts.append(sched.transitions_evaluated)
        assert counts[1] > counts[0]

    def test_oracle_long_horizon_beats_myopic(self):
        """With perfect prediction, seeing the night coming helps."""
        graph, tl, trace, caps, _ = env(days=3)
        dmrs = {}
        for horizon in (1, 12):
            node = env(days=3)[4]
            sched = RecedingHorizonScheduler(
                caps,
                horizon_periods=horizon,
                replan_every=1,
                predictor=PerfectPredictor(tl, trace),
                config=DPConfig(energy_buckets=21),
            )
            dmrs[horizon] = simulate(
                node, graph, trace, sched, strict=False
            ).dmr
        assert dmrs[12] <= dmrs[1] + 1e-9

    def test_validation(self):
        caps = [SuperCapacitor(capacitance=1.0)]
        with pytest.raises(ValueError):
            RecedingHorizonScheduler(caps, horizon_periods=0)
        with pytest.raises(ValueError):
            RecedingHorizonScheduler(caps, horizon_periods=4, replan_every=0)
