"""Tests for the DVFS model, engine support and scheduler."""

import numpy as np
import pytest

from repro import simulate
from repro.energy import SuperCapacitor
from repro.node import DVFSModel, SensorNode
from repro.schedulers import (
    DVFSLoadMatchingScheduler,
    GreedyEDFScheduler,
    IntraTaskScheduler,
    Scheduler,
)
from repro.sim import InvalidDecisionError
from repro.solar import SolarTrace
from repro.tasks import Task, TaskGraph, wam
from repro.timeline import Timeline


def tl_of(periods=2, slots=20):
    return Timeline(1, periods, slots, 30.0)


def constant_trace(tl, power):
    return SolarTrace(
        tl,
        np.full((tl.num_days, tl.periods_per_day, tl.slots_per_period), power),
    )


def dvfs_node(graph, caps=(10.0,), model=None):
    return SensorNode(
        [SuperCapacitor(capacitance=c) for c in caps],
        num_nvps=graph.num_nvps,
        dvfs=model or DVFSModel(),
    )


class TestDVFSModel:
    def test_rate_is_frequency(self):
        model = DVFSModel()
        assert model.rate(0.5) == 0.5
        assert model.rate(1.0) == 1.0

    def test_power_factor_cubic(self):
        model = DVFSModel(static_fraction=0.0)
        assert model.power_factor(0.5) == pytest.approx(0.125)
        assert model.power_factor(1.0) == pytest.approx(1.0)

    def test_static_floor(self):
        model = DVFSModel(static_fraction=0.2)
        assert model.power_factor(0.25) >= 0.2

    def test_energy_factor_below_one_at_low_levels(self):
        """Slowing down saves energy per unit of work (until static
        power dominates)."""
        model = DVFSModel(static_fraction=0.1)
        assert model.energy_factor(0.5) < model.energy_factor(1.0)

    def test_most_efficient_moves_with_static_power(self):
        lean = DVFSModel(static_fraction=0.0)
        leaky = DVFSModel(static_fraction=0.9)
        assert lean.most_efficient() <= leaky.most_efficient()

    def test_slowest_meeting(self):
        model = DVFSModel()
        assert model.slowest_meeting(0.3) == 0.5
        assert model.slowest_meeting(1.0) == 1.0
        assert model.slowest_meeting(1.1) is None
        assert model.slowest_meeting(0.0) == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"levels": ()},
            {"levels": (1.0, 0.5)},
            {"levels": (0.5, 0.8)},  # must end at 1.0
            {"static_fraction": 1.0},
            {"static_fraction": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DVFSModel(**kwargs)

    def test_invalid_level_rejected(self):
        model = DVFSModel()
        with pytest.raises(ValueError):
            model.rate(0.33)


class TestEngineDVFSSupport:
    def make_graph(self):
        return TaskGraph([Task("a", 300.0, 600.0, 0.02, nvp=0)])

    def test_scaled_progress(self):
        """At level 0.5 a task makes half progress per slot."""

        class HalfSpeed(Scheduler):
            name = "half"

            def on_slot(self, view):
                return [(t, 0.5) for t in view.ready]

        graph = self.make_graph()
        tl = tl_of(periods=1)
        result = simulate(
            dvfs_node(graph), graph, constant_trace(tl, 0.5), HalfSpeed()
        )
        # 300 s of work over 20 slots at half speed = 300 s of progress
        # exactly; the deadline-checked boundary makes this tight.
        assert result.dmr == 0.0

    def test_reduced_level_draws_less_power(self):
        class AtLevel(Scheduler):
            name = "lvl"

            def __init__(self, level):
                self.level = level

            def on_slot(self, view):
                return [(t, self.level) for t in view.ready]

        graph = self.make_graph()
        tl = tl_of(periods=1)
        loads = {}
        for level in (0.5, 1.0):
            result = simulate(
                dvfs_node(graph),
                graph,
                constant_trace(tl, 0.5),
                AtLevel(level),
                record_slots=True,
            )
            loads[level] = result.slots.load_power[:5].mean()
        assert loads[0.5] < loads[1.0]

    def test_invalid_level_strict_raises(self):
        class BadLevel(Scheduler):
            name = "bad"

            def on_slot(self, view):
                return [(t, 0.33) for t in view.ready]

        graph = self.make_graph()
        tl = tl_of(periods=1)
        with pytest.raises(InvalidDecisionError):
            simulate(
                dvfs_node(graph), graph, constant_trace(tl, 0.5), BadLevel()
            )

    def test_level_without_dvfs_node_raises(self):
        class HalfSpeed(Scheduler):
            name = "half"

            def on_slot(self, view):
                return [(t, 0.5) for t in view.ready]

        graph = self.make_graph()
        tl = tl_of(periods=1)
        node = SensorNode(
            [SuperCapacitor(capacitance=10.0)], num_nvps=1
        )  # no DVFS
        with pytest.raises(InvalidDecisionError):
            simulate(node, graph, constant_trace(tl, 0.5), HalfSpeed())

    def test_plain_int_decisions_still_work(self):
        graph = self.make_graph()
        tl = tl_of(periods=1)
        result = simulate(
            dvfs_node(graph), graph, constant_trace(tl, 0.5),
            GreedyEDFScheduler(),
        )
        assert result.dmr == 0.0


class TestDVFSScheduler:
    def test_meets_deadlines_under_abundance(self):
        graph = wam()
        tl = tl_of(periods=2)
        result = simulate(
            dvfs_node(graph, caps=(10.0,)),
            graph,
            constant_trace(tl, 0.5),
            DVFSLoadMatchingScheduler(),
        )
        assert result.dmr == 0.0

    def test_uses_less_energy_than_full_speed(self):
        """With slack and abundant solar, DVFS completes the same work
        for less energy than the fixed-speed matcher."""
        graph = wam()
        tl = tl_of(periods=2)
        dvfs_result = simulate(
            dvfs_node(graph), graph, constant_trace(tl, 0.5),
            DVFSLoadMatchingScheduler(),
        )
        flat_result = simulate(
            dvfs_node(graph), graph, constant_trace(tl, 0.5),
            IntraTaskScheduler(),
        )
        assert dvfs_result.dmr == flat_result.dmr == 0.0
        assert dvfs_result.total_load_energy < flat_result.total_load_energy

    def test_degrades_gracefully_in_darkness(self):
        graph = wam()
        tl = tl_of(periods=2)
        result = simulate(
            dvfs_node(graph, caps=(1.0,)),
            graph,
            constant_trace(tl, 0.0),
            DVFSLoadMatchingScheduler(),
        )
        assert 0.0 <= result.dmr <= 1.0
