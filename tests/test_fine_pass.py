"""Direct tests of the shared fine-grained slot pass (Section 5.2)."""

import numpy as np
import pytest

from repro.core.online import fine_grained_decision
from repro.sim.views import BankView, SlotView
from repro.tasks import Task, TaskGraph
from repro.timeline import Timeline


def make_view(graph, remaining, slot=0, solar=0.05, slots=10, dt=30.0):
    tl = Timeline(1, 1, slots, dt)
    remaining = np.asarray(remaining, dtype=float)
    completed = remaining <= 1e-9
    deadline_slots = np.array(
        [tl.deadline_slot(t.deadline) for t in graph.tasks]
    )
    done = completed
    ready = tuple(
        i
        for i in range(len(graph))
        if not done[i]
        and slot < deadline_slots[i]
        and all(done[p] for p in graph.predecessors(i))
    )
    bank = BankView(
        capacitances=np.array([10.0]),
        voltages=np.array([3.0]),
        usable_energies=np.array([40.0]),
        active_index=0,
    )
    return SlotView(
        timeline=tl,
        graph=graph,
        day=0,
        period=0,
        slot=slot,
        solar_power=solar,
        slot_seconds=dt,
        remaining=remaining,
        completed=completed,
        missed=np.zeros(len(graph), dtype=bool),
        deadline_slots=deadline_slots,
        ready=ready,
        bank=bank,
    )


def two_tasks(p1=0.02, p2=0.04, d1=300.0, d2=300.0):
    return TaskGraph(
        [
            Task("a", 60.0, d1, p1, nvp=0),
            Task("b", 60.0, d2, p2, nvp=1),
        ]
    )


class TestFineGrainedDecision:
    def test_empty_selection_runs_nothing(self):
        graph = two_tasks()
        view = make_view(graph, [60.0, 60.0])
        assert fine_grained_decision(view, set(), True) == []

    def test_intra_mode_matches_solar(self):
        graph = two_tasks(p1=0.02, p2=0.04)
        view = make_view(graph, [60.0, 60.0], solar=0.045)
        chosen = fine_grained_decision(view, {0, 1}, intra_mode=True)
        # Best match under 45 mW is task b alone (40 mW beats 20 mW).
        assert chosen == [1]

    def test_intra_mode_takes_both_when_they_fit(self):
        graph = two_tasks(p1=0.02, p2=0.04)
        view = make_view(graph, [60.0, 60.0], solar=0.07)
        chosen = fine_grained_decision(view, {0, 1}, intra_mode=True)
        assert set(chosen) == {0, 1}

    def test_inter_mode_lazy_without_solar(self):
        graph = two_tasks()
        view = make_view(graph, [60.0, 60.0], solar=0.0)
        # Plenty of slack, no solar: the lazy pass idles.
        assert fine_grained_decision(view, {0, 1}, intra_mode=False) == []

    def test_urgent_runs_regardless_of_solar(self):
        graph = two_tasks(d1=90.0)  # deadline slot 3
        # Task a needs 2 slots of work and 2 slots remain: urgent.
        view = make_view(graph, [60.0, 60.0], slot=1, solar=0.0)
        chosen = fine_grained_decision(view, {0, 1}, intra_mode=True)
        assert 0 in chosen

    def test_selection_filters_ready(self):
        graph = two_tasks()
        view = make_view(graph, [60.0, 60.0], solar=1.0)
        chosen = fine_grained_decision(view, {1}, intra_mode=False)
        assert chosen == [1]

    def test_one_task_per_nvp(self):
        graph = TaskGraph(
            [
                Task("a", 60.0, 300.0, 0.02, nvp=0),
                Task("b", 60.0, 240.0, 0.03, nvp=0),
            ]
        )
        view = make_view(graph, [60.0, 60.0], solar=1.0)
        chosen = fine_grained_decision(view, {0, 1}, intra_mode=True)
        assert len(chosen) == 1
        assert chosen[0] == 1  # earlier deadline wins the NVP
