"""Tests for the solar substrate: irradiance, clouds, panel, traces."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.solar import (
    FOUR_DAYS,
    ClearSkyModel,
    CloudProcess,
    DayArchetype,
    SkyState,
    SolarPanel,
    SolarTrace,
    archetype_trace,
    clear_sky_ghi,
    constant_transmittance,
    four_day_trace,
    solar_declination,
    solar_elevation,
    synthetic_trace,
)
from repro.timeline import SlotIndex, Timeline


def small_timeline(days=1):
    return Timeline(
        num_days=days, periods_per_day=24, slots_per_period=10,
        slot_seconds=30.0,
    )


class TestGeometry:
    def test_declination_solstices(self):
        # Summer solstice ~ +23.45 deg, winter ~ -23.45 deg.
        assert np.rad2deg(solar_declination(172)) == pytest.approx(23.45, abs=0.5)
        assert np.rad2deg(solar_declination(355)) == pytest.approx(-23.45, abs=0.5)

    def test_elevation_peaks_at_noon(self):
        times = np.linspace(0, 86400, 97)
        el = solar_elevation(times, 172, 40.0)
        assert abs(times[np.argmax(el)] - 43200) < 1800

    def test_elevation_negative_at_midnight(self):
        el = solar_elevation(0.0, 172, 40.0)
        assert el < 0

    def test_ghi_zero_below_horizon(self):
        assert clear_sky_ghi(-0.1) == 0.0

    def test_ghi_increases_with_elevation(self):
        low = clear_sky_ghi(np.deg2rad(10.0))
        high = clear_sky_ghi(np.deg2rad(60.0))
        assert 0 < low < high < 1100

    def test_clear_sky_model_daylight_hours(self):
        model = ClearSkyModel(latitude_deg=39.74)
        summer = model.daylight_hours(172)
        winter = model.daylight_hours(355)
        assert summer > 14 > 10 > winter

    def test_bad_day_of_year(self):
        with pytest.raises(ValueError):
            ClearSkyModel().ghi(0.0, 0)


class TestClouds:
    def test_constant_transmittance(self):
        out = constant_transmittance(np.arange(5.0), 0.8)
        assert np.allclose(out, 0.8)

    def test_constant_transmittance_validation(self):
        with pytest.raises(ValueError):
            constant_transmittance(np.arange(5.0), 0.0)

    def test_sample_within_bounds(self):
        process = CloudProcess()
        times = np.arange(0, 86400, 300.0)
        values = process.sample(times, np.random.default_rng(1))
        assert np.all(values > 0)
        assert np.all(values <= 1.0)

    def test_sample_deterministic_with_seed(self):
        process = CloudProcess()
        times = np.arange(0, 3600, 60.0)
        a = process.sample(times, np.random.default_rng(7))
        b = process.sample(times, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_single_state_process(self):
        process = CloudProcess(states=[SkyState("only", 0.5, 0.0, 1000.0)])
        values = process.sample(
            np.arange(0, 600, 60.0), np.random.default_rng(0)
        )
        assert np.allclose(values, 0.5)

    def test_decreasing_times_rejected(self):
        process = CloudProcess()
        with pytest.raises(ValueError):
            process.sample(np.array([10.0, 5.0]), np.random.default_rng(0))

    def test_skystate_validation(self):
        with pytest.raises(ValueError):
            SkyState("bad", 1.5, 0.1, 100.0)
        with pytest.raises(ValueError):
            SkyState("bad", 0.5, -0.1, 100.0)


class TestPanel:
    def test_paper_panel_peak(self):
        panel = SolarPanel()
        # 15.75 cm2 at 6% and 1000 W/m2 -> 94.5 mW.
        assert panel.peak_power == pytest.approx(0.0945, rel=1e-6)

    def test_power_scales_linearly(self):
        panel = SolarPanel()
        assert panel.power(500.0) == pytest.approx(panel.peak_power / 2)

    def test_array_input(self):
        panel = SolarPanel()
        out = panel.power(np.array([0.0, 1000.0]))
        assert out.shape == (2,)
        assert out[0] == 0.0

    def test_negative_irradiance_rejected(self):
        with pytest.raises(ValueError):
            SolarPanel().power(-1.0)

    @pytest.mark.parametrize(
        "kwargs", [{"area_m2": 0.0}, {"efficiency": 0.0}, {"efficiency": 1.5}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SolarPanel(**kwargs)


class TestSolarTrace:
    def test_shape_validation(self):
        tl = small_timeline()
        with pytest.raises(ValueError):
            SolarTrace(tl, np.zeros((2, 24, 10)))

    def test_negative_power_rejected(self):
        tl = small_timeline()
        power = np.zeros((1, 24, 10))
        power[0, 0, 0] = -1.0
        with pytest.raises(ValueError):
            SolarTrace(tl, power)

    def test_energy_aggregation_consistent(self):
        tl = small_timeline()
        power = np.ones((1, 24, 10)) * 0.05
        trace = SolarTrace(tl, power)
        assert trace.period_energy(0, 0) == pytest.approx(0.05 * 10 * 30.0)
        assert trace.daily_energy(0) == pytest.approx(0.05 * 240 * 30.0)
        assert trace.total_energy() == pytest.approx(trace.daily_energy(0))

    def test_from_function_averages(self):
        tl = small_timeline()
        trace = SolarTrace.from_function(tl, lambda day, t: np.full(len(t), 0.02))
        assert np.allclose(trace.power, 0.02)

    def test_day_slice(self):
        tl = small_timeline(days=3)
        power = np.zeros((3, 24, 10))
        power[1] = 0.04
        trace = SolarTrace(tl, power)
        day1 = trace.day_slice(1)
        assert day1.timeline.num_days == 1
        assert day1.total_energy() == pytest.approx(trace.daily_energy(1))

    def test_power_is_readonly(self):
        tl = small_timeline()
        trace = SolarTrace(tl, np.zeros((1, 24, 10)))
        with pytest.raises(ValueError):
            trace.power[0, 0, 0] = 1.0


class TestDayArchetypes:
    def test_four_days_decreasing_energy(self):
        tl = small_timeline(days=4)
        trace = four_day_trace(tl)
        energies = [trace.daily_energy(d) for d in range(4)]
        assert energies == sorted(energies, reverse=True)

    def test_four_day_trace_needs_four_days(self):
        with pytest.raises(ValueError):
            four_day_trace(small_timeline(days=3))

    def test_archetype_transmittance_interpolates(self):
        arch = DayArchetype(
            "test", 100, breakpoints=((0.0, 0.2), (12.0, 0.8), (24.0, 0.2))
        )
        mid = arch.transmittance(np.array([6 * 3600.0]))[0]
        assert mid == pytest.approx(0.5)

    def test_archetype_validation(self):
        with pytest.raises(ValueError):
            DayArchetype("bad", 100, breakpoints=((0.0, 0.5),))
        with pytest.raises(ValueError):
            DayArchetype("bad", 100, breakpoints=((5.0, 0.5), (1.0, 0.5)))

    def test_night_is_dark(self):
        tl = small_timeline(days=4)
        trace = four_day_trace(tl)
        # Slot at midnight has no power on any day.
        for d in range(4):
            assert trace.slot_power(SlotIndex(d, 0, 0)) == 0.0

    def test_deterministic(self):
        tl = small_timeline(days=4)
        a = four_day_trace(tl, seed=3)
        b = four_day_trace(tl, seed=3)
        assert np.array_equal(a.power, b.power)


class TestSyntheticTrace:
    def test_deterministic(self):
        tl = small_timeline(days=5)
        a = synthetic_trace(tl, seed=11)
        b = synthetic_trace(tl, seed=11)
        assert np.array_equal(a.power, b.power)

    def test_different_seeds_differ(self):
        tl = small_timeline(days=5)
        a = synthetic_trace(tl, seed=11)
        b = synthetic_trace(tl, seed=12)
        assert not np.array_equal(a.power, b.power)

    def test_daily_energy_positive_and_bounded(self):
        tl = small_timeline(days=10)
        trace = synthetic_trace(tl, seed=5)
        panel = SolarPanel()
        max_daily = panel.peak_power * 86400
        for d in range(10):
            energy = trace.daily_energy(d)
            assert 0 < energy < max_daily

    def test_seasonal_day_length(self):
        tl = small_timeline(days=1)
        summer = archetype_trace(
            tl,
            [DayArchetype("s", 172, breakpoints=((0.0, 0.97), (24.0, 0.97)))],
        )
        winter = archetype_trace(
            tl,
            [DayArchetype("w", 355, breakpoints=((0.0, 0.97), (24.0, 0.97)))],
        )
        assert summer.total_energy() > 1.5 * winter.total_energy()
