"""Tests for the day/period/slot time structure."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.timeline import SlotIndex, Timeline


def make(days=2, periods=4, slots=5, dt=30.0):
    return Timeline(
        num_days=days,
        periods_per_day=periods,
        slots_per_period=slots,
        slot_seconds=dt,
    )


class TestConstruction:
    def test_basic_sizes(self):
        tl = make()
        assert tl.period_seconds == 150.0
        assert tl.slots_per_day == 20
        assert tl.total_periods == 8
        assert tl.total_slots == 40
        assert tl.horizon_seconds == 1200.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_days": 0},
            {"periods_per_day": 0},
            {"slots_per_period": 0},
            {"slot_seconds": 0.0},
            {"slot_seconds": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        base = dict(
            num_days=1, periods_per_day=1, slots_per_period=1, slot_seconds=1.0
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            Timeline(**base)

    def test_with_days_copies(self):
        tl = make(days=2)
        tl2 = tl.with_days(7)
        assert tl2.num_days == 7
        assert tl.num_days == 2
        assert tl2.slots_per_period == tl.slots_per_period


class TestIndexing:
    def test_flat_slot_roundtrip_exhaustive(self):
        tl = make()
        seen = set()
        for idx in tl.iter_slots():
            flat = tl.flat_slot(idx)
            assert tl.unflatten(flat) == idx
            seen.add(flat)
        assert seen == set(range(tl.total_slots))

    def test_flat_period_roundtrip(self):
        tl = make()
        for day, period in tl.iter_periods():
            flat = tl.flat_period(day, period)
            assert tl.unflatten_period(flat) == (day, period)

    def test_out_of_range_raises(self):
        tl = make()
        with pytest.raises(IndexError):
            tl.flat_slot(SlotIndex(2, 0, 0))
        with pytest.raises(IndexError):
            tl.flat_slot(SlotIndex(0, 4, 0))
        with pytest.raises(IndexError):
            tl.flat_slot(SlotIndex(0, 0, 5))
        with pytest.raises(IndexError):
            tl.unflatten(tl.total_slots)
        with pytest.raises(IndexError):
            tl.unflatten_period(-1)

    def test_iteration_is_chronological(self):
        tl = make()
        flats = [tl.flat_slot(i) for i in tl.iter_slots()]
        assert flats == sorted(flats)

    @given(
        days=st.integers(1, 5),
        periods=st.integers(1, 10),
        slots=st.integers(1, 10),
        dt=st.floats(1.0, 600.0),
    )
    def test_flat_roundtrip_property(self, days, periods, slots, dt):
        tl = Timeline(days, periods, slots, dt)
        for flat in range(0, tl.total_slots, max(tl.total_slots // 7, 1)):
            assert tl.flat_slot(tl.unflatten(flat)) == flat


class TestIteration:
    def test_period_slots_covers_one_period(self):
        tl = make()
        indices = list(tl.period_slots(1, 2))
        assert len(indices) == tl.slots_per_period
        assert all(i.day == 1 and i.period == 2 for i in indices)
        assert [i.slot for i in indices] == list(range(tl.slots_per_period))

    def test_iter_slots_matches_nested_period_slots(self):
        tl = make()
        nested = [
            idx
            for day, period in tl.iter_periods()
            for idx in tl.period_slots(day, period)
        ]
        assert nested == list(tl.iter_slots())

    def test_slot_index_as_tuple(self):
        assert SlotIndex(1, 2, 3).as_tuple() == (1, 2, 3)


class TestWallClock:
    def test_periods_spread_over_day(self):
        tl = make(periods=4)
        # 4 periods uniformly over 24h: starts at 0h, 6h, 12h, 18h.
        assert tl.slot_time_of_day(SlotIndex(0, 0, 0)) == 0.0
        assert tl.slot_time_of_day(SlotIndex(0, 1, 0)) == pytest.approx(21600)
        assert tl.slot_time_of_day(SlotIndex(0, 2, 0)) == pytest.approx(43200)

    def test_slot_offset_within_period(self):
        tl = make()
        t0 = tl.slot_time_of_day(SlotIndex(0, 1, 0))
        t3 = tl.slot_time_of_day(SlotIndex(0, 1, 3))
        assert t3 - t0 == pytest.approx(3 * tl.slot_seconds)

    def test_absolute_time_includes_days(self):
        tl = make()
        a = tl.slot_absolute_time(SlotIndex(1, 0, 0))
        assert a == pytest.approx(86400.0)

    def test_non_dividing_hyper_period_stays_diurnal(self):
        """Periods spread over 24 h even when ΔT·N_p != 86 400 s.

        With 7 periods of 150 s the task time covers only 1050 s of
        the day, but period k still starts at k/7 of the solar day so
        the trace alignment survives.
        """
        tl = make(periods=7)
        assert tl.periods_per_day * tl.period_seconds != pytest.approx(86400)
        for k in range(7):
            start = tl.slot_time_of_day(SlotIndex(0, k, 0))
            assert start == pytest.approx(k * 86400.0 / 7)
        # Last slot of the last period still lands inside the day.
        last = tl.slot_time_of_day(SlotIndex(0, 6, tl.slots_per_period - 1))
        assert last < 86400.0

    def test_horizon_counts_task_time_not_wall_clock(self):
        tl = make(days=3, periods=7)
        assert tl.horizon_seconds == pytest.approx(
            tl.total_slots * tl.slot_seconds
        )
        wall = tl.slot_absolute_time(
            SlotIndex(2, 6, tl.slots_per_period - 1)
        )
        assert wall > tl.horizon_seconds  # idle gaps between periods

    @given(
        periods=st.integers(1, 24),
        day=st.integers(0, 1),
        period_frac=st.floats(0.0, 0.999),
    )
    def test_time_of_day_always_within_day(self, periods, day, period_frac):
        tl = make(days=2, periods=periods, slots=5, dt=30.0)
        period = int(period_frac * periods)
        t = tl.slot_time_of_day(SlotIndex(day, period, 4))
        assert 0.0 <= t < 86400.0 + tl.period_seconds


class TestDeadlineSlot:
    def test_exact_boundary(self):
        tl = make(slots=10, dt=30.0)
        assert tl.deadline_slot(90.0) == 3

    def test_mid_slot_rounds_up(self):
        # Deadline inside a slot is checked at the next slot start.
        tl = make(slots=10, dt=30.0)
        assert tl.deadline_slot(95.0) == 4

    def test_clamped_to_period(self):
        tl = make(slots=10, dt=30.0)
        assert tl.deadline_slot(10_000.0) == 10

    def test_zero_deadline(self):
        tl = make()
        assert tl.deadline_slot(0.0) == 0

    def test_negative_rejected(self):
        tl = make()
        with pytest.raises(ValueError):
            tl.deadline_slot(-1.0)

    def test_fractional_slot_seconds_float_edge(self):
        # 0.3 / 0.1 is 2.9999... in floats; the epsilon guard must
        # still treat it as an exact boundary.
        tl = make(slots=10, dt=0.1)
        assert tl.deadline_slot(0.3) == 3

    @given(st.floats(0.0, 10_000.0))
    def test_deadline_slot_bounds(self, deadline):
        tl = make(slots=10, dt=30.0)
        slot = tl.deadline_slot(deadline)
        assert 0 <= slot <= tl.slots_per_period
        if slot < tl.slots_per_period:
            # Checked at the first slot boundary >= the deadline.
            assert slot * tl.slot_seconds >= deadline - 1e-6
            assert (slot - 1) * tl.slot_seconds < deadline or slot == 0
