"""Property-style checks of the long-term DP's structure."""

import numpy as np
import pytest

from repro.core import DPConfig, LongTermOptimizer
from repro.energy import SuperCapacitor
from repro.tasks import ecg
from repro.timeline import Timeline
from repro.verify.strategies import solar_matrix


def optimize(caps, tl, matrix, buckets=61):
    opt = LongTermOptimizer(
        ecg(), tl, [SuperCapacitor(capacitance=c) for c in caps],
        config=DPConfig(energy_buckets=buckets),
    )
    return opt.optimize(matrix, extract_matrices=False)


class TestDPStructure:
    def setup_method(self):
        self.tl = Timeline(2, 12, 20, 30.0)
        self.matrix = solar_matrix(self.tl)

    def test_more_capacitor_options_never_hurt(self):
        """The DP can always ignore an extra bank member."""
        small = optimize([10.0], self.tl, self.matrix)
        big = optimize([10.0, 1.0], self.tl, self.matrix)
        assert big.expected_dmr <= small.expected_dmr + 0.02

    def test_more_solar_never_hurts(self):
        dim = optimize([10.0], self.tl, solar_matrix(self.tl, scale=0.06))
        bright = optimize([10.0], self.tl, solar_matrix(self.tl, scale=0.20))
        assert bright.expected_dmr <= dim.expected_dmr + 1e-9

    def test_finer_buckets_never_hurt_much(self):
        """Finer discretisation only removes floor-rounding pessimism."""
        coarse = optimize([10.0], self.tl, self.matrix, buckets=31)
        fine = optimize([10.0], self.tl, self.matrix, buckets=241)
        assert fine.expected_dmr <= coarse.expected_dmr + 0.02

    def test_chosen_k_consistent_with_expected_dmr(self):
        plan = optimize([10.0], self.tl, self.matrix)
        n = len(ecg())
        from_k = float(np.mean((n - plan.chosen_k) / n))
        assert from_k == pytest.approx(plan.expected_dmr, abs=1e-9)

    def test_augmented_samples_additional(self):
        base = optimize([10.0], self.tl, self.matrix)
        opt = LongTermOptimizer(
            ecg(), self.tl, [SuperCapacitor(capacitance=10.0)],
            config=DPConfig(energy_buckets=61),
        )
        augmented = opt.optimize(
            self.matrix, extract_matrices=False, augment_per_period=3
        )
        assert len(augmented.samples) == len(base.samples) * 4
        # Augmented samples carry valid fields.
        for s in augmented.samples[len(base.samples):][:20]:
            assert 0.0 <= s.accumulated_dmr <= 1.0
            assert s.te.shape == (len(ecg()),)
            assert 0 <= s.cap_index < 1
