"""Tests for the solar energy predictors (WCMA, EWMA, oracle)."""

import numpy as np
import pytest

from repro.solar import (
    EWMAPredictor,
    PerfectPredictor,
    SolarTrace,
    WCMAPredictor,
    four_day_trace,
)
from repro.timeline import Timeline


def tl_of(days=4, periods=8):
    return Timeline(days, periods, 10, 30.0)


def feed_trace(predictor, trace, upto_flat):
    """Observe the first ``upto_flat`` periods of a trace."""
    tl = trace.timeline
    for flat in range(upto_flat):
        day, period = tl.unflatten_period(flat)
        predictor.observe(day, period, trace.period_energy(day, period))


def diurnal_trace(tl, peak=0.08):
    """Deterministic repeating diurnal pattern (sin half wave)."""
    periods = np.arange(tl.periods_per_day)
    shape = np.maximum(
        np.sin((periods / tl.periods_per_day) * 2 * np.pi - np.pi / 2), 0.0
    )
    power = np.tile(
        (peak * shape)[None, :, None],
        (tl.num_days, 1, tl.slots_per_period),
    )
    return SolarTrace(tl, power)


class TestWCMA:
    def test_learns_repeating_pattern(self):
        tl = tl_of(days=5)
        trace = diurnal_trace(tl)
        predictor = WCMAPredictor(tl)
        feed_trace(predictor, trace, 4 * tl.periods_per_day)
        # Day 5 repeats exactly; predictions should be close.
        errors = []
        for p in range(tl.periods_per_day):
            actual = trace.period_energy(4, p)
            predicted = predictor.predict(4, p)
            errors.append(abs(predicted - actual))
            predictor.observe(4, p, actual)
        peak_energy = trace.power.max() * 10 * 30
        assert np.mean(errors) < 0.25 * peak_energy

    def test_persistence_without_history(self):
        tl = tl_of()
        predictor = WCMAPredictor(tl)
        assert predictor.predict(0, 0) == 0.0
        predictor.observe(0, 0, 42.0)
        assert predictor.predict(0, 1) > 0.0

    def test_nonnegative(self):
        tl = tl_of()
        trace = four_day_trace(Timeline(4, 8, 10, 30.0))
        predictor = WCMAPredictor(tl)
        feed_trace(predictor, trace, 2 * tl.periods_per_day)
        for p in range(tl.periods_per_day):
            assert predictor.predict(2, p) >= 0.0

    def test_gap_scales_with_today(self):
        """A darker-than-usual morning lowers the next prediction."""
        tl = tl_of(days=5)
        trace = diurnal_trace(tl)
        bright = WCMAPredictor(tl)
        dark = WCMAPredictor(tl)
        feed_trace(bright, trace, 4 * tl.periods_per_day)
        feed_trace(dark, trace, 4 * tl.periods_per_day)
        # Day 4: feed normal vs halved observations for periods 0..3.
        mid = tl.periods_per_day // 2
        for p in range(mid):
            e = trace.period_energy(4, p)
            bright.observe(4, p, e)
            dark.observe(4, p, e * 0.3)
        assert dark.predict(4, mid) <= bright.predict(4, mid)

    def test_horizon_clipped_at_end(self):
        tl = tl_of(days=1, periods=4)
        predictor = WCMAPredictor(tl)
        horizon = predictor.predict_horizon(0, 2, count=10)
        assert len(horizon) == 2

    def test_validation(self):
        tl = tl_of()
        with pytest.raises(ValueError):
            WCMAPredictor(tl, alpha=1.5)
        with pytest.raises(ValueError):
            WCMAPredictor(tl, depth_days=0)
        with pytest.raises(ValueError):
            WCMAPredictor(tl, gap_window=0)
        predictor = WCMAPredictor(tl)
        with pytest.raises(ValueError):
            predictor.observe(0, 0, -1.0)
        with pytest.raises(ValueError):
            predictor.predict_horizon(0, 0, count=0)


class TestEWMA:
    def test_converges_on_constant_signal(self):
        tl = tl_of(days=6)
        predictor = EWMAPredictor(tl, alpha=0.5)
        for day in range(5):
            for p in range(tl.periods_per_day):
                predictor.observe(day, p, 10.0)
        assert predictor.predict(5, 3) == pytest.approx(10.0)

    def test_blends_history(self):
        tl = tl_of(days=3)
        predictor = EWMAPredictor(tl, alpha=0.5)
        predictor.observe(0, 0, 10.0)
        predictor.observe(1, 0, 20.0)
        assert predictor.predict(2, 0) == pytest.approx(15.0)

    def test_fallback_before_history(self):
        tl = tl_of()
        predictor = EWMAPredictor(tl)
        assert predictor.predict(0, 3) == 0.0
        predictor.observe(0, 0, 7.0)
        assert predictor.predict(0, 3) == 7.0  # last observation

    def test_validation(self):
        tl = tl_of()
        with pytest.raises(ValueError):
            EWMAPredictor(tl, alpha=-0.1)
        with pytest.raises(ValueError):
            EWMAPredictor(tl).observe(0, 0, -5.0)


class TestPerfect:
    def test_oracle_matches_trace(self):
        tl = Timeline(4, 8, 10, 30.0)
        trace = four_day_trace(tl)
        predictor = PerfectPredictor(tl, trace)
        for day, period in ((0, 0), (1, 4), (3, 7)):
            assert predictor.predict(day, period) == pytest.approx(
                trace.period_energy(day, period)
            )

    def test_horizon_matches_trace(self):
        tl = Timeline(2, 4, 10, 30.0)
        trace = four_day_trace(Timeline(4, 4, 10, 30.0)).day_slice(0)
        trace2 = SolarTrace(
            tl, np.tile(trace.power, (2, 1, 1))
        )
        predictor = PerfectPredictor(tl, trace2)
        horizon = predictor.predict_horizon(0, 0, 8)
        assert len(horizon) == 8

    def test_timeline_mismatch_rejected(self):
        tl = Timeline(4, 8, 10, 30.0)
        trace = four_day_trace(tl)
        with pytest.raises(ValueError):
            PerfectPredictor(Timeline(2, 8, 10, 30.0), trace)
