"""Tests for regulator curves and the super capacitor model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.energy import (
    CapacitorState,
    RegulatorCurve,
    SuperCapacitor,
    default_input_regulator,
    default_output_regulator,
)


class TestRegulatorCurve:
    def test_monotone_increasing(self):
        curve = default_input_regulator()
        v = np.linspace(0.1, 5.0, 50)
        eta = curve.efficiency(v)
        assert np.all(np.diff(eta) > 0)

    def test_bounded_by_eta_max(self):
        curve = RegulatorCurve(eta_max=0.9, v_half=1.0, exponent=2.0)
        assert curve.efficiency(100.0) < 0.9
        assert curve.efficiency(100.0) == pytest.approx(0.9, abs=1e-3)

    def test_half_point(self):
        curve = RegulatorCurve(eta_max=0.8, v_half=2.0, exponent=2.0)
        assert curve.efficiency(2.0) == pytest.approx(0.4)

    def test_zero_voltage_zero_efficiency(self):
        assert default_output_regulator().efficiency(0.0) == 0.0

    def test_negative_voltage_rejected(self):
        with pytest.raises(ValueError):
            default_input_regulator().efficiency(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [{"eta_max": 0.0}, {"eta_max": 1.5}, {"v_half": 0.0}, {"exponent": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RegulatorCurve(**kwargs)

    def test_callable_alias(self):
        curve = default_input_regulator()
        assert curve(2.0) == curve.efficiency(2.0)

    def test_low_voltage_collapse(self):
        """Figure 5 shape: efficiency collapses near the cut-off."""
        curve = default_output_regulator()
        assert curve.efficiency(0.5) < 0.5 * curve.efficiency(4.0)


class TestSuperCapacitor:
    def test_energy_voltage_roundtrip(self):
        cap = SuperCapacitor(capacitance=10.0)
        for v in (0.0, 1.0, 3.3, 5.0):
            assert cap.voltage_at(cap.energy_at(v)) == pytest.approx(v)

    def test_usable_capacity(self):
        cap = SuperCapacitor(capacitance=2.0, v_full=5.0, v_cutoff=1.0)
        assert cap.usable_capacity == pytest.approx(0.5 * 2 * (25 - 1))

    def test_leakage_grows_with_voltage(self):
        cap = SuperCapacitor(capacitance=10.0)
        assert cap.leakage_power(5.0) > cap.leakage_power(1.0) > 0

    def test_leakage_scales_with_capacitance(self):
        small = SuperCapacitor(capacitance=1.0)
        big = SuperCapacitor(capacitance=100.0)
        assert big.leakage_power(3.0) > 10 * small.leakage_power(3.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacitance": 0.0},
            {"v_cutoff": 5.0, "v_full": 5.0},
            {"v_cutoff": -1.0},
            {"cycle_efficiency": 0.0},
            {"cycle_efficiency": 1.2},
            {"leak_coeff": -1.0},
            {"leak_exponent": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(capacitance=1.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            SuperCapacitor(**base)

    def test_fresh_state_default_cutoff(self):
        cap = SuperCapacitor(capacitance=1.0)
        state = cap.fresh_state()
        assert state.voltage == pytest.approx(cap.v_cutoff)
        assert state.usable_energy == pytest.approx(0.0)


class TestCapacitorState:
    def make_state(self, c=10.0, v=2.0, **kwargs):
        return SuperCapacitor(capacitance=c, **kwargs).fresh_state(v)

    def test_charge_returns_stored_less_than_input(self):
        state = self.make_state()
        stored = state.charge(10.0)
        assert 0 < stored < 10.0  # conversion losses

    def test_charge_stops_at_v_full(self):
        state = self.make_state(c=1.0, v=4.9)
        state.charge(1000.0)
        assert state.voltage <= state.capacitor.v_full + 1e-9

    def test_discharge_delivers_at_most_requested(self):
        state = self.make_state(v=4.0)
        delivered = state.discharge(1.0)
        assert delivered <= 1.0 + 1e-9

    def test_discharge_consumes_more_than_delivered(self):
        state = self.make_state(v=4.0)
        before = state.stored_energy
        delivered = state.discharge(5.0)
        drawn = before - state.stored_energy
        assert drawn > delivered > 0

    def test_discharge_stops_at_cutoff(self):
        state = self.make_state(v=2.0)
        state.discharge(1e9)
        assert state.voltage >= state.capacitor.v_cutoff - 1e-9
        assert state.usable_energy == pytest.approx(0.0, abs=1e-9)

    def test_empty_capacitor_delivers_nothing(self):
        state = self.make_state(v=1.0)  # at cutoff
        assert state.discharge(1.0) == 0.0

    def test_leak_reduces_energy(self):
        state = self.make_state(v=4.0)
        before = state.stored_energy
        lost = state.leak(3600.0)
        assert lost > 0
        assert state.stored_energy == pytest.approx(before - lost)

    def test_leak_never_negative_energy(self):
        state = self.make_state(c=0.5, v=1.0)
        state.leak(1e9)
        assert state.stored_energy >= 0.0

    def test_headroom_plus_stored_is_full(self):
        state = self.make_state(v=3.0)
        cap = state.capacitor
        assert state.headroom + state.stored_energy == pytest.approx(
            cap.energy_at(cap.v_full)
        )

    def test_invalid_initial_voltage(self):
        cap = SuperCapacitor(capacitance=1.0)
        with pytest.raises(ValueError):
            CapacitorState(cap, 6.0)

    def test_negative_arguments_rejected(self):
        state = self.make_state()
        with pytest.raises(ValueError):
            state.charge(-1.0)
        with pytest.raises(ValueError):
            state.discharge(-1.0)
        with pytest.raises(ValueError):
            state.leak(-1.0)

    @given(
        c=st.floats(0.5, 100.0),
        v=st.floats(1.0, 5.0),
        energy=st.floats(0.0, 50.0),
    )
    @settings(max_examples=60)
    def test_charge_energy_conservation(self, c, v, energy):
        """Stored increase <= input energy; voltage stays in range."""
        cap = SuperCapacitor(capacitance=c)
        state = cap.fresh_state(min(v, cap.v_full))
        before = state.stored_energy
        stored = state.charge(energy)
        assert stored <= energy + 1e-9
        assert state.stored_energy == pytest.approx(before + stored, rel=1e-9)
        assert 0.0 <= state.voltage <= cap.v_full + 1e-9

    @given(
        c=st.floats(0.5, 100.0),
        v=st.floats(1.0, 5.0),
        want=st.floats(0.0, 50.0),
    )
    @settings(max_examples=60)
    def test_discharge_energy_conservation(self, c, v, want):
        cap = SuperCapacitor(capacitance=c)
        state = cap.fresh_state(min(v, cap.v_full))
        before = state.stored_energy
        delivered = state.discharge(want)
        drawn = before - state.stored_energy
        assert delivered <= want + 1e-9
        assert delivered <= drawn + 1e-9
        assert state.voltage >= cap.v_cutoff - 1e-9

    @given(st.floats(1.0, 5.0), st.floats(0.0, 86400.0))
    @settings(max_examples=60)
    def test_leak_monotone(self, v, duration):
        cap = SuperCapacitor(capacitance=10.0)
        state = cap.fresh_state(v)
        before = state.stored_energy
        state.leak(duration)
        assert state.stored_energy <= before + 1e-12

    def test_substep_charging_tracks_voltage(self):
        """More substeps -> efficiency follows the rising voltage."""
        coarse = self.make_state(c=1.0, v=1.0)
        fine = self.make_state(c=1.0, v=1.0)
        coarse.charge(8.0, substeps=1)
        fine.charge(8.0, substeps=64)
        # Charging at the (higher) average voltage is more efficient
        # than pricing everything at the initial low voltage.
        assert fine.stored_energy > coarse.stored_energy
