"""Hierarchical tracing: deterministic span ids, cross-process trees.

The acceptance contract: a multi-worker fleet run's span records
reassemble into a *single rooted tree* — fleet_run → shard → node →
engine_run with the per-node executor, fleet_run → shard → batch with
the batched one — with correct parents, no orphans, and tracing never
changes a result fingerprint (on, off, or NULL_OBSERVER).
"""

import io
import json

import pytest

import repro.perf.parallel as parallel_mod
from repro.cli import main as cli_main
from repro.fleet import FleetRunner, FleetSpec
from repro.obs import Observer
from repro.obs.sinks import RingBufferSink
from repro.obs.trace import (
    NULL_TRACER,
    SpanContext,
    Tracer,
    activate,
    build_span_tree,
    collecting_tracer,
    current_tracer,
    derive_span_id,
    derive_trace_id,
    render_span_tree,
)
from repro.perf.parallel import traced_map


def collecting_observer():
    sink = RingBufferSink(capacity=100_000)
    return Observer(sinks=[sink]), sink


def spans_of(sink):
    return [r for r in sink.records if r.get("kind") == "span"]


class TestDeterministicIds:
    def test_trace_and_span_ids_are_pure_functions(self):
        assert derive_trace_id("fleet", 0, 100) == derive_trace_id(
            "fleet", 0, 100
        )
        assert derive_trace_id("fleet", 0, 100) != derive_trace_id(
            "fleet", 1, 100
        )
        sid = derive_span_id("t" * 16, None, "shard", 3)
        assert sid == derive_span_id("t" * 16, None, "shard", 3)
        assert sid != derive_span_id("t" * 16, None, "shard", 4)
        assert len(sid) == 16

    def test_identical_runs_emit_identical_ids(self):
        def run():
            records = []
            tracer = Tracer(records.append, derive_trace_id("run", 7))
            with tracer.span("outer"):
                with tracer.span("inner", key="a"):
                    pass
                with tracer.span("inner"):
                    pass
                with tracer.span("inner"):
                    pass
            return records

        first, second = run(), run()
        assert [r["span"] for r in first] == [r["span"] for r in second]
        # Sequence-keyed siblings get distinct ids; explicit keys are
        # recorded, auto keys are not.
        ids = {r["span"] for r in first}
        assert len(ids) == 4
        keys = [r["key"] for r in first]
        assert keys == ["a", None, None, None]

    def test_wire_roundtrip(self):
        ctx = SpanContext("abc", "def")
        assert SpanContext.from_wire(ctx.to_wire()) == ctx
        rootless = SpanContext("abc", None)
        assert SpanContext.from_wire(rootless.to_wire()) == rootless


class TestTracerBasics:
    def test_parent_nesting_and_error_capture(self):
        records = []
        tracer = Tracer(records.append, "t")
        with pytest.raises(RuntimeError):
            with tracer.span("outer") as outer:
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        inner, outer_rec = records
        assert inner["parent"] == outer.id
        assert inner["error"] == "RuntimeError"
        assert outer_rec["error"] == "RuntimeError"
        assert outer_rec["parent"] is None

    def test_annotate_attrs(self):
        records = []
        tracer = Tracer(records.append, "t")
        with tracer.span("work", attrs={"n": 3}) as span:
            span.annotate(dmr=0.5)
        assert records[0]["attrs"] == {"n": 3, "dmr": 0.5}

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", key=1) as span:
            span.annotate(x=1)
        assert NULL_TRACER.context() is None

    def test_ambient_activation(self):
        assert current_tracer() is NULL_TRACER
        tracer = Tracer(lambda r: None, "t")
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_collecting_tracer(self):
        tracer, records = collecting_tracer("abc/def")
        with tracer.span("work"):
            pass
        assert records[0]["trace"] == "abc"
        assert records[0]["parent"] == "def"
        null, empty = collecting_tracer(None)
        assert null is NULL_TRACER and empty == []

    def test_observer_start_trace(self):
        observer, sink = collecting_observer()
        tracer = observer.start_trace("simulate", "WAM", 4)
        assert tracer.enabled and observer.tracer is tracer
        with tracer.span("engine_run"):
            pass
        assert spans_of(sink)[0]["name"] == "engine_run"
        # Disabled observers hand back the null tracer.
        from repro.obs import NULL_OBSERVER

        assert not NULL_OBSERVER.start_trace("simulate", 1).enabled


def _traced_double(x):
    with current_tracer().span("double_inner"):
        return 2 * x


class TestTracedMap:
    def test_without_tracer_equals_parallel_map(self):
        assert traced_map(_traced_double, [1, 2, 3]) == [2, 4, 6]

    def test_serial_records_reparent(self):
        records = []
        tracer = Tracer(records.append, "t")
        with tracer.span("parent") as parent:
            out = traced_map(
                _traced_double, [1, 2], name="cell", keys=["a", "b"],
                tracer=tracer,
            )
        assert out == [2, 4]
        cells = [r for r in records if r["name"] == "cell"]
        assert [r["key"] for r in cells] == ["a", "b"]
        assert all(r["parent"] == parent.id for r in cells)
        inners = [r for r in records if r["name"] == "double_inner"]
        assert len(inners) == 2
        cell_ids = {r["span"] for r in cells}
        assert all(r["parent"] in cell_ids for r in inners)
        tree = build_span_tree(records)
        assert len(tree.roots) == 1 and not tree.orphans

    def test_pool_records_reparent(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        records = []
        tracer = Tracer(records.append, "t")
        with tracer.span("parent"):
            out = traced_map(
                _traced_double, [1, 2, 3], name="cell", n_workers=3,
                tracer=tracer,
            )
        assert out == [2, 4, 6]
        tree = build_span_tree(records)
        assert len(tree.roots) == 1 and not tree.orphans
        assert len(records) == 7  # parent + 3 cells + 3 inners

    def test_key_count_mismatch(self):
        tracer = Tracer(lambda r: None, "t")
        with pytest.raises(ValueError):
            traced_map(_traced_double, [1, 2], keys=["a"], tracer=tracer)


class TestFleetTrace:
    """The acceptance criterion: 4-worker 50-node single rooted tree."""

    @pytest.fixture(autouse=True)
    def no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")

    def assert_fleet_tree(self, spans, n_nodes):
        tree = build_span_tree(spans)
        assert len(tree.roots) == 1, "want exactly one root span"
        assert not tree.orphans, "no span may lose its parent"
        root = tree.roots[0]
        assert root["name"] == "fleet_run"
        by_id = tree.by_id
        nodes = [r for r in spans if r["name"] == "node"]
        shards = [r for r in spans if r["name"] == "shard"]
        assert len(nodes) == n_nodes
        assert {by_id[str(r["parent"])]["name"] for r in nodes} == {"shard"}
        assert {by_id[str(r["parent"])]["name"] for r in shards} == {
            "fleet_run"
        }
        engines = [r for r in spans if r["name"] == "engine_run"]
        assert len(engines) == n_nodes

    def test_serial_run_builds_single_tree(self):
        observer, sink = collecting_observer()
        spec = FleetSpec(n_nodes=6, seed=0)
        FleetRunner(
            spec, workers=1, shard_size=2, observer=observer, cache=False,
            engine="per-node",
        ).run()
        self.assert_fleet_tree(spans_of(sink), n_nodes=6)

    def test_batch_engine_replaces_node_spans_with_batch_child(self):
        # The batched executor advances a whole shard at once, so its
        # shards carry a single `batch` child instead of per-node
        # node/engine_run spans -- but the tree stays singly rooted.
        observer, sink = collecting_observer()
        spec = FleetSpec(n_nodes=6, seed=0)
        FleetRunner(
            spec, workers=1, shard_size=2, observer=observer, cache=False,
            engine="batch",
        ).run()
        spans = spans_of(sink)
        tree = build_span_tree(spans)
        assert len(tree.roots) == 1 and not tree.orphans
        batches = [r for r in spans if r["name"] == "batch"]
        shards = [r for r in spans if r["name"] == "shard"]
        assert len(batches) == len(shards) == 3
        by_id = tree.by_id
        assert {by_id[str(r["parent"])]["name"] for r in batches} == {
            "shard"
        }
        assert not [r for r in spans if r["name"] in ("node", "engine_run")]

    def test_four_workers_fifty_nodes_single_tree(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 8)
        observer, sink = collecting_observer()
        spec = FleetSpec(n_nodes=50, seed=0)
        traced = FleetRunner(
            spec, workers=4, shard_size=8, observer=observer, cache=False,
            engine="per-node",
        ).run()
        self.assert_fleet_tree(spans_of(sink), n_nodes=50)
        # Tracing must not perturb the simulation: bit-identical
        # fingerprints with tracing on, off, and fully unobserved.
        plain = FleetRunner(
            spec, workers=4, shard_size=8, cache=False, engine="per-node"
        ).run()
        serial = FleetRunner(
            spec, workers=1, shard_size=50, cache=False
        ).run()
        assert (
            traced.fingerprint()
            == plain.fingerprint()
            == serial.fingerprint()
        )
        assert (
            traced.aggregate.fingerprint() == serial.aggregate.fingerprint()
        )

    def test_cached_shards_still_parent_under_root(self, tmp_path,
                                                   monkeypatch):
        from repro.perf.cache import ArtifactCache

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = ArtifactCache(tmp_path)
        spec = FleetSpec(n_nodes=4, seed=1)
        FleetRunner(spec, shard_size=2, cache=cache).run()
        observer, sink = collecting_observer()
        FleetRunner(
            spec, shard_size=2, observer=observer, cache=cache
        ).run()
        spans = spans_of(sink)
        tree = build_span_tree(spans)
        assert len(tree.roots) == 1 and not tree.orphans
        shard_spans = [r for r in spans if r["name"] == "shard"]
        assert len(shard_spans) == 2
        assert all(
            r.get("attrs", {}).get("cached") for r in shard_spans
        )


class TestRenderAndCli:
    def make_records(self):
        records = []
        tracer = Tracer(records.append, derive_trace_id("demo"))
        with tracer.span("root"):
            for i in range(3):
                with tracer.span("shard", key=i):
                    with tracer.span("node", key=10 + i):
                        pass
        return records

    def test_render_tree(self):
        text = render_span_tree(self.make_records())
        assert "1 root(s), 0 orphan(s)" in text
        assert "shard[1]" in text and "node[12]" in text
        assert "hot spans" in text
        assert render_span_tree([]) == "no span records"

    def test_render_elides_long_sibling_lists(self):
        records = []
        tracer = Tracer(records.append, "t")
        with tracer.span("root"):
            for i in range(20):
                with tracer.span("shard", key=i):
                    pass
        text = render_span_tree(records, max_children=16)
        assert "(+4 more)" in text

    def test_orphans_reported(self):
        records = self.make_records()
        # Drop the root: its children become orphans.
        headless = [r for r in records if r["name"] != "root"]
        tree = build_span_tree(headless)
        assert not tree.roots
        assert len(tree.orphans) == 3
        assert "orphan spans" in render_span_tree(headless)

    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_obs_trace_command(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as fh:
            for record in self.make_records():
                fh.write(json.dumps(record) + "\n")
        code, text = self.run_cli("obs", "trace", str(path), "--check")
        assert code == 0
        assert "single root, no orphans" in text
        # Directory form resolves trace.jsonl inside.
        code, _ = self.run_cli("obs", "trace", str(tmp_path))
        assert code == 0

    def test_obs_trace_check_fails_on_orphans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as fh:
            for record in self.make_records():
                if record["name"] != "root":
                    fh.write(json.dumps(record) + "\n")
        code, _ = self.run_cli("obs", "trace", str(path), "--check")
        assert code == 6
        code, _ = self.run_cli("obs", "trace", str(path))
        assert code == 0  # render-only mode does not gate

    def test_obs_trace_no_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"kind": "run_summary"}) + "\n")
        code, text = self.run_cli("obs", "trace", str(path))
        assert code == 0 and "no span records" in text
        code, _ = self.run_cli("obs", "trace", str(path), "--check")
        assert code == 2

    def test_obs_trace_missing_file(self, tmp_path):
        code, _ = self.run_cli("obs", "trace", str(tmp_path / "nope.jsonl"))
        assert code == 2


class TestStageSpans:
    """The offline / LUT / verify / suite call-sites open spans."""

    def test_offline_pipeline_spans(self, tiny_setup):
        from repro.core.offline import OfflinePipeline

        graph, tl, trace = tiny_setup
        records = []
        tracer = Tracer(records.append, "t")
        pipe = OfflinePipeline(
            graph, pretrain_epochs=1, finetune_epochs=1,
            augment_per_period=0,
        )
        with activate(tracer):
            pipe.run(trace)
        names = [r["name"] for r in records]
        assert names == [
            "sizing", "longterm_dp", "dbn_train", "offline_pipeline",
        ]
        tree = build_span_tree(records)
        assert len(tree.roots) == 1 and not tree.orphans

    def test_verify_smoke_spans(self):
        from repro.verify import run_verification

        records = []
        tracer = Tracer(records.append, "t")
        with activate(tracer):
            report = run_verification(level="smoke")
        assert report.ok
        names = {r["name"] for r in records}
        assert {
            "verify", "verify_invariants", "verify_oracles",
            "verify_metamorphic", "lut_build", "engine_run",
        } <= names
        tree = build_span_tree(records)
        assert len(tree.roots) == 1 and not tree.orphans

    def test_untraced_runs_emit_nothing(self, tiny_setup):
        """The ambient default stays the inert NULL_TRACER."""
        from repro import quick_node, simulate
        from repro.schedulers import GreedyEDFScheduler

        graph, tl, trace = tiny_setup
        assert current_tracer() is NULL_TRACER
        result = simulate(
            quick_node(graph), graph, trace, GreedyEDFScheduler(),
            strict=False,
        )
        assert result.dmr >= 0.0
