"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--benchmark", "nope"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestListCommand:
    def test_lists_everything(self):
        code, text = run_cli("list")
        assert code == 0
        assert "WAM" in text
        assert "inter-task" in text
        assert "fig8" in text


class TestSimulateCommand:
    def test_runs_one_day(self):
        code, text = run_cli(
            "simulate", "--benchmark", "SHM", "--scheduler", "asap",
            "--days", "1", "--seed", "3",
        )
        assert code == 0
        assert "DMR:" in text
        dmr = float(
            [l for l in text.splitlines() if l.startswith("DMR:")][0].split()[-1]
        )
        assert 0.0 <= dmr <= 1.0

    def test_dvfs_scheduler_available(self):
        code, text = run_cli(
            "simulate", "--benchmark", "ECG", "--scheduler", "dvfs",
            "--days", "1", "--seed", "3",
        )
        assert code == 0
        assert "dvfs-load-matching" in text


class TestExperimentCommand:
    def test_fig5(self):
        code, text = run_cli("experiment", "fig5")
        assert code == 0
        assert "regulator efficiency" in text

    def test_fig7(self):
        code, text = run_cli("experiment", "fig7")
        assert code == 0
        assert "four individual days" in text


class TestExportCommand:
    def test_writes_csv(self, tmp_path):
        out_file = tmp_path / "trace.csv"
        code, text = run_cli(
            "export-trace", "--days", "1", "--seed", "5",
            "--out", str(out_file),
        )
        assert code == 0
        assert out_file.exists()
        header = out_file.read_text().splitlines()[0]
        assert "Global Horizontal" in header


def _fingerprint(text):
    return [
        line.split()[-1]
        for line in text.splitlines()
        if line.startswith("fingerprint:")
    ][0]


class TestRobustCli:
    def test_fingerprint_line_printed(self):
        code, text = run_cli(
            "simulate", "--benchmark", "SHM", "--scheduler", "asap",
            "--days", "1", "--seed", "3",
        )
        assert code == 0
        assert len(_fingerprint(text)) == 64

    def test_fault_scenario_runs_and_reports(self):
        code, text = run_cli(
            "simulate", "--benchmark", "SHM", "--scheduler", "asap",
            "--days", "1", "--seed", "3",
            "--fault-scenario", "chaos", "--fault-seed", "5",
        )
        assert code == 0
        assert "fault activations:" in text

    def test_unknown_fault_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--fault-scenario", "gremlins"]
            )

    def test_max_slots_guard_exit_code_2(self, capsys):
        code, _ = run_cli("simulate", "--days", "4", "--max-slots", "10")
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one-line error

    def test_resume_without_dir_exit_code_2(self, capsys):
        code, _ = run_cli("simulate", "--resume")
        assert code == 2
        assert "checkpoint-dir" in capsys.readouterr().err

    def test_resume_empty_dir_exit_code_3(self, tmp_path, capsys):
        code, _ = run_cli(
            "simulate", "--resume", "--checkpoint-dir", str(tmp_path)
        )
        assert code == 3
        assert "checkpoint error:" in capsys.readouterr().err

    def test_crash_resume_reproduces_fingerprint(self, tmp_path):
        base = (
            "simulate", "--benchmark", "SHM", "--scheduler", "asap",
            "--days", "1", "--seed", "3",
        )
        code, full_text = run_cli(*base)
        assert code == 0
        ckdir = str(tmp_path / "ck")
        code, text = run_cli(
            *base, "--checkpoint-dir", ckdir, "--stop-after-periods", "40",
        )
        assert code == 0
        assert "stopped after 40 period(s)" in text
        code, resumed_text = run_cli(
            *base, "--checkpoint-dir", ckdir, "--resume",
        )
        assert code == 0
        assert _fingerprint(resumed_text) == _fingerprint(full_text)


class TestObsCommand:
    """Contract of ``repro obs summarize``."""

    def test_summarize_real_trace(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            "simulate", "--benchmark", "SHM", "--scheduler", "asap",
            "--days", "1", "--seed", "3", "--trace", str(trace_path),
        )
        assert code == 0
        code, text = run_cli("obs", "summarize", str(trace_path))
        assert code == 0
        assert "slot_decision" in text

    def test_summarize_missing_file_exit_2(self, tmp_path, capsys):
        code, _ = run_cli("obs", "summarize", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_summarize_garbage_file_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "garbage.jsonl"
        bad.write_text("this is not json\n{{{\n")
        code, _ = run_cli("obs", "summarize", str(bad))
        assert code == 2
        assert "not a JSONL event trace" in capsys.readouterr().err

    def test_summarize_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestCacheCommand:
    """Contract of ``repro cache info|clear``."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        self.root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(self.root))

    def _seed_entries(self):
        from repro.perf.cache import ArtifactCache

        cache = ArtifactCache(self.root)
        cache.put("policy", "a" * 64, {"x": 1})
        cache.put("policy", "b" * 64, {"x": 2})
        cache.put("fleet-shard", "c" * 64, [1, 2, 3])

    def test_info_empty(self):
        code, text = run_cli("cache", "info")
        assert code == 0
        assert str(self.root) in text
        assert "(empty)" in text

    def test_info_reports_kinds_and_counts(self):
        self._seed_entries()
        code, text = run_cli("cache", "info")
        assert code == 0
        assert "policy: 2 entries" in text
        assert "fleet-shard: 1 entry" in text

    def test_clear_removes_everything(self):
        self._seed_entries()
        code, text = run_cli("cache", "clear")
        assert code == 0
        assert "removed 3 cached artifact(s)" in text
        _, text = run_cli("cache", "info")
        assert "policy: 0 entries" in text
        assert "fleet-shard: 0 entries" in text

    def test_clear_single_kind_keeps_the_rest(self):
        self._seed_entries()
        code, text = run_cli("cache", "clear", "--kind", "policy")
        assert code == 0
        assert "removed 2 cached artifact(s)" in text
        _, text = run_cli("cache", "info")
        assert "fleet-shard: 1 entry" in text
        assert "policy: 0 entries" in text

    def test_clear_is_idempotent(self):
        code, text = run_cli("cache", "clear")
        assert code == 0
        assert "removed 0 cached artifact(s)" in text

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestFleetCommand:
    """Contract of ``repro fleet run|report``."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_run_prints_report_and_fingerprint(self):
        code, text = run_cli("fleet", "run", "--nodes", "4", "--seed", "1")
        assert code == 0
        assert "fleet of 4 node(s)" in text
        assert len(_fingerprint(text)) == 64

    def test_run_report_roundtrip(self, tmp_path):
        out_path = tmp_path / "fleet.json"
        code, run_text = run_cli(
            "fleet", "run", "--nodes", "4", "--seed", "1",
            "--out", str(out_path),
        )
        assert code == 0
        code, report_text = run_cli("fleet", "report", str(out_path))
        assert code == 0
        assert _fingerprint(report_text) == _fingerprint(run_text)

    def test_report_garbage_file_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not a fleet result")
        code, _ = run_cli("fleet", "report", str(bad))
        assert code == 2
        assert "not a fleet result file" in capsys.readouterr().err

    def test_report_missing_file_exit_2(self, tmp_path, capsys):
        code, _ = run_cli("fleet", "report", str(tmp_path / "nope.json"))
        assert code == 2
        assert "no fleet result file" in capsys.readouterr().err

    def test_bad_policy_pool_exit_2(self, capsys):
        code, _ = run_cli(
            "fleet", "run", "--nodes", "2", "--policies", "asap,warp-drive"
        )
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])


# ----------------------------------------------------------------------
# The documented exit-code matrix, as one table.
#
# 0 = success                    2 = bad input / bad data
# 3 = checkpoint error           4 = simulation failure
# 5 = perf regression            6 = verification failure
# 7 = completed degraded (healthy subset valid, nodes quarantined)
#
# Codes 0/2/3 exercise real CLI paths end to end.  Codes 4/5/6 cannot
# be triggered from legal CLI input without multi-minute runs (the
# engine runs strict=False; a perf regression needs a slower machine;
# a verify failure needs broken physics), so their cases stub the one
# boundary each code is defined by — the exception type for 4, the
# measured report for 5, the verification report for 6 — and assert
# the dispatcher maps it to the documented code.
# ----------------------------------------------------------------------
def _case_ok(tmp_path, monkeypatch):
    return ["list"]


def _case_value_error(tmp_path, monkeypatch):
    return ["simulate", "--days", "4", "--max-slots", "10"]


def _case_midc_error(tmp_path, monkeypatch):
    import repro.cli as cli
    from repro.solar.dataset import MIDCFormatError

    def boom(args, out):
        raise MIDCFormatError("line 7: negative irradiance")

    monkeypatch.setattr(cli, "_cmd_simulate", boom)
    return ["simulate", "--days", "1"]


def _case_checkpoint_error(tmp_path, monkeypatch):
    empty = tmp_path / "empty-ckpt"
    empty.mkdir()
    return ["simulate", "--resume", "--checkpoint-dir", str(empty)]


def _case_invalid_decision(tmp_path, monkeypatch):
    import repro.cli as cli
    from repro.sim.engine import InvalidDecisionError

    def boom(args, out):
        raise InvalidDecisionError("scheduler chose a non-ready task")

    monkeypatch.setattr(cli, "_cmd_simulate", boom)
    return ["simulate", "--days", "1"]


def _case_perf_regression(tmp_path, monkeypatch):
    from repro.perf import bench as perf_bench

    measured = {
        "version": perf_bench.BENCH_VERSION,
        "quick": True,
        "host": {"cpu_count": 1, "platform": "test"},
        "benchmarks": {
            "slot_loop": {
                "workload": "w", "slots": 100, "seconds": 1.0,
                "slots_per_sec": 100.0, "phases": {},
            },
            "offline_training": {
                "workload": "w", "cold_seconds": 1.0,
                "cached_seconds": 0.1, "cache_speedup": 10.0,
            },
            "parallel_suite": {
                "workload": "w", "workers": 2, "serial_seconds": 1.0,
                "parallel_seconds": 1.0, "speedup": 1.0,
            },
            "fleet": {
                "workload": "w", "nodes": 4, "seconds": 1.0,
                "nodes_per_sec": 4.0, "fingerprint": "f" * 64,
            },
            "fleet_batch": {
                "workload": "w", "nodes": 16, "seconds": 1.0,
                "nodes_per_sec": 48.0, "speedup_vs_per_node": 12.0,
                "fingerprint": "f" * 64,
            },
        },
    }
    monkeypatch.setattr(
        perf_bench, "run_bench", lambda quick, workers: measured
    )
    baseline = dict(measured)
    baseline["benchmarks"] = dict(measured["benchmarks"])
    baseline["benchmarks"]["slot_loop"] = dict(
        measured["benchmarks"]["slot_loop"], slots_per_sec=1e9
    )
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    return [
        "bench", "--quick", "--out", str(tmp_path / "report.json"),
        "--baseline", str(baseline_path),
    ]


def _case_verify_failure(tmp_path, monkeypatch):
    import repro.verify as verify_pkg
    from repro.verify.report import (
        CheckOutcome,
        VerificationReport,
        Violation,
    )

    report = VerificationReport(level="quick", seed=0)
    report.add(
        CheckOutcome(
            name="energy_conservation",
            subject="doctored-run",
            violations=[
                Violation("energy_conservation", "books do not balance")
            ],
            checked=1,
        )
    )
    assert not report.ok
    monkeypatch.setattr(
        verify_pkg, "run_verification", lambda **kwargs: report
    )
    return ["verify", "--level", "quick", "--quiet"]


def _case_degraded_fleet(tmp_path, monkeypatch):
    # A real end-to-end path: one chaos-poisoned node out of four is
    # quarantined and the run completes degraded.
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    return [
        "fleet", "run", "--nodes", "4", "--seed", "1",
        "--shard-size", "2", "--chaos-poison", "1", "--chaos-seed", "3",
    ]


EXIT_CODE_MATRIX = [
    ("success", _case_ok, 0),
    ("bad-input-value", _case_value_error, 2),
    ("bad-input-midc", _case_midc_error, 2),
    ("checkpoint", _case_checkpoint_error, 3),
    ("simulation", _case_invalid_decision, 4),
    ("perf-regression", _case_perf_regression, 5),
    ("verify-failure", _case_verify_failure, 6),
    ("degraded-fleet", _case_degraded_fleet, 7),
]


class TestExitCodeMatrix:
    @pytest.mark.parametrize(
        "build_argv,expected",
        [(build, code) for _, build, code in EXIT_CODE_MATRIX],
        ids=[label for label, _, _ in EXIT_CODE_MATRIX],
    )
    def test_exit_code(self, build_argv, expected, tmp_path, monkeypatch):
        argv = build_argv(tmp_path, monkeypatch)
        code, _ = run_cli(*argv)
        assert code == expected

    def test_matrix_covers_every_documented_code(self):
        assert {code for _, _, code in EXIT_CODE_MATRIX} == {
            0, 2, 3, 4, 5, 6, 7,
        }
